"""Deterministic, seeded fault injection for chaos-testing the serving stack.

The serving path (``SceneService`` -> ``ResidencyManager`` -> checkpoint
I/O) evicts and restores scene state under load, which is exactly the kind
of churn that invites transient I/O failures in production.  This module
provides the hooks to *rehearse* those failures deterministically:

* production code calls :func:`fault_point` at named sites
  (``"checkpoint.save"``, ``"worker.execute"``, ...).  When no injector is
  installed the call is a single global read followed by a return — the hot
  path is untouched;
* tests and benchmarks build a :class:`FaultInjector`, arm it with
  :meth:`FaultInjector.add` specs, and install it for the duration of a
  ``with fault_injection(injector):`` block.

Every spec owns its own RNG derived from ``(seed, site, kind, index)`` via
:func:`repro.utils.seeding.derive_seed`, so whether a given call fires
depends only on the injector seed and on how many calls that spec has seen
— not on wall-clock time or interleaving with other sites.  Under a single
worker thread the whole fault schedule is reproducible from the seed alone.

Fault kinds
-----------
``raise-transient``
    Raise :class:`TransientFault` — models a recoverable failure (EIO,
    flaky NFS, ...).  :class:`~repro.reliability.retry.RetryPolicy`
    classifies it as retryable.
``raise-permanent``
    Raise :class:`PermanentFault` — models a non-recoverable failure;
    never retried.
``truncate-file``
    Truncate the file passed as ``path=`` to half its size — models a torn
    write / partial flush.  No-op when the site passes no path.
``corrupt-bytes``
    Flip a short run of bytes at a seeded offset in ``path`` — models
    silent media corruption that only integrity digests can catch.
``delay``
    Sleep ``delay_s`` seconds — models a slow disk or scheduling stall;
    used to make timing-sensitive tests (queue-full, deadline shed)
    deterministic.
``corrupt-grad`` / ``corrupt-param``
    Poison one seeded element of every array the site passes via
    ``arrays=`` with NaN — models a numerically diverging step (the
    hazard the ``repro.reliability.health`` watchdog exists to catch).
    The two kinds are identical mechanically; the split keeps specs
    self-describing about *which* tensor family (gradients at
    ``train.backward``, parameters at ``optimizer.step``) they target.
    No-ops when the site passes no arrays.

Sites are registered in :data:`FAULT_SITES`; :meth:`FaultInjector.add`
rejects unknown site names so a typo'd spec fails loudly instead of
silently never firing.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.utils.seeding import derive_seed

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "PermanentFault",
    "TransientFault",
    "fault_injection",
    "fault_point",
    "fault_sites",
    "get_injector",
    "install_injector",
    "register_fault_site",
    "uninstall_injector",
]

FAULT_KINDS = (
    "raise-transient",
    "raise-permanent",
    "truncate-file",
    "corrupt-bytes",
    "delay",
    "corrupt-grad",
    "corrupt-param",
)

#: Array-poisoning kinds: side effects (never raise), applied to the
#: ``arrays=`` a site passes.
_ARRAY_KINDS = ("corrupt-grad", "corrupt-param")

# Every fault_point() site in the codebase.  add() validates against this
# so a typo'd site fails at arm time instead of silently never firing.
FAULT_SITES = {
    "checkpoint.save": "after an atomic checkpoint write lands",
    "checkpoint.load": "before a checkpoint generation is read",
    "residency.checkout": "when a worker checks a scene slot out",
    "worker.execute": "around a service job's execution body",
    "worker.crash": "inside the worker loop, outside job handling",
    "train.backward": "after gradients are scattered into parameters",
    "optimizer.step": "after both optimizers apply their updates",
}


def register_fault_site(site: str, description: str = "") -> None:
    """Register a new ``fault_point`` site so specs may target it.

    Production modules adding a fault point must register its name here
    (at import time) or :meth:`FaultInjector.add` will reject specs for it.
    """
    FAULT_SITES[site] = description


def fault_sites() -> Dict[str, str]:
    """Mapping of registered site name -> one-line description."""
    return dict(FAULT_SITES)


class TransientFault(OSError):
    """Injected failure that a retry is expected to cure.

    Subclasses :class:`OSError` so that code which already treats I/O
    errors as retryable (and tests that catch ``OSError``) classify it
    correctly without knowing about the injector.
    """


class PermanentFault(RuntimeError):
    """Injected failure that retrying cannot cure."""


@dataclass
class FaultSpec:
    """One armed fault: *where* (site), *what* (kind), and *when* (rate/after/times)."""

    site: str
    kind: str = "raise-transient"
    rate: float = 1.0
    #: skip this many matching calls before the spec becomes eligible
    after: int = 0
    #: fire at most this many times (``None`` = unlimited)
    times: Optional[int] = None
    delay_s: float = 0.0
    # bookkeeping (mutated under the injector lock)
    calls: int = field(default=0, repr=False)
    triggered: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; "
                             f"expected one of {FAULT_KINDS}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")


class FaultInjector:
    """Deterministic fault schedule keyed by (seed, site, call count).

    Thread-safe: all spec bookkeeping happens under one lock, so counters
    are exact even when several worker threads hit the same site.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._specs: List[FaultSpec] = []
        self._rngs: List[np.random.Generator] = []
        self._lock = threading.Lock()
        self.faults_injected = 0
        self.site_counts: Dict[str, int] = {}

    def add(self, site: str, kind: str = "raise-transient", *,
            rate: float = 1.0, after: int = 0, times: Optional[int] = None,
            delay_s: float = 0.0) -> FaultSpec:
        """Arm a fault at ``site`` and return the spec for later inspection.

        ``site`` must be registered in :data:`FAULT_SITES` (see
        :func:`register_fault_site`): a typo'd site would otherwise arm a
        spec that silently never fires.
        """
        spec = FaultSpec(site=site, kind=kind, rate=rate, after=after,
                         times=times, delay_s=delay_s)
        if site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {site!r}; registered sites: "
                f"{sorted(FAULT_SITES)} (see register_fault_site)")
        with self._lock:
            index = len(self._specs)
            self._specs.append(spec)
            self._rngs.append(np.random.default_rng(
                derive_seed(self.seed, f"fault:{site}:{kind}:{index}")))
        return spec

    def fire(self, site: str, path: Optional[os.PathLike] = None,
             arrays: Optional[List[np.ndarray]] = None) -> None:
        """Evaluate every spec armed at ``site``; apply the first that triggers.

        Side-effect kinds (truncate/corrupt/delay/corrupt-grad/corrupt-param)
        do not stop evaluation of later specs, but at most one *raising*
        spec fires per call.
        """
        actions: List[FaultSpec] = []
        with self._lock:
            for spec, rng in zip(self._specs, self._rngs):
                if spec.site != site:
                    continue
                spec.calls += 1
                if spec.calls <= spec.after:
                    continue
                if spec.times is not None and spec.triggered >= spec.times:
                    continue
                # Draw even at rate=1.0 so adding/removing other specs never
                # shifts this spec's schedule.
                if rng.random() >= spec.rate and spec.rate < 1.0:
                    continue
                spec.triggered += 1
                self.faults_injected += 1
                self.site_counts[site] = self.site_counts.get(site, 0) + 1
                actions.append(spec)
        raising: Optional[FaultSpec] = None
        for spec in actions:
            if spec.kind == "delay":
                time.sleep(spec.delay_s)
            elif spec.kind == "truncate-file":
                _truncate_file(path)
            elif spec.kind == "corrupt-bytes":
                self._corrupt_bytes(path)
            elif spec.kind in _ARRAY_KINDS:
                self._corrupt_arrays(arrays)
            elif raising is None:
                raising = spec
        if raising is not None:
            if raising.kind == "raise-transient":
                raise TransientFault(
                    f"injected transient fault at site {site!r} "
                    f"(trigger {raising.triggered}/{raising.times or 'inf'})")
            raise PermanentFault(
                f"injected permanent fault at site {site!r}")

    def _corrupt_bytes(self, path: Optional[os.PathLike]) -> None:
        if path is None or not os.path.exists(path):
            return
        size = os.path.getsize(path)
        if size == 0:
            return
        with self._lock:
            rng = np.random.default_rng(
                derive_seed(self.seed, f"corrupt:{self.faults_injected}"))
        offset = int(rng.integers(0, size))
        span = int(min(size - offset, 8))
        with open(path, "r+b") as handle:
            handle.seek(offset)
            original = handle.read(span)
            handle.seek(offset)
            handle.write(bytes(b ^ 0xFF for b in original))

    def _corrupt_arrays(self, arrays: Optional[List[np.ndarray]]) -> None:
        """Poison one seeded element of *every* passed array with NaN.

        Corrupting every array (rather than one seeded pick) guarantees the
        poison lands in live state: at a site like ``train.backward`` a
        single pick could hit a stale branch's buffer that this iteration's
        optimizer step never reads, and the injected fault would vanish.
        Element choice is seeded from ``(seed, faults_injected)`` so the
        schedule replays exactly under a fixed ``REPRO_FAULT_SEED``.
        """
        if not arrays:
            return
        with self._lock:
            rng = np.random.default_rng(
                derive_seed(self.seed, f"corrupt-array:{self.faults_injected}"))
        for array in arrays:
            if array.size == 0 or not np.issubdtype(array.dtype, np.floating):
                continue
            # .flat assigns in place even on non-contiguous views.
            array.flat[int(rng.integers(0, array.size))] = np.nan

    def sites(self) -> Dict[str, int]:
        """Registered sites mapped to how many specs target each.

        Lists *every* registered site (count 0 when nothing is armed), so
        tests can discover valid targets without grepping the source.
        """
        with self._lock:
            out = {site: 0 for site in FAULT_SITES}
            for spec in self._specs:
                out[spec.site] = out.get(spec.site, 0) + 1
        return out

    def counts(self) -> Dict[str, int]:
        """Per-site trigger counts plus the ``total``."""
        with self._lock:
            out = dict(self.site_counts)
            out["total"] = self.faults_injected
        return out


def _truncate_file(path: Optional[os.PathLike]) -> None:
    if path is None or not os.path.exists(path):
        return
    size = os.path.getsize(path)
    with open(path, "r+b") as handle:
        handle.truncate(size // 2)


# Process-global injector.  ``None`` (the default) keeps fault_point() at a
# single attribute read, so production code pays nothing for the hooks.
_INJECTOR: Optional[FaultInjector] = None
_INSTALL_LOCK = threading.Lock()


def get_injector() -> Optional[FaultInjector]:
    """The currently installed injector, or ``None`` when disabled."""
    return _INJECTOR


def install_injector(injector: FaultInjector) -> None:
    """Install ``injector`` process-wide; errors if one is already installed."""
    global _INJECTOR
    with _INSTALL_LOCK:
        if _INJECTOR is not None:
            raise RuntimeError("a FaultInjector is already installed; "
                               "uninstall it first")
        _INJECTOR = injector


def uninstall_injector() -> None:
    """Remove the installed injector (no-op when none is installed)."""
    global _INJECTOR
    with _INSTALL_LOCK:
        _INJECTOR = None


@contextmanager
def fault_injection(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Install ``injector`` for the duration of the block."""
    install_injector(injector)
    try:
        yield injector
    finally:
        uninstall_injector()


def fault_point(site: str, path: Optional[os.PathLike] = None,
                arrays: Optional[List[np.ndarray]] = None) -> None:
    """Production-side hook: inject whatever is armed at ``site``.

    A no-op (one global read) when no injector is installed.  ``path``
    gives file-mutating kinds (truncate/corrupt) something to chew on;
    ``arrays`` gives the array-poisoning kinds (corrupt-grad /
    corrupt-param) their targets.  Callers should build the ``arrays``
    list only when :func:`get_injector` is non-``None`` so the disabled
    hot path stays a single global read.
    """
    injector = _INJECTOR
    if injector is None:
        return
    injector.fire(site, path, arrays)
