"""Retry policy: transient-vs-permanent classification and deterministic backoff.

The policy is pure data + pure functions — it never sleeps and never looks
at a clock, so the :class:`~repro.serving.service.SceneService` can turn
its delays into ``not_before`` timestamps on queued jobs and keep worker
threads responsive (they wait on the queue condition variable, not in
``time.sleep``).

Classification contract
-----------------------
*transient* — worth retrying: :class:`OSError` (which covers
:class:`~repro.reliability.faults.TransientFault`) and
:class:`TimeoutError`.  These model flaky I/O: the same operation
re-executed a moment later is expected to succeed.

*permanent* — retrying cannot help: everything else, explicitly including
:class:`~repro.reliability.faults.PermanentFault`, validation errors
(``ValueError``/``TypeError``) and
:class:`~repro.io.checkpoint.CheckpointCorruptError` (by the time that
escapes, generation fallback has already been exhausted).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Type

from repro.reliability.faults import PermanentFault

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed job and how long to wait between tries.

    ``max_attempts`` counts *executions*, so ``max_attempts=1`` disables
    retries entirely.  Backoff is deterministic (no jitter): attempt ``k``
    (1-based) failed -> wait ``min(backoff_max_s,
    backoff_base_s * backoff_factor**(k - 1))`` before attempt ``k + 1``.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.01
    backoff_factor: float = 2.0
    backoff_max_s: float = 1.0
    transient_types: Tuple[Type[BaseException], ...] = (OSError, TimeoutError)
    permanent_types: Tuple[Type[BaseException], ...] = (PermanentFault,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def classify(self, error: BaseException) -> str:
        """``"transient"`` or ``"permanent"``.  Permanent types win ties."""
        if isinstance(error, self.permanent_types):
            return "permanent"
        if isinstance(error, self.transient_types):
            return "transient"
        return "permanent"

    def backoff_s(self, attempt: int) -> float:
        """Delay before the retry that follows failed attempt ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** (attempt - 1))

    def should_retry(self, error: BaseException, attempts: int) -> bool:
        """True when ``error`` is transient and attempts remain."""
        return attempts < self.max_attempts and self.classify(error) == "transient"
