"""In-memory snapshot ring backing the divergence-recovery ladder.

A rollback has to restore the *entire* training state — model parameters,
both optimizers' moments, occupancy grid, RNG streams, iteration counters
— or the replay would not be deterministic.  The trainer already knows how
to serialise all of that (``Trainer.state_dict()``, reused verbatim by the
checkpoint layer), so a snapshot is just a host-materialised deep copy of
that tree, held in memory instead of on disk: rollback is latency-critical
(it sits inside the training loop) and the ring holds at most a couple of
generations, so the copy cost beats checkpoint I/O by orders of magnitude.

Copy discipline — the part that makes the bit-identity invariant hold:

* **on capture** every array leaf is copied, so later training steps
  mutating the live parameters cannot reach into a stored snapshot;
* **on restore** the stored tree is copied *again* before being handed to
  ``load_state_dict``, so a restored optimizer never aliases ring storage
  (a second rollback to the same snapshot must see pristine state even if
  the first replay diverged after restoring it).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

__all__ = ["SnapshotRing", "copy_state_tree"]


def copy_state_tree(node: Any) -> Any:
    """Deep-copy a ``state_dict`` tree, materialising array leaves on host.

    Backend arrays (numpy today, device buffers behind ``ArrayBackend``
    tomorrow) come back as fresh ``np.ndarray`` copies; containers are
    rebuilt; scalars/strings/None pass through (immutable).
    """
    if isinstance(node, dict):
        return {key: copy_state_tree(value) for key, value in node.items()}
    if isinstance(node, (list, tuple)):
        copied = [copy_state_tree(value) for value in node]
        return type(node)(copied) if isinstance(node, tuple) else copied
    if isinstance(node, np.ndarray):
        return np.array(node, copy=True)
    if hasattr(node, "__array__") and not isinstance(
            node, (bool, int, float, complex, str, bytes)):
        return np.asarray(node).copy()
    return node


class SnapshotRing:
    """Bounded ring of known-good state trees, newest last.

    ``capacity`` snapshots are kept; pushing an extra one drops the oldest.
    Two generations (the default policy) give the recovery ladder a fallback
    when divergence is detected late enough that the newest snapshot is
    itself suspect — the trainer rolls back to the newest, and a repeat trip
    at the same iteration burns a rollback attempt rather than re-verifying
    the same poisoned state forever.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: List[Dict[str, Any]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def push(self, iteration: int, state: Dict[str, Any]) -> None:
        """Store a copy of ``state`` tagged with the iteration it captures."""
        self._entries.append({
            "iteration": int(iteration),
            "state": copy_state_tree(state),
        })
        if len(self._entries) > self.capacity:
            self._entries.pop(0)

    def newest(self) -> Optional[Dict[str, Any]]:
        """Newest entry (``{"iteration", "state"}``) or ``None`` when empty."""
        return self._entries[-1] if self._entries else None

    def restore_newest(self) -> Optional[Dict[str, Any]]:
        """A fresh copy of the newest stored state, or ``None`` when empty.

        Returns ``{"iteration": int, "state": tree}`` where ``state`` is
        safe to hand to ``load_state_dict`` — it shares no storage with the
        ring, so the entry can be restored again later.
        """
        if not self._entries:
            return None
        entry = self._entries[-1]
        return {
            "iteration": entry["iteration"],
            "state": copy_state_tree(entry["state"]),
        }

    def iterations(self) -> List[int]:
        """Capture iterations of stored snapshots, oldest first."""
        return [entry["iteration"] for entry in self._entries]

    def clear(self) -> None:
        self._entries.clear()
