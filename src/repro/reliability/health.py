"""Numerical-health guardrails for training: divergence detection policy.

PR 9 made the stack survive *external* faults (torn writes, worker
crashes).  This module covers *numerical* faults: a NaN-poisoned gradient,
an Adam blow-up, a loss spike from a pathological hash collision.  Left
unchecked, a single non-finite update silently corrupts the hash tables,
gets persisted by ``save_checkpoint`` and is then served to every
subsequent render of the scene.  Large-scale training practice (the
PaLM/OPT loss-spike protocols) treats divergence as a first-class fault:
detect it cheaply, rewind to a known-good snapshot, perturb the replay.

Three pieces, mirroring the fault-injection split in ``faults.py``:

* :class:`HealthPolicy` — a frozen, picklable bundle of knobs (what to
  check, how often, how to recover).  Carried on ``Instant3DConfig.health``
  so fleets and services inherit it without extra plumbing.
* :class:`HealthMonitor` — the per-trainer watchdog.  Read-only over the
  training state: it looks at the loss scalar, gradient buffers and
  parameter tensors but never writes to any of them, which is what makes
  the no-trip bit-identity invariant (guards on == guards off) hold.
* :class:`NumericalFault` — raised by the trainer once the rollback
  budget is exhausted; classified as *permanent* by the retry machinery
  and mapped to ``JobPoisoned`` by ``SceneService`` so one diverging
  tenant cannot take down the fleet.

All detection thresholds are evaluated with explicit ``isfinite`` logic
rather than ordered comparisons: NaN compares false against everything,
so e.g. ``loss > limit`` would silently pass a NaN through.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional

import numpy as np

__all__ = [
    "GuardTrip",
    "HealthMonitor",
    "HealthPolicy",
    "NumericalFault",
    "all_finite",
]


class NumericalFault(RuntimeError):
    """Training diverged and the rollback budget could not recover it.

    Subclasses :class:`RuntimeError` so :class:`~repro.reliability.retry.
    RetryPolicy` classifies it as permanent: replaying the exact same
    deterministic schedule would diverge the exact same way, so retrying
    the job verbatim is pointless.  ``SceneService`` maps this onto
    :class:`~repro.serving.jobs.JobPoisoned` for the offending scene.
    """


@dataclass(frozen=True)
class GuardTrip:
    """One detection event: *what* tripped, *where*, and the offending value."""

    reason: str          # "loss-nonfinite" | "loss-spike" | "grad-nonfinite"
                         # | "param-nonfinite" | "param-explosion"
    iteration: int
    detail: str = ""


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for the divergence watchdog and its recovery ladder.

    Frozen and containing only scalars so it pickles cleanly into
    ``_SceneJob`` for process fleets and hashes into config identity.

    Detection knobs
    ---------------
    check_every:
        Run the guards every N-th iteration (1 = every step).  Raising it
        amortises the read-only scans; divergence is then detected at most
        ``check_every - 1`` steps late, which the snapshot ring absorbs.
    loss_window / loss_spike_factor:
        Keep a rolling window of the last ``loss_window`` *healthy* loss
        values and trip when a new loss exceeds ``loss_spike_factor`` times
        the window median.  ``loss_spike_factor=None`` disables the spike
        guard (non-finite losses still trip).  The median is robust to the
        noisy per-batch MSE in a way a mean is not.
    check_grads / check_params:
        Scan gradient buffers (dense and COO) and parameter tensors for
        non-finite values; params are additionally checked against
        ``param_limit``.
    param_limit:
        Trip when any parameter's magnitude exceeds this (finite) bound —
        catches the slow hash-table blow-up that precedes a NaN by many
        iterations.

    Recovery knobs
    --------------
    snapshot_every / snapshot_ring:
        Take an in-memory snapshot of the full trainer state every
        ``snapshot_every`` healthy checks, keeping the newest
        ``snapshot_ring`` of them.
    max_rollbacks:
        Consecutive rollbacks allowed without forward progress before the
        trainer raises :class:`NumericalFault`.  A healthy check *past* the
        last trip point resets the budget.
    lr_backoff:
        Multiply both optimizers' learning rate by this factor on every
        rollback (cumulative: k rollbacks => lr * backoff**k).  1.0
        disables the backoff.
    skip_batch:
        On rollback, deterministically discard pixel-scheduler draws (as
        many as there have been consecutive rollbacks, since the restore
        rewinds the RNG) so each replay attempt sees a shifted batch
        sequence.  Combined with LR backoff this is the seeded "perturb
        the replay" remediation.
    """

    check_every: int = 1
    loss_window: int = 16
    loss_window_min: int = 8
    loss_spike_factor: Optional[float] = 50.0
    check_grads: bool = True
    check_params: bool = True
    param_limit: float = 1e6
    snapshot_every: int = 25
    snapshot_ring: int = 2
    max_rollbacks: int = 3
    lr_backoff: float = 0.5
    skip_batch: bool = True

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {self.check_every}")
        if self.loss_window < 2:
            raise ValueError(f"loss_window must be >= 2, got {self.loss_window}")
        if not 2 <= self.loss_window_min <= self.loss_window:
            raise ValueError(
                f"loss_window_min must be in [2, loss_window], "
                f"got {self.loss_window_min}")
        if self.loss_spike_factor is not None and not (
                math.isfinite(self.loss_spike_factor)
                and self.loss_spike_factor > 1.0):
            raise ValueError(
                f"loss_spike_factor must be finite and > 1, "
                f"got {self.loss_spike_factor}")
        if not (math.isfinite(self.param_limit) and self.param_limit > 0.0):
            raise ValueError(
                f"param_limit must be finite and > 0, got {self.param_limit}")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every}")
        if self.snapshot_ring < 1:
            raise ValueError(
                f"snapshot_ring must be >= 1, got {self.snapshot_ring}")
        if self.max_rollbacks < 1:
            raise ValueError(
                f"max_rollbacks must be >= 1, got {self.max_rollbacks}")
        if not (math.isfinite(self.lr_backoff) and 0.0 < self.lr_backoff <= 1.0):
            raise ValueError(
                f"lr_backoff must be in (0, 1], got {self.lr_backoff}")


def all_finite(array) -> bool:
    """Whether every element of a (floating) array is finite.

    Non-floating dtypes are finite by construction and return ``True``
    without a scan.
    """
    array = np.asarray(array)
    if not np.issubdtype(array.dtype, np.floating):
        return True
    return bool(np.isfinite(array).all())


class HealthMonitor:
    """Per-trainer divergence watchdog.

    Strictly read-only over model/optimizer/loss state: every guard is a
    scan, never a write, so installing the monitor cannot perturb a healthy
    run (the no-trip bit-identity invariant, pinned by differentials in
    ``tests/test_health.py``).  The loss window only admits values from
    *healthy* checks, so a spike never contaminates its own baseline.
    """

    def __init__(self, policy: HealthPolicy) -> None:
        self.policy = policy
        self._losses: Deque[float] = deque(maxlen=policy.loss_window)
        # Counters (canonical here; the trainer mirrors them into history).
        self.guard_trips = 0
        self.rollbacks = 0
        self.lr_backoffs = 0
        self.batch_skips = 0
        self.rollback_attempts = 0      # consecutive, reset on progress
        self.last_trip_iteration = -1
        self.trips: List[GuardTrip] = []

    # -- detection ---------------------------------------------------------

    def check_due(self, iteration: int) -> bool:
        """Whether the guards run for the step that just finished."""
        return iteration % self.policy.check_every == 0

    def check(self, iteration: int, loss: float,
              parameters: Iterable) -> Optional[GuardTrip]:
        """Run every enabled guard; return the first trip (or ``None``).

        ``parameters`` is the trainer's parameter list; gradients are read
        from ``p.grad`` / ``p.sparse_grad`` in whatever state the step left
        them.  On a healthy check the loss joins the rolling window.
        """
        policy = self.policy
        trip: Optional[GuardTrip] = None
        if not math.isfinite(loss):
            trip = GuardTrip("loss-nonfinite", iteration, f"loss={loss!r}")
        if trip is None and policy.loss_spike_factor is not None \
                and len(self._losses) >= policy.loss_window_min:
            median = float(np.median(np.asarray(self._losses)))
            if median > 0.0 and loss > policy.loss_spike_factor * median:
                trip = GuardTrip(
                    "loss-spike", iteration,
                    f"loss={loss:.6g} > {policy.loss_spike_factor:g} * "
                    f"median({median:.6g})")
        if trip is None and (policy.check_grads or policy.check_params):
            trip = self._scan_parameters(iteration, parameters)
        if trip is None:
            self._losses.append(float(loss))
            if iteration > self.last_trip_iteration:
                self.rollback_attempts = 0      # forward progress: new budget
        else:
            self.guard_trips += 1
            self.trips.append(trip)
        return trip

    def _scan_parameters(self, iteration: int,
                         parameters: Iterable) -> Optional[GuardTrip]:
        policy = self.policy
        for index, param in enumerate(parameters):
            if policy.check_grads:
                grad = getattr(param, "grad", None)
                if grad is not None and not all_finite(grad):
                    return GuardTrip("grad-nonfinite", iteration,
                                     f"parameter #{index} dense grad")
                sparse = getattr(param, "sparse_grad", None)
                if sparse is not None and not all_finite(sparse.values):
                    return GuardTrip("grad-nonfinite", iteration,
                                     f"parameter #{index} sparse grad")
            if policy.check_params:
                data = np.asarray(param.data)
                # One pass: max |x| is NaN if any element is, so a single
                # isfinite on the scalar catches NaN/inf and the explosion
                # bound together.
                peak = float(np.max(np.abs(data))) if data.size else 0.0
                if not math.isfinite(peak):
                    return GuardTrip("param-nonfinite", iteration,
                                     f"parameter #{index}")
                if peak > policy.param_limit:
                    return GuardTrip(
                        "param-explosion", iteration,
                        f"parameter #{index} max |x| = {peak:.3g} > "
                        f"{policy.param_limit:g}")
        return None

    # -- recovery bookkeeping (mutations happen in the trainer) ------------

    def budget_exhausted(self) -> bool:
        return self.rollback_attempts > self.policy.max_rollbacks

    # -- persistence -------------------------------------------------------

    def counters(self) -> Dict[str, int]:
        return {
            "guard_trips": self.guard_trips,
            "rollbacks": self.rollbacks,
            "lr_backoffs": self.lr_backoffs,
            "batch_skips": self.batch_skips,
        }

    def state_dict(self) -> Dict[str, object]:
        return {
            "losses": [float(v) for v in self._losses],
            "guard_trips": self.guard_trips,
            "rollbacks": self.rollbacks,
            "lr_backoffs": self.lr_backoffs,
            "batch_skips": self.batch_skips,
            "rollback_attempts": self.rollback_attempts,
            "last_trip_iteration": self.last_trip_iteration,
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        self._losses = deque((float(v) for v in state["losses"]),
                             maxlen=self.policy.loss_window)
        self.guard_trips = int(state["guard_trips"])
        self.rollbacks = int(state["rollbacks"])
        self.lr_backoffs = int(state["lr_backoffs"])
        self.batch_skips = int(state["batch_skips"])
        self.rollback_attempts = int(state["rollback_attempts"])
        self.last_trip_iteration = int(state["last_trip_iteration"])
