"""Reliability toolkit: deterministic fault injection and retry policy.

* :mod:`repro.reliability.faults` — the seeded :class:`FaultInjector`,
  the :func:`fault_point` production hooks, and the
  :class:`TransientFault` / :class:`PermanentFault` error taxonomy;
* :mod:`repro.reliability.retry` — the :class:`RetryPolicy` used by
  :class:`~repro.serving.service.SceneService` to requeue failed jobs
  with deterministic exponential backoff.

See ``docs/reliability.md`` for the fault-site table and the end-to-end
fault-tolerance contract.
"""

from repro.reliability.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    PermanentFault,
    TransientFault,
    fault_injection,
    fault_point,
    get_injector,
    install_injector,
    uninstall_injector,
)
from repro.reliability.retry import RetryPolicy

__all__ = [
    "FAULT_KINDS",
    "FaultInjector",
    "FaultSpec",
    "PermanentFault",
    "RetryPolicy",
    "TransientFault",
    "fault_injection",
    "fault_point",
    "get_injector",
    "install_injector",
    "uninstall_injector",
]
