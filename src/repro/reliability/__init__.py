"""Reliability toolkit: fault injection, retry policy, numerical health.

* :mod:`repro.reliability.faults` — the seeded :class:`FaultInjector`,
  the :func:`fault_point` production hooks, and the
  :class:`TransientFault` / :class:`PermanentFault` error taxonomy;
* :mod:`repro.reliability.retry` — the :class:`RetryPolicy` used by
  :class:`~repro.serving.service.SceneService` to requeue failed jobs
  with deterministic exponential backoff;
* :mod:`repro.reliability.health` — the :class:`HealthPolicy` /
  :class:`HealthMonitor` divergence watchdog and the permanent
  :class:`NumericalFault` it raises when recovery is exhausted;
* :mod:`repro.reliability.rollback` — the in-memory :class:`SnapshotRing`
  of known-good trainer states backing deterministic rollback recovery.

See ``docs/reliability.md`` for the fault-site table and the end-to-end
fault-tolerance contract.
"""

from repro.reliability.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    PermanentFault,
    TransientFault,
    fault_injection,
    fault_point,
    fault_sites,
    get_injector,
    install_injector,
    register_fault_site,
    uninstall_injector,
)
from repro.reliability.health import (
    GuardTrip,
    HealthMonitor,
    HealthPolicy,
    NumericalFault,
)
from repro.reliability.retry import RetryPolicy
from repro.reliability.rollback import SnapshotRing, copy_state_tree

__all__ = [
    "FAULT_KINDS",
    "FAULT_SITES",
    "FaultInjector",
    "FaultSpec",
    "GuardTrip",
    "HealthMonitor",
    "HealthPolicy",
    "NumericalFault",
    "PermanentFault",
    "RetryPolicy",
    "SnapshotRing",
    "TransientFault",
    "copy_state_tree",
    "fault_injection",
    "fault_point",
    "fault_sites",
    "get_injector",
    "install_injector",
    "register_fault_site",
    "uninstall_injector",
]
