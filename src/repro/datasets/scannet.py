"""ScanNet-like indoor room scenes.

ScanNet scenes are real indoor rooms captured with a handheld RGB-D sensor.
The stand-ins here are furnished box rooms: wall/floor slabs enclosing
furniture-scale primitives, photographed by cameras placed *inside* the room
looking outward/around, which reproduces the workload characteristic that
matters for the paper — occupied structure near the grid boundary in every
direction rather than a single centred object.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.datasets.dataset import (RenderedView, SceneDataset,
                                    validate_dataset)
from repro.datasets.renderer import GroundTruthRenderer
from repro.datasets.scene import AnalyticScene, Box, Cylinder, Sphere, checker_color
from repro.nerf.cameras import PinholeCamera
from repro.utils.math3d import look_at_pose
from repro.utils.seeding import derive_rng

#: Scene names of the ScanNet-like indoor suite.
SCANNET_SCENES = ("scene0000_office", "scene0001_bedroom", "scene0002_kitchen",
                  "scene0003_lounge")


def _room_shell(scene: AnalyticScene, half: float, wall_color) -> None:
    """Add floor and four thin wall slabs enclosing ``[-half, half]^2``."""
    thickness = 0.08
    scene.add(Box(center=(0.0, 0.0, -half), half_extents=(half, half, thickness),
                  color=checker_color((0.65, 0.6, 0.55), (0.5, 0.47, 0.44), scale=2.5)))
    for axis, sign in ((0, -1), (0, 1), (1, -1), (1, 1)):
        center = [0.0, 0.0, 0.0]
        extents = [half, half, half]
        center[axis] = sign * half
        extents[axis] = thickness
        scene.add(Box(center=tuple(center), half_extents=tuple(extents), color=wall_color))


def _office() -> AnalyticScene:
    scene = AnalyticScene(name="scene0000_office", scene_bound=1.5)
    _room_shell(scene, half=1.4, wall_color=(0.8, 0.8, 0.78))
    scene.add(Box(center=(0.5, 0.3, -1.0), half_extents=(0.5, 0.3, 0.04),
                  color=(0.5, 0.33, 0.2)))
    for dx, dy in ((0.1, 0.1), (0.9, 0.1), (0.1, 0.5), (0.9, 0.5)):
        scene.add(Box(center=(dx, dy, -1.2), half_extents=(0.03, 0.03, 0.18),
                      color=(0.3, 0.3, 0.3)))
    scene.add(Box(center=(0.4, 0.3, -0.85), half_extents=(0.18, 0.12, 0.1),
                  color=(0.15, 0.15, 0.18)))
    scene.add(Cylinder(center=(-0.7, -0.6, -1.1), radius=0.2, half_height=0.25,
                       color=(0.25, 0.3, 0.55)))
    return scene


def _bedroom() -> AnalyticScene:
    scene = AnalyticScene(name="scene0001_bedroom", scene_bound=1.5)
    _room_shell(scene, half=1.4, wall_color=(0.82, 0.78, 0.72))
    scene.add(Box(center=(-0.4, 0.4, -1.15), half_extents=(0.6, 0.45, 0.2),
                  color=(0.7, 0.7, 0.75)))
    scene.add(Box(center=(-0.4, 0.4, -0.9), half_extents=(0.55, 0.4, 0.06),
                  color=(0.85, 0.3, 0.35)))
    scene.add(Box(center=(0.9, -0.8, -1.0), half_extents=(0.25, 0.2, 0.35),
                  color=(0.45, 0.3, 0.2)))
    scene.add(Sphere(center=(0.9, -0.8, -0.55), radius=0.12, color=(0.95, 0.9, 0.6)))
    return scene


def _kitchen() -> AnalyticScene:
    scene = AnalyticScene(name="scene0002_kitchen", scene_bound=1.5)
    _room_shell(scene, half=1.4, wall_color=(0.85, 0.85, 0.82))
    scene.add(Box(center=(0.0, 1.1, -0.9), half_extents=(1.2, 0.25, 0.45),
                  color=(0.55, 0.55, 0.58)))
    scene.add(Box(center=(0.0, 1.1, -0.42), half_extents=(1.2, 0.28, 0.04),
                  color=(0.3, 0.3, 0.32)))
    scene.add(Box(center=(-1.0, -0.2, -0.7), half_extents=(0.25, 0.3, 0.65),
                  color=(0.9, 0.9, 0.92)))
    scene.add(Cylinder(center=(0.4, 0.2, -1.05), radius=0.3, half_height=0.04,
                       color=(0.6, 0.4, 0.25)))
    return scene


def _lounge() -> AnalyticScene:
    scene = AnalyticScene(name="scene0003_lounge", scene_bound=1.5)
    _room_shell(scene, half=1.4, wall_color=(0.78, 0.8, 0.82))
    scene.add(Box(center=(0.0, -0.9, -1.05), half_extents=(0.8, 0.3, 0.18),
                  color=(0.35, 0.4, 0.6)))
    scene.add(Box(center=(0.0, -0.9, -0.8), half_extents=(0.8, 0.3, 0.08),
                  color=(0.4, 0.45, 0.65)))
    scene.add(Box(center=(0.0, 0.2, -1.15), half_extents=(0.45, 0.3, 0.05),
                  color=(0.5, 0.35, 0.22)))
    scene.add(Sphere(center=(0.7, 0.7, -1.05), radius=0.25, color=(0.2, 0.5, 0.3)))
    return scene


_BUILDERS = {
    "scene0000_office": _office,
    "scene0001_bedroom": _bedroom,
    "scene0002_kitchen": _kitchen,
    "scene0003_lounge": _lounge,
}


def make_scannet_scene(name: str) -> AnalyticScene:
    """Build one ScanNet-like indoor room scene by name."""
    if name not in _BUILDERS:
        raise ValueError(f"unknown ScanNet-like scene {name!r}; choose one of {sorted(_BUILDERS)}")
    return _BUILDERS[name]()


def _interior_cameras(scene: AnalyticScene, n_views: int, image_size: int,
                      rng: np.random.Generator) -> List[PinholeCamera]:
    """Cameras inside the room looking towards jittered points on the far side."""
    cameras = []
    half = scene.scene_bound * 0.55
    for i in range(n_views):
        angle = 2.0 * np.pi * i / max(n_views, 1)
        eye = np.array([half * np.cos(angle), half * np.sin(angle),
                        rng.uniform(-0.3, 0.1)])
        target = np.array([-1.1 * half * np.cos(angle) + rng.uniform(-0.2, 0.2),
                           -1.1 * half * np.sin(angle) + rng.uniform(-0.2, 0.2),
                           rng.uniform(-0.6, -0.1)])
        pose = look_at_pose(eye, target)
        cameras.append(
            PinholeCamera(width=image_size, height=image_size, focal=0.9 * image_size,
                          pose=pose, near=0.05, far=2.0 * scene.scene_bound * 1.8)
        )
    return cameras


def scannet_like(scenes: Optional[Iterable[str]] = None, n_train_views: int = 12,
                 n_test_views: int = 3, image_size: int = 40, seed: int = 0
                 ) -> List[SceneDataset]:
    """Render datasets for the ScanNet-like indoor suite.

    Unlike the object/large-volume suites this uses an interior camera rig
    (cameras inside the room), so it has its own dataset builder rather than
    reusing :func:`repro.datasets.dataset.build_dataset`.
    """
    names = list(scenes) if scenes is not None else list(SCANNET_SCENES)
    renderer = GroundTruthRenderer(n_samples=96)
    datasets = []
    for name in names:
        scene = make_scannet_scene(name)

        def render_split(n_views: int, key: str) -> List[RenderedView]:
            rng = derive_rng(seed, f"{name}:{key}")
            views = []
            for camera in _interior_cameras(scene, n_views, image_size, rng):
                rgb, depth = renderer.render(scene, camera)
                views.append(RenderedView(camera=camera, rgb=rgb, depth=depth))
            return views

        datasets.append(
            validate_dataset(SceneDataset(
                name=name,
                scene=scene,
                train_views=render_split(n_train_views, "train"),
                test_views=render_split(n_test_views, "test"),
                suite="scannet",
            ))
        )
    return datasets
