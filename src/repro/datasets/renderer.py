"""Exact ground-truth renderer for analytic scenes.

The renderer integrates the analytic density/albedo fields along camera rays
with the same volume-rendering equation (Eq. 1) that the learned models use,
producing the posed RGB images that serve as training/test data and the depth
maps used by the Fig. 5 color-vs-density learning-pace analysis.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.datasets.scene import AnalyticScene
from repro.nerf.cameras import PinholeCamera
from repro.nerf.sampling import ray_points, stratified_samples
from repro.nerf.volume_rendering import VolumeRenderer


class GroundTruthRenderer:
    """Renders reference RGB and depth images of an :class:`AnalyticScene`.

    ``n_samples`` controls the quadrature resolution of the integral; the
    default is dense enough that doubling it changes pixel values by well
    under 1/255 for the scenes in this repository.
    """

    def __init__(self, n_samples: int = 128, white_background: bool = True,
                 chunk_size: int = 4096):
        if n_samples < 2:
            raise ValueError("n_samples must be >= 2")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        self.n_samples = int(n_samples)
        self.white_background = bool(white_background)
        self.chunk_size = int(chunk_size)

    def render(self, scene: AnalyticScene, camera: PinholeCamera
               ) -> Tuple[np.ndarray, np.ndarray]:
        """Render one view; returns ``(rgb, depth)``.

        ``rgb`` has shape ``(H, W, 3)`` in ``[0, 1]``; ``depth`` has shape
        ``(H, W)`` holding the expected ray-termination distance.
        """
        bundle = camera.all_rays()
        colors = np.empty((bundle.n_rays, 3))
        depths = np.empty(bundle.n_rays)
        renderer = VolumeRenderer(white_background=self.white_background)
        for start in range(0, bundle.n_rays, self.chunk_size):
            stop = min(start + self.chunk_size, bundle.n_rays)
            chunk = type(bundle)(
                origins=bundle.origins[start:stop],
                directions=bundle.directions[start:stop],
                near=bundle.near,
                far=bundle.far,
            )
            t_vals, deltas = stratified_samples(chunk, self.n_samples, rng=None)
            points, dirs = ray_points(chunk, t_vals)
            sigmas, rgbs = scene.query(points, dirs)
            n_rays = stop - start
            sigmas = sigmas.reshape(n_rays, self.n_samples)
            rgbs = rgbs.reshape(n_rays, self.n_samples, 3)
            out = renderer.forward(sigmas, rgbs, deltas, t_vals)
            colors[start:stop] = out.colors
            depths[start:stop] = out.depth
        rgb_image = np.clip(colors, 0.0, 1.0).reshape(camera.height, camera.width, 3)
        depth_image = depths.reshape(camera.height, camera.width)
        return rgb_image, depth_image
