"""Analytic scenes: density/albedo fields built from geometric primitives.

Each :class:`Primitive` exposes a signed-distance-like ``density_at`` and an
``albedo_at``.  An :class:`AnalyticScene` aggregates primitives into a single
volumetric field that the ground-truth renderer integrates and that the NeRF
models learn to reproduce.  Densities use a smooth falloff near the surface
so the learning problem is well conditioned at the modest resolutions the
pure-Python reproduction trains at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

ColorLike = Tuple[float, float, float]
ColorFn = Callable[[np.ndarray], np.ndarray]


def _resolve_color(points: np.ndarray, color) -> np.ndarray:
    """Evaluate a constant color or a color function at ``points``."""
    if callable(color):
        values = np.asarray(color(points), dtype=np.float64)
        if values.shape != (points.shape[0], 3):
            raise ValueError("color functions must return an (N, 3) array")
        return np.clip(values, 0.0, 1.0)
    values = np.asarray(color, dtype=np.float64)
    return np.clip(np.broadcast_to(values, (points.shape[0], 3)), 0.0, 1.0).copy()


def _soft_occupancy(signed_distance: np.ndarray, softness: float) -> np.ndarray:
    """Map a signed distance (negative inside) to occupancy in [0, 1]."""
    return 1.0 / (1.0 + np.exp(np.clip(signed_distance / max(softness, 1e-6), -40.0, 40.0)))


class Primitive:
    """Base class for analytic scene primitives.

    Sub-classes implement :meth:`signed_distance`; density is derived from it
    with a sigmoid falloff of width ``softness`` and peak value ``density``.
    """

    def __init__(self, density: float = 40.0, color: ColorLike | ColorFn = (0.8, 0.8, 0.8),
                 softness: float = 0.015):
        if density <= 0:
            raise ValueError("density must be positive")
        self.density = float(density)
        self.color = color
        self.softness = float(softness)

    def signed_distance(self, points: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def density_at(self, points: np.ndarray) -> np.ndarray:
        """Volumetric density (1/distance units) at each point."""
        points = np.asarray(points, dtype=np.float64)
        return self.density * _soft_occupancy(self.signed_distance(points), self.softness)

    def albedo_at(self, points: np.ndarray) -> np.ndarray:
        """View-independent RGB albedo at each point."""
        points = np.asarray(points, dtype=np.float64)
        return _resolve_color(points, self.color)


class Sphere(Primitive):
    """Solid sphere."""

    def __init__(self, center, radius: float, **kwargs):
        super().__init__(**kwargs)
        if radius <= 0:
            raise ValueError("radius must be positive")
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        return np.linalg.norm(points - self.center, axis=-1) - self.radius


class Box(Primitive):
    """Axis-aligned solid box defined by its center and half-extents."""

    def __init__(self, center, half_extents, **kwargs):
        super().__init__(**kwargs)
        self.center = np.asarray(center, dtype=np.float64)
        self.half_extents = np.asarray(half_extents, dtype=np.float64)
        if np.any(self.half_extents <= 0):
            raise ValueError("half_extents must be positive")

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        q = np.abs(points - self.center) - self.half_extents
        outside = np.linalg.norm(np.maximum(q, 0.0), axis=-1)
        inside = np.minimum(np.max(q, axis=-1), 0.0)
        return outside + inside


class Cylinder(Primitive):
    """Solid vertical (z-aligned) cylinder."""

    def __init__(self, center, radius: float, half_height: float, **kwargs):
        super().__init__(**kwargs)
        if radius <= 0 or half_height <= 0:
            raise ValueError("radius and half_height must be positive")
        self.center = np.asarray(center, dtype=np.float64)
        self.radius = float(radius)
        self.half_height = float(half_height)

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        rel = points - self.center
        radial = np.linalg.norm(rel[..., :2], axis=-1) - self.radius
        axial = np.abs(rel[..., 2]) - self.half_height
        outside = np.linalg.norm(
            np.stack([np.maximum(radial, 0.0), np.maximum(axial, 0.0)], axis=-1), axis=-1
        )
        inside = np.minimum(np.maximum(radial, axial), 0.0)
        return outside + inside


class GroundPlane(Primitive):
    """Horizontal slab ``z <= height`` of finite thickness (scene floor/walls)."""

    def __init__(self, height: float, thickness: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        if thickness <= 0:
            raise ValueError("thickness must be positive")
        self.height = float(height)
        self.thickness = float(thickness)

    def signed_distance(self, points: np.ndarray) -> np.ndarray:
        z = points[..., 2]
        top = z - self.height
        bottom = (self.height - self.thickness) - z
        return np.maximum(top, bottom)


def checker_color(color_a: ColorLike, color_b: ColorLike, scale: float = 4.0,
                  axes: Sequence[int] = (0, 1)) -> ColorFn:
    """Return a color function producing a checkerboard of two colors."""
    color_a = np.asarray(color_a, dtype=np.float64)
    color_b = np.asarray(color_b, dtype=np.float64)

    def fn(points: np.ndarray) -> np.ndarray:
        coords = np.floor(points[:, list(axes)] * scale).astype(np.int64)
        parity = np.mod(coords.sum(axis=1), 2)
        return np.where(parity[:, None] == 0, color_a[None, :], color_b[None, :])

    return fn


def gradient_color(color_low: ColorLike, color_high: ColorLike, axis: int = 2,
                   low: float = -1.0, high: float = 1.0) -> ColorFn:
    """Return a color function interpolating between two colors along an axis."""
    color_low = np.asarray(color_low, dtype=np.float64)
    color_high = np.asarray(color_high, dtype=np.float64)

    def fn(points: np.ndarray) -> np.ndarray:
        t = np.clip((points[:, axis] - low) / max(high - low, 1e-9), 0.0, 1.0)
        return color_low[None, :] * (1.0 - t[:, None]) + color_high[None, :] * t[:, None]

    return fn


@dataclass
class AnalyticScene:
    """A volumetric scene assembled from primitives.

    Attributes
    ----------
    name:
        Scene identifier (e.g. ``"ficus"``).
    primitives:
        The solid objects making up the scene.
    scene_bound:
        The scene content lives inside ``[-scene_bound, scene_bound]^3``;
        the hash grid is mapped over this cube.
    """

    name: str
    primitives: List[Primitive] = field(default_factory=list)
    scene_bound: float = 1.0

    def __post_init__(self) -> None:
        if self.scene_bound <= 0:
            raise ValueError("scene_bound must be positive")

    def add(self, primitive: Primitive) -> "AnalyticScene":
        """Append a primitive and return ``self`` for chaining."""
        self.primitives.append(primitive)
        return self

    def density_at(self, points: np.ndarray) -> np.ndarray:
        """Total volumetric density at ``points`` (shape ``(N,)``)."""
        points = np.asarray(points, dtype=np.float64)
        if not self.primitives:
            return np.zeros(points.shape[0])
        total = np.zeros(points.shape[0])
        for prim in self.primitives:
            total += prim.density_at(points)
        return total

    def color_at(self, points: np.ndarray) -> np.ndarray:
        """Density-weighted blend of the primitives' albedos at ``points``."""
        points = np.asarray(points, dtype=np.float64)
        n = points.shape[0]
        if not self.primitives:
            return np.zeros((n, 3))
        weighted = np.zeros((n, 3))
        total = np.zeros(n)
        for prim in self.primitives:
            dens = prim.density_at(points)
            weighted += dens[:, None] * prim.albedo_at(points)
            total += dens
        safe_total = np.maximum(total, 1e-9)
        colors = weighted / safe_total[:, None]
        colors[total < 1e-9] = 0.0
        return np.clip(colors, 0.0, 1.0)

    def query(self, points: np.ndarray, dirs: Optional[np.ndarray] = None):
        """Radiance-field style query returning ``(sigma, rgb)``.

        ``dirs`` is accepted for interface compatibility with the learned
        models; the analytic scenes are Lambertian so it is ignored.
        """
        return self.density_at(points), self.color_at(points)

    @property
    def n_primitives(self) -> int:
        return len(self.primitives)
