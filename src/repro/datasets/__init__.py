"""Scene and dataset substrate.

The paper evaluates on NeRF-Synthetic, SILVR and ScanNet.  Those datasets
cannot be redistributed or downloaded in this offline environment, so the
reproduction builds *analytic* scenes — density and albedo fields composed of
geometric primitives — and renders ground-truth posed views of them with an
exact volume renderer.  Every experiment that the paper runs "averaged over
the eight scenes of NeRF-Synthetic" runs here averaged over the eight
procedural object scenes of :func:`~repro.datasets.synthetic.nerf_synthetic_like`,
and likewise for the SILVR-like and ScanNet-like suites.

See DESIGN.md §1 for why this substitution preserves the behaviours the
paper measures.
"""

from repro.datasets.scene import (
    AnalyticScene,
    Box,
    Cylinder,
    GroundPlane,
    Primitive,
    Sphere,
)
from repro.datasets.renderer import GroundTruthRenderer
from repro.datasets.dataset import (SceneDataset, RenderedView, build_dataset,
                                    DatasetValidationError, validate_dataset,
                                    validate_view)
from repro.datasets.synthetic import NERF_SYNTHETIC_SCENES, make_synthetic_scene, nerf_synthetic_like
from repro.datasets.silvr import SILVR_SCENES, make_silvr_scene, silvr_like
from repro.datasets.scannet import SCANNET_SCENES, make_scannet_scene, scannet_like

__all__ = [
    "AnalyticScene",
    "Primitive",
    "Sphere",
    "Box",
    "Cylinder",
    "GroundPlane",
    "GroundTruthRenderer",
    "SceneDataset",
    "RenderedView",
    "build_dataset",
    "DatasetValidationError",
    "validate_dataset",
    "validate_view",
    "NERF_SYNTHETIC_SCENES",
    "make_synthetic_scene",
    "nerf_synthetic_like",
    "SILVR_SCENES",
    "make_silvr_scene",
    "silvr_like",
    "SCANNET_SCENES",
    "make_scannet_scene",
    "scannet_like",
]
