"""NeRF-Synthetic-like procedural object scenes.

The paper's headline numbers are averaged over the eight object scenes of the
NeRF-Synthetic dataset (chair, drums, ficus, hotdog, lego, materials, mic,
ship).  This module builds eight procedural stand-ins with the same names;
each is an object-scale arrangement of primitives with distinct geometry and
color structure so that scene-to-scene variation (and the average over the
suite) behaves like the original benchmark.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.datasets.dataset import SceneDataset, build_dataset
from repro.datasets.scene import (
    AnalyticScene,
    Box,
    Cylinder,
    GroundPlane,
    Sphere,
    checker_color,
    gradient_color,
)
from repro.utils.seeding import derive_rng

#: The eight scene names of the NeRF-Synthetic benchmark.
NERF_SYNTHETIC_SCENES = (
    "chair",
    "drums",
    "ficus",
    "hotdog",
    "lego",
    "materials",
    "mic",
    "ship",
)


def _chair() -> AnalyticScene:
    scene = AnalyticScene(name="chair", scene_bound=1.0)
    seat_color = (0.55, 0.35, 0.2)
    scene.add(Box(center=(0.0, 0.0, 0.0), half_extents=(0.3, 0.3, 0.04), color=seat_color))
    scene.add(Box(center=(0.0, -0.28, 0.3), half_extents=(0.3, 0.04, 0.3), color=seat_color))
    for dx in (-0.24, 0.24):
        for dy in (-0.24, 0.24):
            scene.add(Box(center=(dx, dy, -0.25), half_extents=(0.04, 0.04, 0.22),
                          color=(0.35, 0.22, 0.12)))
    return scene


def _drums() -> AnalyticScene:
    scene = AnalyticScene(name="drums", scene_bound=1.0)
    scene.add(Cylinder(center=(0.0, 0.0, -0.1), radius=0.35, half_height=0.18,
                       color=(0.75, 0.1, 0.12)))
    scene.add(Cylinder(center=(-0.45, 0.2, -0.2), radius=0.2, half_height=0.12,
                       color=(0.12, 0.12, 0.7)))
    scene.add(Cylinder(center=(0.45, 0.2, -0.2), radius=0.2, half_height=0.12,
                       color=(0.9, 0.75, 0.2)))
    scene.add(Sphere(center=(-0.35, -0.3, 0.25), radius=0.14, color=(0.85, 0.85, 0.9)))
    scene.add(Sphere(center=(0.35, -0.3, 0.25), radius=0.14, color=(0.85, 0.85, 0.9)))
    return scene


def _ficus() -> AnalyticScene:
    scene = AnalyticScene(name="ficus", scene_bound=1.0)
    scene.add(Cylinder(center=(0.0, 0.0, -0.45), radius=0.18, half_height=0.12,
                       color=(0.6, 0.3, 0.15)))
    scene.add(Cylinder(center=(0.0, 0.0, -0.1), radius=0.035, half_height=0.3,
                       color=(0.45, 0.3, 0.18)))
    rng = derive_rng(7, "ficus:leaves")
    for _ in range(10):
        offset = rng.uniform(-0.32, 0.32, size=3)
        offset[2] = rng.uniform(0.1, 0.55)
        scene.add(Sphere(center=offset, radius=rng.uniform(0.08, 0.16),
                         color=(0.1, rng.uniform(0.45, 0.7), 0.15)))
    return scene


def _hotdog() -> AnalyticScene:
    scene = AnalyticScene(name="hotdog", scene_bound=1.0)
    scene.add(Box(center=(0.0, 0.0, -0.2), half_extents=(0.55, 0.4, 0.05),
                  color=(0.9, 0.9, 0.92)))
    scene.add(Cylinder(center=(0.0, -0.12, -0.05), radius=0.1, half_height=0.42,
                       color=(0.95, 0.8, 0.45)))
    scene.add(Cylinder(center=(0.0, 0.12, -0.05), radius=0.1, half_height=0.42,
                       color=(0.95, 0.8, 0.45)))
    scene.add(Cylinder(center=(0.0, 0.0, 0.05), radius=0.08, half_height=0.4,
                       color=(0.75, 0.3, 0.15)))
    return scene


def _lego() -> AnalyticScene:
    scene = AnalyticScene(name="lego", scene_bound=1.0)
    scene.add(Box(center=(0.0, 0.0, -0.3), half_extents=(0.5, 0.35, 0.08),
                  color=(0.8, 0.65, 0.1)))
    scene.add(Box(center=(-0.25, 0.0, -0.05), half_extents=(0.2, 0.3, 0.18),
                  color=(0.8, 0.65, 0.1)))
    scene.add(Box(center=(0.3, 0.0, 0.0), half_extents=(0.16, 0.12, 0.25),
                  color=(0.35, 0.35, 0.35)))
    scene.add(Cylinder(center=(0.3, 0.0, 0.33), radius=0.05, half_height=0.14,
                       color=(0.25, 0.25, 0.25)))
    for dy in (-0.22, 0.22):
        scene.add(Cylinder(center=(-0.1, dy, -0.35), radius=0.12, half_height=0.08,
                           color=(0.2, 0.2, 0.2)))
    return scene


def _materials() -> AnalyticScene:
    scene = AnalyticScene(name="materials", scene_bound=1.0)
    colors = [
        (0.85, 0.15, 0.15),
        (0.15, 0.75, 0.2),
        (0.15, 0.25, 0.85),
        (0.9, 0.8, 0.2),
        (0.7, 0.2, 0.75),
        (0.2, 0.75, 0.8),
    ]
    rng = derive_rng(11, "materials:spheres")
    for i, color in enumerate(colors):
        x = -0.55 + 0.22 * (i % 3) + rng.uniform(-0.02, 0.02)
        y = -0.2 + 0.4 * (i // 3) + rng.uniform(-0.02, 0.02)
        scene.add(Sphere(center=(x + 0.2, y, -0.15), radius=0.13, color=color))
    scene.add(Box(center=(0.0, 0.0, -0.35), half_extents=(0.6, 0.45, 0.05),
                  color=checker_color((0.85, 0.85, 0.85), (0.25, 0.25, 0.25), scale=5.0)))
    return scene


def _mic() -> AnalyticScene:
    scene = AnalyticScene(name="mic", scene_bound=1.0)
    scene.add(Sphere(center=(0.0, 0.0, 0.35), radius=0.2, color=(0.55, 0.55, 0.6)))
    scene.add(Cylinder(center=(0.0, 0.0, -0.05), radius=0.05, half_height=0.32,
                       color=(0.2, 0.2, 0.22)))
    scene.add(Cylinder(center=(0.0, 0.0, -0.42), radius=0.25, half_height=0.05,
                       color=(0.15, 0.15, 0.16)))
    scene.add(Box(center=(0.3, 0.0, 0.1), half_extents=(0.03, 0.03, 0.35),
                  color=(0.4, 0.4, 0.42)))
    return scene


def _ship() -> AnalyticScene:
    scene = AnalyticScene(name="ship", scene_bound=1.0)
    scene.add(Box(center=(0.0, 0.0, -0.3), half_extents=(0.6, 0.22, 0.1),
                  color=(0.45, 0.28, 0.15)))
    scene.add(Box(center=(0.0, 0.0, -0.15), half_extents=(0.45, 0.16, 0.06),
                  color=(0.5, 0.32, 0.18)))
    scene.add(Cylinder(center=(0.1, 0.0, 0.2), radius=0.03, half_height=0.4,
                       color=(0.35, 0.25, 0.15)))
    scene.add(Box(center=(0.1, 0.0, 0.3), half_extents=(0.22, 0.01, 0.18),
                  color=(0.92, 0.92, 0.88)))
    scene.add(GroundPlane(height=-0.4, thickness=0.15,
                          color=gradient_color((0.05, 0.2, 0.4), (0.1, 0.45, 0.6),
                                               axis=2, low=-0.55, high=-0.4),
                          density=25.0))
    return scene


_BUILDERS = {
    "chair": _chair,
    "drums": _drums,
    "ficus": _ficus,
    "hotdog": _hotdog,
    "lego": _lego,
    "materials": _materials,
    "mic": _mic,
    "ship": _ship,
}


def make_synthetic_scene(name: str) -> AnalyticScene:
    """Build one of the eight NeRF-Synthetic-like object scenes by name."""
    if name not in _BUILDERS:
        raise ValueError(f"unknown NeRF-Synthetic-like scene {name!r}; "
                         f"choose one of {sorted(_BUILDERS)}")
    return _BUILDERS[name]()


def nerf_synthetic_like(scenes: Optional[Iterable[str]] = None,
                        n_train_views: int = 12, n_test_views: int = 3,
                        image_size: int = 40, seed: int = 0) -> List[SceneDataset]:
    """Render datasets for the requested NeRF-Synthetic-like scenes.

    By default all eight scenes are built (matching the paper's "averaged on
    the eight scenes" protocol); pass a subset of names for faster runs.
    """
    names = list(scenes) if scenes is not None else list(NERF_SYNTHETIC_SCENES)
    datasets = []
    for name in names:
        scene = make_synthetic_scene(name)
        datasets.append(
            build_dataset(scene, n_train_views=n_train_views, n_test_views=n_test_views,
                          image_size=image_size, seed=seed, suite="nerf_synthetic")
        )
    return datasets
