"""Posed-view dataset container and builder."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.renderer import GroundTruthRenderer
from repro.datasets.scene import AnalyticScene
from repro.nerf.cameras import PinholeCamera
from repro.utils.math3d import spherical_pose
from repro.utils.seeding import derive_rng


@dataclass
class RenderedView:
    """One posed ground-truth view: camera, RGB image and depth map."""

    camera: PinholeCamera
    rgb: np.ndarray
    depth: np.ndarray


@dataclass
class SceneDataset:
    """Training/test views of one analytic scene.

    The structure mirrors a NeRF-Synthetic scene directory: a handful of
    training views spread over the upper hemisphere plus held-out test views
    used for PSNR evaluation.
    """

    name: str
    scene: AnalyticScene
    train_views: List[RenderedView] = field(default_factory=list)
    test_views: List[RenderedView] = field(default_factory=list)
    suite: str = "custom"

    @property
    def train_cameras(self) -> List[PinholeCamera]:
        return [view.camera for view in self.train_views]

    @property
    def train_images(self) -> List[np.ndarray]:
        return [view.rgb for view in self.train_views]

    @property
    def test_cameras(self) -> List[PinholeCamera]:
        return [view.camera for view in self.test_views]

    @property
    def test_images(self) -> List[np.ndarray]:
        return [view.rgb for view in self.test_views]

    @property
    def scene_bound(self) -> float:
        return self.scene.scene_bound

    @property
    def n_train_views(self) -> int:
        return len(self.train_views)

    @property
    def n_test_views(self) -> int:
        return len(self.test_views)


def _camera_ring(n_views: int, radius: float, image_size: int, focal: float,
                 near: float, far: float, rng: np.random.Generator,
                 elevation_range=(0.2, 0.9), target=(0.0, 0.0, 0.0),
                 jitter: float = 0.05) -> List[PinholeCamera]:
    """Inward-facing cameras spread around the scene (NeRF-Synthetic style rig)."""
    cameras = []
    for i in range(n_views):
        theta = 2.0 * np.pi * i / max(n_views, 1) + rng.uniform(-jitter, jitter)
        phi = rng.uniform(*elevation_range)
        pose = spherical_pose(radius, theta, phi, target=target)
        cameras.append(
            PinholeCamera(width=image_size, height=image_size, focal=focal,
                          pose=pose, near=near, far=far)
        )
    return cameras


def build_dataset(scene: AnalyticScene, n_train_views: int = 12, n_test_views: int = 4,
                  image_size: int = 40, seed: int = 0, suite: str = "custom",
                  camera_radius: Optional[float] = None,
                  gt_samples: int = 96) -> SceneDataset:
    """Render a train/test dataset of posed views for ``scene``.

    Parameters
    ----------
    scene:
        The analytic scene to photograph.
    n_train_views / n_test_views:
        Number of posed views in each split.
    image_size:
        Square image resolution in pixels.  The pure-Python reproduction
        defaults to small images; the geometry of the workload (rays,
        samples, grid accesses) scales linearly so the profile shape is
        unchanged.
    seed:
        Seed for the camera-rig jitter (derived per split).
    camera_radius:
        Distance of the camera ring from the origin; defaults to 2.2x the
        scene bound, matching the NeRF-Synthetic framing.
    gt_samples:
        Quadrature samples per ray for the ground-truth renderer.
    """
    if n_train_views < 1 or n_test_views < 1:
        raise ValueError("both splits need at least one view")
    radius = camera_radius if camera_radius is not None else 2.2 * scene.scene_bound
    focal = 1.1 * image_size
    near = max(0.05, radius - 2.0 * scene.scene_bound)
    far = radius + 2.0 * scene.scene_bound
    renderer = GroundTruthRenderer(n_samples=gt_samples)

    def render_split(n_views: int, key: str) -> List[RenderedView]:
        rng = derive_rng(seed, f"{scene.name}:{key}")
        cameras = _camera_ring(
            n_views, radius, image_size, focal, near, far, rng
        )
        views = []
        for camera in cameras:
            rgb, depth = renderer.render(scene, camera)
            views.append(RenderedView(camera=camera, rgb=rgb, depth=depth))
        return views

    return SceneDataset(
        name=scene.name,
        scene=scene,
        train_views=render_split(n_train_views, "train"),
        test_views=render_split(n_test_views, "test"),
        suite=suite,
    )
