"""Posed-view dataset container, builder and input validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.datasets.renderer import GroundTruthRenderer
from repro.datasets.scene import AnalyticScene
from repro.nerf.cameras import PinholeCamera
from repro.utils.math3d import spherical_pose
from repro.utils.seeding import derive_rng


@dataclass
class RenderedView:
    """One posed ground-truth view: camera, RGB image and depth map."""

    camera: PinholeCamera
    rgb: np.ndarray
    depth: np.ndarray


class DatasetValidationError(ValueError):
    """A dataset's views or intrinsics are malformed (non-finite, bad shape)."""


def validate_view(view: RenderedView, label: str = "view",
                  direction_tolerance: float = 1e-6) -> None:
    """Validate one posed view's image, depth and camera intrinsics.

    Checks, in order: image/depth shapes match the camera's pixel grid;
    pixel and depth values are finite; the camera pose is finite with
    ``focal > 0``; and the pose's rotation block is orthonormal (within
    ``direction_tolerance``).  The ray generator re-normalizes direction
    *lengths*, so a sheared or scaled rotation block would not blow up —
    it would silently bend every ray's orientation instead, which is why
    the block itself is checked rather than the emitted rays.  Raises
    :class:`DatasetValidationError` naming the offending view.
    """
    camera = view.camera
    rgb = np.asarray(view.rgb)
    expected = (camera.height, camera.width, 3)
    if rgb.shape != expected:
        raise DatasetValidationError(
            f"{label}: rgb shape {rgb.shape} does not match the camera's "
            f"{expected}")
    if not np.isfinite(rgb).all():
        raise DatasetValidationError(f"{label}: rgb image has non-finite pixels")
    if view.depth is not None:
        depth = np.asarray(view.depth)
        if depth.shape != (camera.height, camera.width):
            raise DatasetValidationError(
                f"{label}: depth shape {depth.shape} does not match the "
                f"camera's {(camera.height, camera.width)}")
        if not np.isfinite(depth).all():
            raise DatasetValidationError(
                f"{label}: depth map has non-finite values")
    if not np.isfinite(np.asarray(camera.pose)).all():
        raise DatasetValidationError(f"{label}: camera pose has non-finite "
                                     f"entries")
    if not (np.isfinite(camera.focal) and camera.focal > 0):
        raise DatasetValidationError(
            f"{label}: focal length must be finite and > 0, "
            f"got {camera.focal}")
    rotation = np.asarray(camera.pose, dtype=np.float64)[:3, :3]
    gram_error = float(np.max(np.abs(rotation.T @ rotation - np.eye(3))))
    if gram_error > direction_tolerance:
        raise DatasetValidationError(
            f"{label}: pose rotation block is not orthonormal "
            f"(max |R^T R - I| = {gram_error:.2e}); a sheared or scaled "
            f"pose bends every ray direction the camera emits")


def validate_dataset(dataset: "SceneDataset") -> "SceneDataset":
    """Validate every view of ``dataset``; return it for call chaining.

    Loader-facing entry point: ``scannet_like`` / ``silvr_like`` run it on
    their rendered output so malformed input fails at load time with a
    named view instead of surfacing as a NaN hundreds of iterations into
    training.
    """
    for split, views in (("train", dataset.train_views),
                         ("test", dataset.test_views)):
        for index, view in enumerate(views):
            validate_view(view,
                          label=f"{dataset.name}: {split} view {index}")
    return dataset


@dataclass
class SceneDataset:
    """Training/test views of one analytic scene.

    The structure mirrors a NeRF-Synthetic scene directory: a handful of
    training views spread over the upper hemisphere plus held-out test views
    used for PSNR evaluation.
    """

    name: str
    scene: AnalyticScene
    train_views: List[RenderedView] = field(default_factory=list)
    test_views: List[RenderedView] = field(default_factory=list)
    suite: str = "custom"

    @property
    def train_cameras(self) -> List[PinholeCamera]:
        return [view.camera for view in self.train_views]

    @property
    def train_images(self) -> List[np.ndarray]:
        return [view.rgb for view in self.train_views]

    @property
    def test_cameras(self) -> List[PinholeCamera]:
        return [view.camera for view in self.test_views]

    @property
    def test_images(self) -> List[np.ndarray]:
        return [view.rgb for view in self.test_views]

    @property
    def scene_bound(self) -> float:
        return self.scene.scene_bound

    @property
    def n_train_views(self) -> int:
        return len(self.train_views)

    @property
    def n_test_views(self) -> int:
        return len(self.test_views)


def _camera_ring(n_views: int, radius: float, image_size: int, focal: float,
                 near: float, far: float, rng: np.random.Generator,
                 elevation_range=(0.2, 0.9), target=(0.0, 0.0, 0.0),
                 jitter: float = 0.05) -> List[PinholeCamera]:
    """Inward-facing cameras spread around the scene (NeRF-Synthetic style rig)."""
    cameras = []
    for i in range(n_views):
        theta = 2.0 * np.pi * i / max(n_views, 1) + rng.uniform(-jitter, jitter)
        phi = rng.uniform(*elevation_range)
        pose = spherical_pose(radius, theta, phi, target=target)
        cameras.append(
            PinholeCamera(width=image_size, height=image_size, focal=focal,
                          pose=pose, near=near, far=far)
        )
    return cameras


def build_dataset(scene: AnalyticScene, n_train_views: int = 12, n_test_views: int = 4,
                  image_size: int = 40, seed: int = 0, suite: str = "custom",
                  camera_radius: Optional[float] = None,
                  gt_samples: int = 96) -> SceneDataset:
    """Render a train/test dataset of posed views for ``scene``.

    Parameters
    ----------
    scene:
        The analytic scene to photograph.
    n_train_views / n_test_views:
        Number of posed views in each split.
    image_size:
        Square image resolution in pixels.  The pure-Python reproduction
        defaults to small images; the geometry of the workload (rays,
        samples, grid accesses) scales linearly so the profile shape is
        unchanged.
    seed:
        Seed for the camera-rig jitter (derived per split).
    camera_radius:
        Distance of the camera ring from the origin; defaults to 2.2x the
        scene bound, matching the NeRF-Synthetic framing.
    gt_samples:
        Quadrature samples per ray for the ground-truth renderer.
    """
    if n_train_views < 1 or n_test_views < 1:
        raise ValueError("both splits need at least one view")
    radius = camera_radius if camera_radius is not None else 2.2 * scene.scene_bound
    focal = 1.1 * image_size
    near = max(0.05, radius - 2.0 * scene.scene_bound)
    far = radius + 2.0 * scene.scene_bound
    renderer = GroundTruthRenderer(n_samples=gt_samples)

    def render_split(n_views: int, key: str) -> List[RenderedView]:
        rng = derive_rng(seed, f"{scene.name}:{key}")
        cameras = _camera_ring(
            n_views, radius, image_size, focal, near, far, rng
        )
        views = []
        for camera in cameras:
            rgb, depth = renderer.render(scene, camera)
            views.append(RenderedView(camera=camera, rgb=rgb, depth=depth))
        return views

    return SceneDataset(
        name=scene.name,
        scene=scene,
        train_views=render_split(n_train_views, "train"),
        test_views=render_split(n_test_views, "test"),
        suite=suite,
    )
