"""SILVR-like large-volume plenoptic scenes.

SILVR (Courteaux et al., 2022) is a synthetic *immersive, large-volume*
dataset: cameras are positioned inside sizeable environments rather than
orbiting a single object.  The stand-ins here use a larger scene bound and
more, larger primitives than the object scenes, and the camera rig sits at a
wider radius, so the hash grid must cover more occupied volume — which is the
property that makes the paper's SILVR runtimes ~1.9x NeRF-Synthetic's.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.datasets.dataset import SceneDataset, build_dataset, validate_dataset
from repro.datasets.scene import (
    AnalyticScene,
    Box,
    Cylinder,
    GroundPlane,
    Sphere,
    checker_color,
    gradient_color,
)
from repro.utils.seeding import derive_rng

#: Scene names of the SILVR-like large-volume suite.
SILVR_SCENES = ("garden", "agora", "zen_garden")


def _garden() -> AnalyticScene:
    scene = AnalyticScene(name="garden", scene_bound=2.0)
    scene.add(GroundPlane(height=-1.0, thickness=0.25,
                          color=checker_color((0.2, 0.5, 0.2), (0.15, 0.4, 0.15), scale=2.0),
                          density=30.0))
    rng = derive_rng(21, "silvr:garden")
    for _ in range(8):
        x, y = rng.uniform(-1.6, 1.6, size=2)
        height = rng.uniform(0.4, 0.9)
        scene.add(Cylinder(center=(x, y, -0.9 + height / 2), radius=0.08,
                           half_height=height / 2, color=(0.4, 0.26, 0.13)))
        scene.add(Sphere(center=(x, y, -0.8 + height), radius=rng.uniform(0.25, 0.45),
                         color=(0.12, rng.uniform(0.4, 0.65), 0.14)))
    scene.add(Box(center=(0.0, 0.0, -0.85), half_extents=(0.5, 0.5, 0.12),
                  color=(0.6, 0.6, 0.62)))
    return scene


def _agora() -> AnalyticScene:
    scene = AnalyticScene(name="agora", scene_bound=2.0)
    scene.add(GroundPlane(height=-1.0, thickness=0.25,
                          color=checker_color((0.75, 0.72, 0.68), (0.6, 0.58, 0.55), scale=1.5),
                          density=30.0))
    for i in range(10):
        angle = 2.0 * np.pi * i / 10
        x = 1.5 * float(np.cos(angle))
        y = 1.5 * float(np.sin(angle))
        scene.add(Cylinder(center=(x, y, -0.3), radius=0.12, half_height=0.7,
                           color=(0.85, 0.83, 0.78)))
    scene.add(Box(center=(0.0, 0.0, 0.45), half_extents=(1.7, 1.7, 0.06),
                  color=(0.8, 0.78, 0.72)))
    scene.add(Sphere(center=(0.0, 0.0, -0.5), radius=0.4,
                     color=gradient_color((0.7, 0.5, 0.2), (0.9, 0.8, 0.4),
                                          axis=2, low=-0.9, high=-0.1)))
    return scene


def _zen_garden() -> AnalyticScene:
    scene = AnalyticScene(name="zen_garden", scene_bound=2.0)
    scene.add(GroundPlane(height=-1.0, thickness=0.2,
                          color=(0.85, 0.82, 0.75), density=30.0))
    rng = derive_rng(23, "silvr:zen")
    for _ in range(6):
        center = rng.uniform(-1.4, 1.4, size=3)
        center[2] = rng.uniform(-0.85, -0.6)
        scene.add(Sphere(center=center, radius=rng.uniform(0.2, 0.5),
                         color=(0.45, 0.45, 0.48)))
    scene.add(Box(center=(1.2, -1.2, -0.55), half_extents=(0.35, 0.35, 0.4),
                  color=(0.5, 0.3, 0.2)))
    scene.add(Cylinder(center=(-1.2, 1.2, -0.4), radius=0.25, half_height=0.55,
                       color=(0.3, 0.45, 0.3)))
    return scene


_BUILDERS = {
    "garden": _garden,
    "agora": _agora,
    "zen_garden": _zen_garden,
}


def make_silvr_scene(name: str) -> AnalyticScene:
    """Build one SILVR-like large-volume scene by name."""
    if name not in _BUILDERS:
        raise ValueError(f"unknown SILVR-like scene {name!r}; choose one of {sorted(_BUILDERS)}")
    return _BUILDERS[name]()


def silvr_like(scenes: Optional[Iterable[str]] = None, n_train_views: int = 12,
               n_test_views: int = 3, image_size: int = 40, seed: int = 0
               ) -> List[SceneDataset]:
    """Render datasets for the SILVR-like suite (all three scenes by default)."""
    names = list(scenes) if scenes is not None else list(SILVR_SCENES)
    datasets = []
    for name in names:
        scene = make_silvr_scene(name)
        datasets.append(
            validate_dataset(
                build_dataset(scene, n_train_views=n_train_views,
                              n_test_views=n_test_views,
                              image_size=image_size, seed=seed, suite="silvr",
                              camera_radius=1.9 * scene.scene_bound))
        )
    return datasets
