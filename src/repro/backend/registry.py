"""Backend registry: name → factory, with lazily cached singleton instances.

Third-party backends register with :func:`register_backend` before
constructing configs; ``Instant3DConfig(backend=...)`` then selects them
end-to-end (trainer, grids, MLPs, renderer, optimisers, checkpoints).

The default backend is ``"numpy"`` unless the ``REPRO_BACKEND`` environment
variable names another registered backend — this is how the CI backend
matrix runs the entire tier-1 suite under each backend without touching
test code.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Tuple, Union

from repro.backend.base import ArrayBackend

__all__ = [
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "default_backend_name",
    "BackendLike",
]

#: Environment variable selecting the default backend for the process.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}

BackendLike = Optional[Union[str, ArrayBackend]]


def register_backend(name: str, factory: Callable[[], ArrayBackend],
                     overwrite: bool = False) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called at most once (instances are cached).  Registering
    an existing name raises unless ``overwrite=True``, so a typo cannot
    silently shadow the reference backend.
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"backend name must be a non-empty str, got {name!r}")
    if name in _FACTORIES and not overwrite:
        raise ValueError(
            f"backend {name!r} is already registered "
            f"(pass overwrite=True to replace it)")
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, reference backend first."""
    names = sorted(_FACTORIES)
    if "numpy" in names:
        names.remove("numpy")
        names.insert(0, "numpy")
    return tuple(names)


def get_backend(name: str) -> ArrayBackend:
    """The cached singleton instance of backend ``name``."""
    instance = _INSTANCES.get(name)
    if instance is None:
        factory = _FACTORIES.get(name)
        if factory is None:
            raise ValueError(
                f"unknown backend {name!r}; registered backends: "
                f"{', '.join(available_backends())}")
        instance = factory()
        _INSTANCES[name] = instance
    return instance


def default_backend_name() -> str:
    """Process-default backend name (``REPRO_BACKEND`` env var or numpy)."""
    return os.environ.get(BACKEND_ENV_VAR, "numpy")


def resolve_backend(backend: BackendLike) -> ArrayBackend:
    """Normalise ``None`` / name / instance into an :class:`ArrayBackend`.

    ``None`` resolves to the process default, so components constructed
    without an explicit backend follow ``REPRO_BACKEND`` — and, with the
    variable unset, keep the pre-backend numpy numerics bit-exactly.
    """
    if backend is None:
        return get_backend(default_backend_name())
    if isinstance(backend, ArrayBackend):
        return backend
    if isinstance(backend, str):
        return get_backend(backend)
    raise TypeError(
        f"backend must be None, a name, or an ArrayBackend, got {backend!r}")
