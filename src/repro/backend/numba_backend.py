"""Optional ``NumbaBackend`` — JIT kernels for the three hottest primitives.

Only registered when numba is importable (``importlib.util.find_spec``
guard — the package never becomes a hard dependency).  The backend JITs the
three primitives profiling shows dominate a training step:

* ``take_out`` — the fused engine's flat address-plane gathers,
* ``scatter_add`` — the dense COO backward scatter,
* ``bincount_add`` — the per-corner segment reduction of the grid backward.

Each kernel is a plain sequential loop (no ``fastmath``, no ``parallel``),
so the accumulation order — and therefore the float result — matches the
numpy reference bit-for-bit on IEEE-conforming builds.  Everything else
inherits the reference implementation.
"""

from __future__ import annotations

import importlib.util

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

__all__ = ["NUMBA_AVAILABLE", "NumbaBackend"]

#: True when numba is importable in this environment.
NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

NumbaBackend = None

if NUMBA_AVAILABLE:  # pragma: no cover - exercised only where numba exists
    import numba

    @numba.njit(cache=True)
    def _take_flat(flat, indices, out):
        n = flat.shape[0]
        for i in range(indices.shape[0]):
            idx = indices[i]
            # mode="clip" semantics of the reference gather.
            if idx < 0:
                idx = 0
            elif idx >= n:
                idx = n - 1
            out[i] = flat[idx]
        return out

    @numba.njit(cache=True)
    def _scatter_add_rows(target, rows, values):
        # Sequential scan order: the np.add.at accumulation association.
        for i in range(rows.shape[0]):
            r = rows[i]
            for j in range(values.shape[1]):
                target[r, j] += values[i, j]

    @numba.njit(cache=True)
    def _scatter_add_flat(target, rows, values):
        for i in range(rows.shape[0]):
            target[rows[i]] += values[i]

    @numba.njit(cache=True)
    def _bincount_add(acc, indices, weights, scratch):
        for s in range(scratch.shape[0]):
            scratch[s] = 0.0
        for i in range(indices.shape[0]):
            scratch[indices[i]] += weights[i]
        for s in range(acc.shape[0]):
            acc[s] += scratch[s]

    class NumbaBackend(NumpyBackend):  # type: ignore[no-redef]
        """Reference backend with numba-JITted gather/scatter/segment-sum."""

        name = "numba"

        def __init__(self) -> None:
            self._bincount_scratch = np.zeros(0, dtype=np.float64)

        def take_out(self, flat, indices, out):
            if flat.ndim == 1 and indices.ndim == out.ndim == 1 \
                    and flat.dtype.kind != "c":
                return _take_flat(flat, indices.astype(np.int64, copy=False),
                                  out)
            return np.take(flat, indices, out=out, mode="clip")

        def scatter_add(self, target, rows, values, unique=False):
            if unique:
                target[rows] += values
                return
            rows64 = np.asarray(rows).astype(np.int64, copy=False)
            if target.ndim == 2 and values.ndim == 2:
                _scatter_add_rows(target, rows64, values)
            elif target.ndim == 1 and values.ndim == 1:
                _scatter_add_flat(target, rows64, values)
            else:
                np.add.at(target, rows, values)

        def bincount_add(self, acc, indices, weights, minlength):
            if acc.ndim != 1 or acc.dtype != np.float64:
                acc += np.bincount(indices, weights=weights,
                                   minlength=minlength)
                return
            if self._bincount_scratch.size < minlength:
                self._bincount_scratch = np.zeros(minlength, dtype=np.float64)
            _bincount_add(acc, indices.astype(np.int64, copy=False),
                          weights.astype(np.float64, copy=False),
                          self._bincount_scratch[:minlength])
