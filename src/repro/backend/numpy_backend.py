"""``NumpyBackend`` — the bit-exact float64 reference implementation.

Every primitive here is *definitionally* the numpy call the pre-backend
stack inlined at the corresponding call site, so running under this backend
(the default) reproduces the seed's training traces byte-for-byte.  All
other backends are differentially pinned against it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.backend.base import ArrayBackend

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Plain-numpy reference backend (the bit-exactness anchor)."""

    name = "numpy"
    deterministic = True

    # -- allocation hooks ---------------------------------------------------
    def empty(self, shape, dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def asarray(self, x, dtype=None) -> np.ndarray:
        return np.asarray(x, dtype=dtype)

    # -- gather / scatter ---------------------------------------------------
    def gather(self, table: np.ndarray, rows: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        # mode="clip" skips numpy's per-element bounds check; callers
        # guarantee in-range indices (hash addresses are masked/modded).
        return np.take(table, rows, axis=0, out=out, mode="clip")

    def take_out(self, flat: np.ndarray, indices: np.ndarray,
                 out: np.ndarray) -> np.ndarray:
        return np.take(flat, indices, out=out, mode="clip")

    def scatter_add(self, target: np.ndarray, rows: np.ndarray,
                    values: np.ndarray, unique: bool = False) -> None:
        if unique:
            target[rows] += values
        else:
            np.add.at(target, rows, values)

    def scatter_rows(self, target: np.ndarray, rows: np.ndarray,
                     values: np.ndarray) -> None:
        target[rows] = values

    # -- reductions ---------------------------------------------------------
    def segment_sum(self, values: np.ndarray, segment_ids: np.ndarray,
                    num_segments: int) -> np.ndarray:
        return np.bincount(segment_ids, weights=values,
                           minlength=num_segments)

    def bincount_add(self, acc: np.ndarray, indices: np.ndarray,
                     weights: np.ndarray, minlength: int) -> None:
        acc += np.bincount(indices, weights=weights, minlength=minlength)

    # -- linear algebra -----------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return np.matmul(a, b)
        return np.matmul(a, b, out=out)

    def einsum(self, spec: str, *operands,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return np.einsum(spec, *operands)
        return np.einsum(spec, *operands, out=out)

    # -- ordering / compaction ----------------------------------------------
    def argsort(self, x: np.ndarray) -> np.ndarray:
        # The base-class contract promises a *stable* permutation: equal keys
        # keep their input order.  Address-sorted scheduling makes tie order
        # semantically load-bearing (same-voxel samples must stay in draw
        # order across backends), so the default introsort would be a
        # contract violation waiting for a differential test to find it.
        return np.argsort(x, kind="stable")

    def cumsum(self, x: np.ndarray, axis: Optional[int] = None,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        return np.cumsum(x, axis=axis, out=out)

    def flatnonzero(self, x: np.ndarray) -> np.ndarray:
        return np.flatnonzero(x)

    # -- RNG-stream draw ----------------------------------------------------
    def draw_uniform(self, rng, out: np.ndarray) -> np.ndarray:
        try:
            # Modern Generator API: fill in place, no temporary.
            rng.random(out=out)
        except (AttributeError, TypeError):
            # Legacy RandomState / duck-typed generators: same stream
            # semantics, one temporary.
            out[...] = rng.uniform(0.0, 1.0, out.shape)
        return out

    # -- capability queries --------------------------------------------------
    def is_native(self, x) -> bool:
        return isinstance(x, np.ndarray)

    def is_native_f32(self, x) -> bool:
        return isinstance(x, np.ndarray) and x.dtype == np.float32

    def flat_pair_view(self, arr: np.ndarray) -> Optional[np.ndarray]:
        if (isinstance(arr, np.ndarray) and arr.ndim == 2
                and arr.shape[1] == 2 and arr.dtype == np.float32
                and arr.flags.c_contiguous):
            # One complex64 element per (f0, f1) row: row gathers/scatters
            # through this view move both features in a single flat take.
            return arr.view(np.complex64).reshape(-1)
        return None

    # -- host transfer ------------------------------------------------------
    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def from_numpy(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x)
