"""Pluggable array backends for the Instant-3D training stack.

See :mod:`repro.backend.base` for the protocol and ``docs/backend.md`` for
the seam inventory, the bit-exactness contract, and third-party
registration.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ArrayBackend
from repro.backend.fused import NumpyFusedBackend
from repro.backend.numba_backend import NUMBA_AVAILABLE, NumbaBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.registry import (
    BackendLike,
    available_backends,
    default_backend_name,
    get_backend,
    register_backend,
    resolve_backend,
)

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "NumpyFusedBackend",
    "NumbaBackend",
    "NUMBA_AVAILABLE",
    "BackendLike",
    "register_backend",
    "available_backends",
    "get_backend",
    "resolve_backend",
    "default_backend_name",
    "materialize",
]

register_backend("numpy", NumpyBackend)
register_backend("numpy_fused", NumpyFusedBackend)
if NUMBA_AVAILABLE and NumbaBackend is not None:
    register_backend("numba", NumbaBackend)


def materialize(node):
    """Convert a backend-native array leaf to a host ``numpy.ndarray``.

    Non-array values pass through untouched.  Checkpoint serialisation runs
    every leaf through this so saved files stay portable across backends.
    """
    if isinstance(node, np.ndarray):
        return node
    for name in available_backends():
        backend = get_backend(name)
        if backend.is_native(node):
            return backend.to_numpy(node)
    return node
