"""``NumpyFusedBackend`` — batched gather/scatter kernels over a private pool.

Proof that the :class:`~repro.backend.base.ArrayBackend` seam is real: a
second in-repo backend whose hot primitives run through **preallocated
out= kernels** instead of allocating fresh results.

* :meth:`bincount_add` — the grid backward's per-corner segment reduction —
  replaces ``acc += np.bincount(...)`` (which allocates a fresh float64
  result every call: 8 corners x levels x steps) with an unbuffered
  ``np.add.at`` into a pooled grow-only **zeroed** scratch followed by
  ``acc += scratch``.
* :meth:`gather` on contiguous ``(T, 2)`` float32 tables writes through the
  complex64 flat view when the caller supplies ``out=``: one flat take
  moves both features per row (the same batching trick the fused engine
  uses for its address planes), instead of numpy's strided axis-0 take.

Pooled scratch is *never handed to callers* — it is fully consumed inside
the primitive invocation — so no call site can observe aliasing between two
primitives.  Primitives called without ``out=`` allocate exactly like the
reference backend.

Bit-exactness: every override is arithmetic-identical to the
:class:`~repro.backend.numpy_backend.NumpyBackend` reference.  For
:meth:`bincount_add`, both forms accumulate contributions sequentially in
scan order into a zero-initialised buffer and then add the *completed*
per-segment sums to ``acc``, so the float association — and hence the
result — matches bit-for-bit.  (``np.add.at`` directly into the live
``acc`` would *not* be bit-identical: it would interleave individual
contributions with ``acc``'s prior contents under a different
association.)  The complex-view gather copies the same bytes the strided
take would.  Because of this the entire tier-1 suite — frozen-trace
oracles included — passes unchanged under ``REPRO_BACKEND=numpy_fused``,
which the CI backend matrix exercises.
"""

from __future__ import annotations

from math import prod
from typing import Dict, Optional, Tuple

import numpy as np

from repro.backend.numpy_backend import NumpyBackend

__all__ = ["NumpyFusedBackend"]


class NumpyFusedBackend(NumpyBackend):
    """Numpy backend with pooled ``out=`` kernels for the hot primitives."""

    name = "numpy_fused"

    def __init__(self) -> None:
        self._pool: Dict[Tuple[str, str], np.ndarray] = {}
        self.pool_hits = 0
        self.pool_misses = 0

    # -- pool ---------------------------------------------------------------
    def _scratch(self, key: str, size: int, dtype) -> np.ndarray:
        """Grow-only 1-D scratch keyed by ``(key, dtype)``; internal use only."""
        dt = np.dtype(dtype)
        size = int(size)
        pool_key = (key, dt.str)
        backing = self._pool.get(pool_key)
        if backing is None or backing.size < size:
            grown = size if backing is None else max(size, 2 * backing.size)
            backing = np.empty(grown, dtype=dt)
            self._pool[pool_key] = backing
            self.pool_misses += 1
        else:
            self.pool_hits += 1
        return backing[:size]

    # -- batched gathers ----------------------------------------------------
    def gather(self, table: np.ndarray, rows: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is not None and rows.ndim == 1:
            flat = self.flat_pair_view(table)
            out_flat = self.flat_pair_view(out)
            if flat is not None and out_flat is not None:
                # Single flat complex64 take: both features per row in one
                # gather, same bytes as the strided axis-0 take.
                np.take(flat, rows, out=out_flat, mode="clip")
                return out
        return np.take(table, rows, axis=0, out=out, mode="clip")

    # -- batched segment sums -----------------------------------------------
    def bincount_add(self, acc: np.ndarray, indices: np.ndarray,
                     weights: np.ndarray, minlength: int) -> None:
        # np.bincount always reduces in float64 regardless of acc's dtype —
        # the scratch must match for `acc += sums` to cast identically.
        scratch = self._scratch("bincount/acc", minlength, np.float64)
        scratch.fill(0)
        np.add.at(scratch, indices, weights)
        # Adding the *completed* per-segment sums preserves the reference
        # `acc += np.bincount(...)` float association bit-exactly.
        acc += scratch.reshape(acc.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"NumpyFusedBackend(pool_buffers={len(self._pool)}, "
                f"hits={self.pool_hits}, misses={self.pool_misses})")
