"""The ``ArrayBackend`` protocol: the narrow seam under every hot kernel.

The paper's thesis is algorithm–hardware co-design: one hash-grid training
algorithm mapped onto different execution substrates (grid cores, MLP units,
the backward-update-merging unit).  The Python stack mirrors that with a
single **backend seam**: every hot-path kernel — gather, scatter-add,
segment-sum, matmul, flat takes, compaction, RNG draws, arena allocation —
runs through an :class:`ArrayBackend` instance instead of calling ``np.*``
directly, so an alternative array library (numba-JITted kernels, torch, an
MLX-style port) can slot in without forking the algorithm code.

The protocol deliberately stays *narrow*: the ~12 primitives below are the
complete set the grid engine, MLP stack, renderer and optimiser actually
dispatch on.  Elementwise arithmetic (``np.multiply(..., out=...)`` and
friends) intentionally stays outside the seam — backend arrays are expected
to implement the numpy ufunc protocol (numpy's own arrays and numba host
arrays do natively), and ``docs/backend.md`` inventories every such call
left on a hot path.

Bit-exactness contract
----------------------
The float64 :class:`~repro.backend.numpy_backend.NumpyBackend` path is the
**bit-exact reference**: its primitives are definitionally the numpy calls
the pre-backend implementation inlined, so every frozen trace and
differential oracle anchors to it.  Any other backend is *differentially
pinned* against it — the in-repo
:class:`~repro.backend.fused.NumpyFusedBackend` bit-identically (its
batched kernels reproduce the reference arithmetic exactly, so the whole
tier-1 suite passes under it), optional JIT backends to whatever tolerance
their registration documents.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.workspace import WorkspaceArena

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Abstract compute backend: allocation, gather/scatter, reductions, RNG.

    Subclasses implement (or inherit numpy-delegating versions of) the
    primitives below.  All ``out=`` parameters follow numpy semantics: when
    given, the result is written in place and the same array is returned.

    Attributes
    ----------
    name:
        Registry key of the backend (``Instant3DConfig(backend=name)``).
    deterministic:
        True when the backend's primitives are bit-reproducible run-to-run
        (required for the checkpoint/resume differential guarantees).
    """

    name: str = "abstract"
    deterministic: bool = True

    # -- allocation hooks ---------------------------------------------------
    def empty(self, shape, dtype) -> np.ndarray:
        """Uninitialised array on this backend's device/dtype domain."""
        raise NotImplementedError

    def zeros(self, shape, dtype) -> np.ndarray:
        """Zero-initialised array on this backend."""
        raise NotImplementedError

    def asarray(self, x, dtype=None) -> np.ndarray:
        """Convert ``x`` to a backend array (no copy when already native)."""
        raise NotImplementedError

    def make_arena(self) -> WorkspaceArena:
        """A :class:`WorkspaceArena` whose backing buffers this backend owns.

        The trainer calls this instead of constructing an arena directly, so
        every reusable per-iteration buffer lives on the backend's
        device/dtype domain.
        """
        return WorkspaceArena(allocator=self)

    # -- gather / scatter ---------------------------------------------------
    def gather(self, table: np.ndarray, rows: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        """Row gather ``table[rows]`` along axis 0 (indices are in range)."""
        raise NotImplementedError

    def take_out(self, flat: np.ndarray, indices: np.ndarray,
                 out: np.ndarray) -> np.ndarray:
        """Flat gather ``flat[indices]`` into a preallocated ``out``."""
        raise NotImplementedError

    def scatter_add(self, target: np.ndarray, rows: np.ndarray,
                    values: np.ndarray, unique: bool = False) -> None:
        """``target[rows] += values`` with duplicate-index accumulation.

        ``unique=True`` promises the caller deduplicated ``rows``, letting
        backends use a plain (non-atomic) indexed add.
        """
        raise NotImplementedError

    def scatter_rows(self, target: np.ndarray, rows: np.ndarray,
                     values: np.ndarray) -> None:
        """Assignment scatter ``target[rows] = values`` (last write wins)."""
        raise NotImplementedError

    # -- reductions ---------------------------------------------------------
    def segment_sum(self, values: np.ndarray, segment_ids: np.ndarray,
                    num_segments: int) -> np.ndarray:
        """Per-segment float64 sums of ``values`` grouped by ``segment_ids``.

        Duplicate segments accumulate **in scan order** — the ordering the
        bit-exactness contract of the grid backward relies on.
        """
        raise NotImplementedError

    def bincount_add(self, acc: np.ndarray, indices: np.ndarray,
                     weights: np.ndarray, minlength: int) -> None:
        """``acc += segment_sum(weights, indices, minlength)`` in place.

        The accumulation into ``acc`` adds the *completed* per-segment sums
        (never individual contributions), matching the reference
        ``acc += np.bincount(...)`` association exactly.
        """
        raise NotImplementedError

    # -- linear algebra -----------------------------------------------------
    def matmul(self, a: np.ndarray, b: np.ndarray,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError

    def einsum(self, spec: str, *operands,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError

    # -- ordering / compaction ----------------------------------------------
    def argsort(self, x: np.ndarray) -> np.ndarray:
        """Stable-result sort permutation of a 1-D array."""
        raise NotImplementedError

    def cumsum(self, x: np.ndarray, axis: Optional[int] = None,
               out: Optional[np.ndarray] = None) -> np.ndarray:
        raise NotImplementedError

    def flatnonzero(self, x: np.ndarray) -> np.ndarray:
        """Sorted indices of the non-zero (True) entries of ``x.ravel()``."""
        raise NotImplementedError

    # -- RNG-stream draw ----------------------------------------------------
    def draw_uniform(self, rng, out: np.ndarray) -> np.ndarray:
        """Fill float64 ``out`` with uniform [0, 1) draws from ``rng``.

        Must consume the generator stream exactly as
        ``rng.uniform(0, 1, out.shape)`` would, so precision policies and
        backends share RNG streams (the bit-exactness contract's "runs
        differ only by arithmetic" rule).
        """
        raise NotImplementedError

    # -- capability queries --------------------------------------------------
    def is_native(self, x) -> bool:
        """True when ``x`` is an array this backend operates on natively."""
        raise NotImplementedError

    def is_native_f32(self, x) -> bool:
        """True when ``x`` is a native float32 array (no conversion needed).

        The layers use this instead of ``isinstance(x, np.ndarray)`` dtype
        checks, so a non-numpy backend cannot silently fall through to a
        converting (dense numpy) path.
        """
        raise NotImplementedError

    def flat_pair_view(self, arr: np.ndarray) -> Optional[np.ndarray]:
        """One-element-per-row flat view of a contiguous ``(T, 2)`` float32
        array (complex64 on numpy-family backends), or ``None`` when the
        layout/capability doesn't allow it.

        Row gathers/scatters through this view run as single flat takes —
        the fast path of both the fused grid gather and the lazy optimiser.
        Callers must handle ``None`` (capability query, not an assumption).
        """
        raise NotImplementedError

    # -- host transfer ------------------------------------------------------
    def to_numpy(self, x) -> np.ndarray:
        """Materialise a backend array as a host ``numpy.ndarray``.

        Checkpoints call this on every array leaf so files stay portable
        across backends.
        """
        raise NotImplementedError

    def from_numpy(self, x: np.ndarray) -> np.ndarray:
        """Import a host array into the backend's native representation."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
