"""The Instant-3D accelerator simulator and baseline device models.

The paper evaluates its accelerator with a cycle-accurate simulator plus RTL
synthesis for area/power; the baselines are three Jetson-class edge GPUs.
This package rebuilds that evaluation apparatus:

* :mod:`repro.accelerator.config` — hardware configuration dataclasses
  (grid cores, SRAM banks, FRM/BUM depths, fusion modes, clock).
* :mod:`repro.accelerator.sram` — multi-bank SRAM arrays with bank-conflict
  semantics.
* :mod:`repro.accelerator.frm` — the Feed-forward Read Mapper (Sec. 4.4).
* :mod:`repro.accelerator.bum` — the Back-propagation Update Merger (Sec. 4.5).
* :mod:`repro.accelerator.mlp_unit` — systolic-array and adder-tree MLP units.
* :mod:`repro.accelerator.fusion` — the multi-core-fusion reconfigurable
  scheme (Sec. 4.6).
* :mod:`repro.accelerator.trace` — memory-trace extraction from real grid
  queries, feeding the micro-simulations.
* :mod:`repro.accelerator.grid_core` — the grid-core pipeline combining the
  above.
* :mod:`repro.accelerator.energy` — area / energy models (Fig. 15).
* :mod:`repro.accelerator.devices` — Jetson Nano / TX2 / Xavier NX analytic
  performance models (Tab. 3, Figs. 4, 16).
* :mod:`repro.accelerator.accelerator` — the top-level simulator producing
  per-scene training runtime and energy (Figs. 16-18, Tab. 5).
"""

from repro.accelerator.config import (
    AcceleratorConfig,
    FusionMode,
    GridCoreConfig,
    MLPUnitConfig,
)
from repro.accelerator.sram import SRAMBankArray, BankConflictStats
from repro.accelerator.frm import FeedForwardReadMapper, FRMResult
from repro.accelerator.bum import BackPropUpdateMerger, BUMResult, replay_trace
from repro.accelerator.mlp_unit import SystolicArrayUnit, AdderTreeUnit, MLPEngine
from repro.accelerator.fusion import select_fusion_mode, FusionPlan
from repro.accelerator.trace import MemoryTrace, extract_training_trace
from repro.accelerator.grid_core import GridCoreSimulator, GridPhaseResult
from repro.accelerator.energy import EnergyModel, AreaModel, EnergyBreakdown, AreaBreakdown
from repro.accelerator.devices import (
    DeviceSpec,
    EdgeGPUModel,
    JETSON_NANO,
    JETSON_TX2,
    XAVIER_NX,
    baseline_devices,
)
from repro.accelerator.accelerator import (
    Instant3DAccelerator,
    AcceleratorRunEstimate,
)

__all__ = [
    "AcceleratorConfig",
    "GridCoreConfig",
    "MLPUnitConfig",
    "FusionMode",
    "SRAMBankArray",
    "BankConflictStats",
    "FeedForwardReadMapper",
    "FRMResult",
    "BackPropUpdateMerger",
    "replay_trace",
    "BUMResult",
    "SystolicArrayUnit",
    "AdderTreeUnit",
    "MLPEngine",
    "select_fusion_mode",
    "FusionPlan",
    "MemoryTrace",
    "extract_training_trace",
    "GridCoreSimulator",
    "GridPhaseResult",
    "EnergyModel",
    "AreaModel",
    "EnergyBreakdown",
    "AreaBreakdown",
    "DeviceSpec",
    "EdgeGPUModel",
    "JETSON_NANO",
    "JETSON_TX2",
    "XAVIER_NX",
    "baseline_devices",
    "Instant3DAccelerator",
    "AcceleratorRunEstimate",
]
