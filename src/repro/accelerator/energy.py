"""Area and energy models of the Instant-3D accelerator (Fig. 15).

The paper reports a synthesised 28 nm design point: 6.8 mm², 1.9 W at
800 MHz / 1 V, with the grid cores taking ~78 % of the area and ~81 % of the
energy and the MLP units most of the remainder.  Without access to the RTL
and EDA flow, this module reproduces that breakdown with a parametric model
built from published per-operation energy/area constants (FP16 MAC, SRAM and
DRAM access energies at 28 nm) applied to the activity counts the simulator
produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.accelerator.config import AcceleratorConfig

# ---------------------------------------------------------------------------
# 28 nm energy constants (picojoules).  Values follow the widely used
# Horowitz ISSCC'14 numbers scaled to 28 nm and the LPDDR4 interface energy
# used in accelerator literature.
# ---------------------------------------------------------------------------
ENERGY_PJ = {
    "mac_fp16": 1.1,                # one FP16 multiply-accumulate
    "sram_read_per_byte": 1.25,     # small multi-bank SRAM read
    "sram_write_per_byte": 1.5,
    "dram_per_byte": 31.2,          # LPDDR4 access energy
    "register_per_byte": 0.15,
}

# mm^2 per component at 28 nm.  Sized so the published totals are matched:
# 4 grid cores dominate (hash-table SRAM banks + FRM + BUM + interpolation
# datapath), the MLP engine takes most of the rest, and the shared
# reconfiguration/fusion FRM units and I/O make up the remainder.
AREA_MM2 = {
    "grid_core_sram_banks": 0.82,     # per core: 8 banks x 32 KB
    "grid_core_frm": 0.16,            # per core: B8 FRM unit
    "grid_core_bum": 0.19,            # per core: BUM buffer + match logic
    "grid_core_datapath": 0.16,       # per core: hash / coord / interpolation units
    "mlp_engine": 1.30,               # systolic array + adder tree + buffers
    "reconfigure_units": 0.20,        # shared B16/B32 FRM units (fusion scheme)
    "io_interface": 0.18,
}


@dataclass
class AreaBreakdown:
    """Per-component silicon area of the accelerator."""

    components_mm2: Dict[str, float] = field(default_factory=dict)

    @property
    def total_mm2(self) -> float:
        return float(sum(self.components_mm2.values()))

    def fraction(self, prefix: str) -> float:
        """Area fraction of all components whose name starts with ``prefix``."""
        total = self.total_mm2
        if total <= 0:
            return 0.0
        part = sum(v for k, v in self.components_mm2.items() if k.startswith(prefix))
        return part / total


@dataclass
class EnergyBreakdown:
    """Energy of one simulated run, split by component group (joules)."""

    components_j: Dict[str, float] = field(default_factory=dict)

    @property
    def total_j(self) -> float:
        return float(sum(self.components_j.values()))

    def fraction(self, prefix: str) -> float:
        total = self.total_j
        if total <= 0:
            return 0.0
        part = sum(v for k, v in self.components_j.items() if k.startswith(prefix))
        return part / total


class AreaModel:
    """Builds the accelerator's area breakdown from its configuration."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    def breakdown(self) -> AreaBreakdown:
        n_cores = self.config.n_grid_cores
        components = {
            "grid_cores.sram_banks": AREA_MM2["grid_core_sram_banks"] * n_cores,
            "grid_cores.frm": AREA_MM2["grid_core_frm"] * n_cores,
            "grid_cores.bum": AREA_MM2["grid_core_bum"] * n_cores,
            "grid_cores.datapath": AREA_MM2["grid_core_datapath"] * n_cores,
            "mlp.engine": AREA_MM2["mlp_engine"],
            "reconfigure.fusion_frm": AREA_MM2["reconfigure_units"],
            "io.interface": AREA_MM2["io_interface"],
        }
        return AreaBreakdown(components_mm2=components)


class EnergyModel:
    """Computes energy from activity counts (accesses, MACs, DRAM bytes)."""

    def __init__(self, config: AcceleratorConfig, static_power_w: float = 0.25):
        self.config = config
        self.static_power_w = float(static_power_w)

    def grid_core_energy_j(self, sram_read_bytes: float, sram_write_bytes: float,
                           interpolation_macs: float) -> Dict[str, float]:
        """Dynamic energy of the grid cores for one run."""
        return {
            "grid_cores.sram_reads": sram_read_bytes * ENERGY_PJ["sram_read_per_byte"] * 1e-12,
            "grid_cores.sram_writes": sram_write_bytes * ENERGY_PJ["sram_write_per_byte"] * 1e-12,
            "grid_cores.interpolation": interpolation_macs * ENERGY_PJ["mac_fp16"] * 1e-12,
        }

    def mlp_energy_j(self, macs: float, activation_bytes: float) -> Dict[str, float]:
        """Dynamic energy of the MLP engine for one run."""
        return {
            "mlp.macs": macs * ENERGY_PJ["mac_fp16"] * 1e-12,
            "mlp.buffers": activation_bytes * ENERGY_PJ["register_per_byte"] * 1e-12,
        }

    def dram_energy_j(self, dram_bytes: float) -> Dict[str, float]:
        return {"io.dram": dram_bytes * ENERGY_PJ["dram_per_byte"] * 1e-12}

    def static_energy_j(self, runtime_s: float) -> Dict[str, float]:
        return {"static.leakage_clock": self.static_power_w * runtime_s}

    def breakdown(self, sram_read_bytes: float, sram_write_bytes: float,
                  interpolation_macs: float, mlp_macs: float,
                  activation_bytes: float, dram_bytes: float,
                  runtime_s: float) -> EnergyBreakdown:
        """Full energy breakdown of a simulated training run."""
        components: Dict[str, float] = {}
        components.update(self.grid_core_energy_j(sram_read_bytes, sram_write_bytes,
                                                  interpolation_macs))
        components.update(self.mlp_energy_j(mlp_macs, activation_bytes))
        components.update(self.dram_energy_j(dram_bytes))
        components.update(self.static_energy_j(runtime_s))
        return EnergyBreakdown(components_j=components)

    def average_power_w(self, breakdown: EnergyBreakdown, runtime_s: float) -> float:
        """Average power of a run (total energy over runtime)."""
        if runtime_s <= 0:
            return 0.0
        return breakdown.total_j / runtime_s
