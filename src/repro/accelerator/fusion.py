"""Multi-core-fusion reconfigurable scheme (Sec. 4.6 / Fig. 14).

The Instant-3D algorithm needs hash tables of different sizes for the
density and color branches.  A single grid core holds 256 KB of hash-table
SRAM (8 banks); the fusion scheme combines two cores (16 banks, 512 KB) or
all four cores (32 banks, 1 MB) behind a shared FRM unit so a larger table is
still served at full bank parallelism.  Without fusion, a table larger than
one core's SRAM must be processed in segments that are swapped from DRAM,
which is the scheduling inefficiency the paper's Fig. 17 attributes a 5.3x
speedup to removing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.accelerator.config import AcceleratorConfig, FusionMode


@dataclass
class FusionPlan:
    """How a branch's hash table is mapped onto grid cores."""

    mode: FusionMode
    table_bytes: int
    n_segments: int            # table segments that must be processed serially
    dram_swap_bytes: int       # bytes swapped to/from DRAM between segments
    n_banks: int               # SRAM banks usable in parallel per segment

    @property
    def fused_cores(self) -> int:
        return self.mode.n_cores


def select_fusion_mode(table_bytes: int, config: AcceleratorConfig) -> FusionMode:
    """Pick the smallest fusion level whose SRAM capacity covers the table."""
    if table_bytes <= 0:
        raise ValueError("table_bytes must be positive")
    for mode in (FusionMode.LEVEL0_STANDALONE, FusionMode.LEVEL1_FUSION,
                 FusionMode.LEVEL2_FUSION):
        if table_bytes <= mode.max_table_bytes and mode.n_cores <= config.n_grid_cores:
            return mode
    return FusionMode.LEVEL2_FUSION


def plan_fusion(table_bytes: int, config: AcceleratorConfig) -> FusionPlan:
    """Build the execution plan for one branch's hash table.

    With fusion enabled the table is spread across the fused cores' banks and
    processed in a single resident segment (possibly streamed from DRAM once
    if it exceeds even Level-2 capacity).  With fusion disabled only a single
    core's 8 banks and 256 KB are available, so larger tables are processed in
    serial segments with DRAM swaps in between.
    """
    core_bytes = config.grid_core.sram_bytes
    if config.fusion_enabled:
        mode = select_fusion_mode(table_bytes, config)
        capacity = mode.n_cores * core_bytes
        n_segments = max(1, int(np.ceil(table_bytes / capacity)))
        swap_bytes = (n_segments - 1) * capacity if n_segments > 1 else 0
        return FusionPlan(mode=mode, table_bytes=table_bytes, n_segments=n_segments,
                          dram_swap_bytes=swap_bytes, n_banks=mode.n_banks)
    mode = FusionMode.LEVEL0_STANDALONE
    n_segments = max(1, int(np.ceil(table_bytes / core_bytes)))
    swap_bytes = (n_segments - 1) * core_bytes if n_segments > 1 else 0
    return FusionPlan(mode=mode, table_bytes=table_bytes, n_segments=n_segments,
                      dram_swap_bytes=swap_bytes, n_banks=mode.n_banks)


def branch_plans(branch_table_bytes: dict, config: AcceleratorConfig) -> List[FusionPlan]:
    """Fusion plans for every branch (density/color) of a model configuration."""
    return [plan_fusion(table_bytes, config)
            for table_bytes in branch_table_bytes.values()]
