"""Feed-Forward Read Mapper (FRM) — Sec. 4.4 of the paper.

During the feed-forward pass each queried point needs the embeddings of its
eight surrounding vertices.  Those eight addresses cluster into four groups
that land in only a handful of SRAM banks, so issuing them one point at a
time leaves most banks idle (25-50 % utilization).  The FRM unit looks ahead
over a small window of pending read requests, detects bank collisions, and
packs collision-free requests from different points into the same SRAM cycle.

:class:`FeedForwardReadMapper.schedule` performs that packing greedily over a
sliding window of ``window`` pending addresses — the same first-fit policy a
hardware reorder buffer of that depth implements — and reports cycle counts
with and without the mapping so the ablation of Fig. 18 can be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accelerator.sram import SRAMBankArray


@dataclass
class FRMResult:
    """Cycle statistics of scheduling one read trace through the FRM."""

    n_requests: int
    mapped_cycles: int
    unmapped_cycles: int
    n_banks: int

    @property
    def speedup(self) -> float:
        """Cycle reduction factor achieved by the FRM mapping."""
        if self.mapped_cycles == 0:
            return 1.0
        return self.unmapped_cycles / self.mapped_cycles

    @property
    def mapped_utilization(self) -> float:
        """Average fraction of banks busy per cycle with the FRM."""
        capacity = self.mapped_cycles * self.n_banks
        return self.n_requests / capacity if capacity else float("nan")

    @property
    def unmapped_utilization(self) -> float:
        """Average fraction of banks busy per cycle without the FRM."""
        capacity = self.unmapped_cycles * self.n_banks
        return self.n_requests / capacity if capacity else float("nan")


class FeedForwardReadMapper:
    """Greedy window-based packer of SRAM read requests into conflict-free cycles."""

    def __init__(self, sram: SRAMBankArray, window: int = 16,
                 requests_per_group: int = 8):
        if window < 1:
            raise ValueError("window must be >= 1")
        if requests_per_group < 1:
            raise ValueError("requests_per_group must be >= 1")
        self.sram = sram
        self.window = int(window)
        self.requests_per_group = int(requests_per_group)

    # -- baseline (no FRM) -------------------------------------------------------
    def unmapped_cycles(self, addresses: np.ndarray) -> int:
        """Cycles without mapping: each point's request group is issued alone."""
        addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
        total = 0
        for start in range(0, addresses.size, self.requests_per_group):
            total += self.sram.cycles_for_batch(
                addresses[start:start + self.requests_per_group]
            )
        return total

    # -- FRM scheduling ------------------------------------------------------------
    def mapped_cycles(self, addresses: np.ndarray) -> int:
        """Cycles with the FRM: greedy bank-aware packing over the lookahead window."""
        addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
        if addresses.size == 0:
            return 0
        banks = self.sram.bank_of(addresses)
        n_banks = self.sram.n_banks
        per_bank_capacity = self.sram.accesses_per_bank_per_cycle
        cycles = 0
        pending_start = 0
        n = addresses.size
        # A request list pointer; within each cycle, scan at most ``window``
        # pending requests and issue every one whose bank still has capacity.
        issued = np.zeros(n, dtype=bool)
        while pending_start < n:
            bank_load = np.zeros(n_banks, dtype=np.int64)
            window_end = min(pending_start + self.window, n)
            any_issued = False
            for idx in range(pending_start, window_end):
                if issued[idx]:
                    continue
                bank = banks[idx]
                if bank_load[bank] < per_bank_capacity:
                    bank_load[bank] += 1
                    issued[idx] = True
                    any_issued = True
            cycles += 1
            if not any_issued:
                # Defensive: cannot happen (first pending request always fits),
                # but guard against an infinite loop if capacities were zero.
                issued[pending_start] = True
            while pending_start < n and issued[pending_start]:
                pending_start += 1
        return cycles

    def schedule(self, addresses: np.ndarray, enabled: bool = True) -> FRMResult:
        """Schedule a read trace and report mapped vs unmapped cycle counts."""
        addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
        unmapped = self.unmapped_cycles(addresses)
        mapped = self.mapped_cycles(addresses) if enabled else unmapped
        return FRMResult(
            n_requests=int(addresses.size),
            mapped_cycles=mapped,
            unmapped_cycles=unmapped,
            n_banks=self.sram.n_banks,
        )
