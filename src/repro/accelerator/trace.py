"""Memory-trace extraction from real hash-grid queries.

The FRM/BUM micro-simulations and the access-pattern analyses (Figs. 8-10)
replay the *actual* addresses the hash grids touch.  This module runs one
training-style query batch through a model's grids and exports the address
streams:

* the **feed-forward read trace** is point-major — each queried point issues
  its eight vertex reads per level back-to-back, exactly the order the grid
  core's address pipeline produces them;
* the **back-propagation write trace** is level-major — the gradient scatter
  walks the batch level by level, which is the order the grid core applies
  embedding updates in and the reason updates to the same (coarse-level)
  table entry recur within a short window, the behaviour the BUM exploits
  (Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.model import DecoupledRadianceField
from repro.datasets.dataset import SceneDataset
from repro.grid.hash_encoding import GridAccessRecord
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.utils.seeding import derive_rng


@dataclass
class BranchTrace:
    """Address streams of one grid branch for one query batch."""

    branch: str
    read_addresses: np.ndarray          # point-major feed-forward reads
    write_addresses: np.ndarray         # level-major back-propagation updates
    table_entries: int                  # total entries across levels
    level_table_sizes: List[int] = field(default_factory=list)
    n_points: int = 0

    @property
    def reads_per_point(self) -> int:
        return int(self.read_addresses.size // max(self.n_points, 1))


@dataclass
class MemoryTrace:
    """Traces of both branches plus batch metadata."""

    branches: Dict[str, BranchTrace]
    n_points: int

    def branch(self, name: str) -> BranchTrace:
        return self.branches[name]

    @property
    def total_reads(self) -> int:
        return int(sum(b.read_addresses.size for b in self.branches.values()))


def _point_major_addresses(record: GridAccessRecord) -> np.ndarray:
    """Flatten a grid access record point-major: per point, per level, 8 corners."""
    per_level = [addr + offset for addr, offset
                 in zip(record.addresses, record.level_offsets)]
    stacked = np.stack(per_level, axis=1)          # (N, L, 8)
    return stacked.reshape(-1)


def _level_major_addresses(record: GridAccessRecord) -> np.ndarray:
    """Flatten a grid access record level-major: per level, per point, 8 corners."""
    parts = [
        (addr + offset).reshape(-1)
        for addr, offset in zip(record.addresses, record.level_offsets)
    ]
    return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)


def trace_from_record(branch: str, record: GridAccessRecord,
                      table_entries: int) -> BranchTrace:
    """Build a :class:`BranchTrace` from one grid access record."""
    return BranchTrace(
        branch=branch,
        read_addresses=_point_major_addresses(record),
        write_addresses=_level_major_addresses(record),
        table_entries=table_entries,
        level_table_sizes=list(record.table_sizes),
        n_points=record.n_points,
    )


def extract_training_trace(model: DecoupledRadianceField, dataset: SceneDataset,
                           batch_pixels: Optional[int] = None,
                           samples_per_ray: Optional[int] = None,
                           seed: int = 0) -> MemoryTrace:
    """Run one training-style query batch and export its grid address traces."""
    config = model.config
    batch_pixels = batch_pixels if batch_pixels is not None else config.batch_pixels
    samples_per_ray = (samples_per_ray if samples_per_ray is not None
                       else config.n_samples_per_ray)
    pixel_rng = derive_rng(seed, f"trace:{dataset.name}:pixels")
    sample_rng = derive_rng(seed, f"trace:{dataset.name}:samples")

    bundle, _targets = sample_pixel_batch(
        dataset.train_cameras, dataset.train_images, batch_pixels, pixel_rng
    )
    t_vals, _deltas = stratified_samples(bundle, samples_per_ray, rng=sample_rng)
    points, dirs = ray_points(bundle, t_vals)
    points_unit = normalize_points_to_unit_cube(points, dataset.scene_bound)
    model.query(points_unit, dirs)

    records = model.encoder.last_access_records()
    branches = {}
    for name, grid in (("density", model.encoder.density_grid),
                       ("color", model.encoder.color_grid)):
        record = records[name]
        if record is None:
            raise RuntimeError(f"no access record for branch {name!r}")
        branches[name] = trace_from_record(name, record, grid.total_table_entries)
    return MemoryTrace(branches=branches, n_points=points_unit.shape[0])
