"""Grid-core pipeline simulation: Step ❸-① on the Instant-3D accelerator.

A grid core (Fig. 11) buffers the queried points' coordinates, computes the
eight surrounding vertex coordinates and their hash addresses, reads the
embeddings from the hash-table SRAM banks through the FRM unit, and either
interpolates them (feed-forward) or computes and writes back gradients
through the BUM unit (back-propagation).  :class:`GridCoreSimulator` replays
a branch's memory trace through those components and reports cycle counts;
the top-level :class:`~repro.accelerator.accelerator.Instant3DAccelerator`
scales the measured per-access rates to the full paper-scale workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accelerator.bum import BackPropUpdateMerger, BUMResult
from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.frm import FeedForwardReadMapper, FRMResult
from repro.accelerator.fusion import FusionPlan, plan_fusion
from repro.accelerator.sram import SRAMBankArray
from repro.accelerator.trace import BranchTrace

#: Pipeline stages in a grid core before SRAM access (coordinate pre-compute,
#: hash computation, address buffering) — amortised to a per-point overhead.
_ADDRESS_PIPELINE_CYCLES_PER_POINT = 1.0
#: Cycles to trilinearly interpolate / compute gradients for one point's
#: corners once the embeddings are available (overlapped with SRAM access in
#: steady state, charged at a reduced weight).
_COMPUTE_OVERLAP_WEIGHT = 0.25
#: Relative cost of re-scanning the address stream for each additional table
#: segment when the hash table does not fit in the available SRAM.
_SEGMENT_RESCAN_WEIGHT = 0.15
#: Cycles per un-merged embedding update: a read-modify-write of the table
#: entry, the hazard the BUM removes by accumulating updates on chip.
_UNMERGED_WRITE_RMW_CYCLES = 3


@dataclass
class GridPhaseResult:
    """Cycle accounting for one branch's feed-forward or back-propagation phase."""

    branch: str
    phase: str                      # "forward" or "backward"
    n_accesses: int
    sram_cycles: int
    pipeline_cycles: int
    dram_swap_cycles: int
    frm: Optional[FRMResult] = None
    bum: Optional[BUMResult] = None
    plan: Optional[FusionPlan] = None

    @property
    def core_cycles(self) -> int:
        """Cycles spent inside the grid cores (excludes DRAM segment swaps)."""
        return int(self.sram_cycles + self.pipeline_cycles)

    @property
    def total_cycles(self) -> int:
        return int(self.sram_cycles + self.pipeline_cycles + self.dram_swap_cycles)

    @property
    def accesses_per_cycle(self) -> float:
        return self.n_accesses / max(self.core_cycles, 1)


class GridCoreSimulator:
    """Replays branch traces through the FRM/BUM/SRAM models of the grid cores."""

    def __init__(self, config: AcceleratorConfig):
        self.config = config

    # -- shared helpers ------------------------------------------------------------
    def _parallel_banks(self, plan: FusionPlan) -> int:
        """SRAM banks usable in parallel for a branch.

        With the reconfigurable scheme the accelerator always engages all
        grid cores: either fused behind a shared FRM unit (tables larger than
        one core) or running independently on disjoint point sets (tables
        that fit one core, which are replicated).  Without the scheme only a
        single core's banks serve the branch and oversized tables are
        processed in DRAM-swapped segments.
        """
        if self.config.fusion_enabled:
            return self.config.n_grid_cores * self.config.grid_core.n_banks
        return self.config.grid_core.n_banks

    def _dram_swap_cycles(self, plan: FusionPlan) -> int:
        """Cycles spent swapping table segments from DRAM (no-fusion penalty)."""
        if plan.dram_swap_bytes <= 0:
            return 0
        seconds = plan.dram_swap_bytes / self.config.dram_bandwidth_bytes_per_s
        return int(np.ceil(seconds * self.config.frequency_hz))

    def _sram_for(self, trace: BranchTrace, plan: FusionPlan) -> SRAMBankArray:
        return SRAMBankArray(
            n_banks=self._parallel_banks(plan),
            table_entries=max(trace.table_entries, 1),
            accesses_per_bank_per_cycle=self.config.grid_core.accesses_per_bank_per_cycle,
        )

    def _frm_window(self, plan: FusionPlan) -> int:
        """Reordering window of the FRM unit serving a branch.

        The shared B16/B32 FRM units that fuse multiple cores carry
        proportionally deeper reorder buffers (Fig. 14), so the window scales
        with the number of banks they feed.
        """
        scale = max(1, self._parallel_banks(plan) // self.config.grid_core.n_banks)
        return self.config.grid_core.frm_window * scale

    # -- phases ----------------------------------------------------------------------
    def simulate_forward(self, trace: BranchTrace, table_bytes: int) -> GridPhaseResult:
        """Feed-forward embedding interpolation for one branch."""
        plan = plan_fusion(table_bytes, self.config)
        sram = self._sram_for(trace, plan)
        frm = FeedForwardReadMapper(sram, window=self._frm_window(plan))
        frm_result = frm.schedule(trace.read_addresses, enabled=self.config.frm_enabled)
        # Extra table segments require re-scanning the address stream; the
        # accesses themselves are only serviced once.
        segment_overhead = 1.0 + _SEGMENT_RESCAN_WEIGHT * (plan.n_segments - 1)
        sram_cycles = int(np.ceil(frm_result.mapped_cycles * segment_overhead))
        pipeline = int(trace.n_points * _ADDRESS_PIPELINE_CYCLES_PER_POINT
                       * _COMPUTE_OVERLAP_WEIGHT)
        return GridPhaseResult(
            branch=trace.branch,
            phase="forward",
            n_accesses=int(trace.read_addresses.size),
            sram_cycles=int(sram_cycles),
            pipeline_cycles=pipeline,
            dram_swap_cycles=self._dram_swap_cycles(plan),
            frm=frm_result,
            plan=plan,
        )

    def simulate_backward(self, trace: BranchTrace, table_bytes: int) -> GridPhaseResult:
        """Back-propagation: gradient reads plus BUM-merged embedding updates."""
        plan = plan_fusion(table_bytes, self.config)
        sram = self._sram_for(trace, plan)
        # Gradient computation re-reads the touched embeddings (same pattern
        # as the forward pass), then writes back the merged updates.
        frm = FeedForwardReadMapper(sram, window=self._frm_window(plan))
        frm_result = frm.schedule(trace.read_addresses, enabled=self.config.frm_enabled)
        bum = BackPropUpdateMerger(
            n_entries=self.config.grid_core.bum_entries,
            timeout_cycles=self.config.grid_core.bum_timeout_cycles,
        )
        bum_result = bum.process(trace.write_addresses, enabled=self.config.bum_enabled)
        banks = sram.n_banks * sram.accesses_per_bank_per_cycle
        # Merged updates stream out at bank bandwidth; un-merged updates are
        # read-modify-write operations on (often) the same entry and pay the
        # RMW hazard latency the BUM exists to hide.
        write_cost = 1 if self.config.bum_enabled else _UNMERGED_WRITE_RMW_CYCLES
        write_cycles = int(np.ceil(bum_result.n_sram_writes * write_cost / banks))
        segment_overhead = 1.0 + _SEGMENT_RESCAN_WEIGHT * (plan.n_segments - 1)
        sram_cycles = int(np.ceil(
            (frm_result.mapped_cycles + write_cycles) * segment_overhead
        ))
        pipeline = int(trace.n_points * _ADDRESS_PIPELINE_CYCLES_PER_POINT
                       * _COMPUTE_OVERLAP_WEIGHT)
        return GridPhaseResult(
            branch=trace.branch,
            phase="backward",
            n_accesses=int(trace.read_addresses.size + trace.write_addresses.size),
            sram_cycles=int(sram_cycles),
            pipeline_cycles=pipeline,
            dram_swap_cycles=self._dram_swap_cycles(plan),
            frm=frm_result,
            bum=bum_result,
            plan=plan,
        )
