"""Hardware configuration of the Instant-3D accelerator.

The published design point (Tab. 3 / Fig. 15): 28 nm, 800 MHz, 1 V, 6.8 mm²,
1.5 MB of on-chip SRAM, 1.9 W typical power, LPDDR4-1866 DRAM at 59.7 GB/s.
It contains four grid cores (8 hash-table SRAM banks each), one BUM unit per
grid core, seven FRM units (four B8 units inside the cores, two B16 units for
core pairs and one B32 unit spanning all four cores), and a systolic-array +
adder-tree MLP engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class FusionMode(Enum):
    """Multi-core fusion levels (Sec. 4.6 / Fig. 14)."""

    LEVEL0_STANDALONE = 0   # 1 grid core,  8 banks, up to 256 KB hash table
    LEVEL1_FUSION = 1       # 2 grid cores, 16 banks, up to 512 KB hash table
    LEVEL2_FUSION = 2       # 4 grid cores, 32 banks, up to 1 MB hash table

    @property
    def n_cores(self) -> int:
        return {FusionMode.LEVEL0_STANDALONE: 1,
                FusionMode.LEVEL1_FUSION: 2,
                FusionMode.LEVEL2_FUSION: 4}[self]

    @property
    def n_banks(self) -> int:
        return 8 * self.n_cores

    @property
    def max_table_bytes(self) -> int:
        return {FusionMode.LEVEL0_STANDALONE: 256 * 1024,
                FusionMode.LEVEL1_FUSION: 512 * 1024,
                FusionMode.LEVEL2_FUSION: 1024 * 1024}[self]


@dataclass(frozen=True)
class GridCoreConfig:
    """One grid core: hash-table SRAM banks plus FRM/BUM pipeline parameters."""

    n_banks: int = 8
    bank_bytes: int = 32 * 1024            # 8 banks x 32 KB = 256 KB per core
    accesses_per_bank_per_cycle: int = 1
    frm_window: int = 16                   # reordering pipeline depth (Sec. 5.1)
    bum_entries: int = 16                  # BUM buffer entries
    bum_timeout_cycles: int = 16           # write-back after N cycles without a match
    interpolation_lanes: int = 8           # trilinear lanes per core

    def __post_init__(self) -> None:
        if self.n_banks < 1 or self.bank_bytes < 1:
            raise ValueError("bank configuration must be positive")
        if self.frm_window < 1 or self.bum_entries < 1:
            raise ValueError("FRM window and BUM entries must be positive")

    @property
    def sram_bytes(self) -> int:
        return self.n_banks * self.bank_bytes


@dataclass(frozen=True)
class MLPUnitConfig:
    """The MLP engine: a systolic array plus a multiplier-adder tree.

    The systolic array serves matrix multiplications with output channels
    > 3; the adder tree serves the small-output-channel layers (e.g. the
    final RGB layer), following the paper's dual-unit design.
    """

    systolic_rows: int = 64
    systolic_cols: int = 64
    adder_tree_macs: int = 256
    utilization: float = 0.85

    def __post_init__(self) -> None:
        if self.systolic_rows < 1 or self.systolic_cols < 1 or self.adder_tree_macs < 1:
            raise ValueError("MLP unit dimensions must be positive")
        if not (0.0 < self.utilization <= 1.0):
            raise ValueError("utilization must be in (0, 1]")

    @property
    def systolic_macs(self) -> int:
        return self.systolic_rows * self.systolic_cols


@dataclass(frozen=True)
class AcceleratorConfig:
    """Top-level accelerator configuration (defaults = the published design)."""

    name: str = "Instant-3D"
    technology_nm: int = 28
    frequency_hz: float = 800e6
    voltage_v: float = 1.0
    n_grid_cores: int = 4
    grid_core: GridCoreConfig = field(default_factory=GridCoreConfig)
    mlp_unit: MLPUnitConfig = field(default_factory=MLPUnitConfig)
    dram_bandwidth_bytes_per_s: float = 59.7e9     # LPDDR4-1866, same as Jetson TX2/Xavier
    io_buffer_bytes: int = 128 * 1024
    typical_power_w: float = 1.9
    frm_enabled: bool = True
    bum_enabled: bool = True
    fusion_enabled: bool = True

    def __post_init__(self) -> None:
        if self.n_grid_cores < 1:
            raise ValueError("need at least one grid core")
        if self.frequency_hz <= 0 or self.dram_bandwidth_bytes_per_s <= 0:
            raise ValueError("frequency and DRAM bandwidth must be positive")

    @property
    def total_grid_sram_bytes(self) -> int:
        """Hash-table SRAM across all grid cores (1 MB in the published design)."""
        return self.n_grid_cores * self.grid_core.sram_bytes

    @property
    def total_sram_bytes(self) -> int:
        """All on-chip SRAM: hash-table banks, coordinate/address buffers, MLP buffers."""
        return self.total_grid_sram_bytes + self.io_buffer_bytes + 384 * 1024

    @property
    def cycle_time_s(self) -> float:
        return 1.0 / self.frequency_hz

    def without(self, frm: bool = False, bum: bool = False, fusion: bool = False
                ) -> "AcceleratorConfig":
        """Copy of this config with the named features disabled (for ablations)."""
        from dataclasses import replace
        return replace(
            self,
            frm_enabled=self.frm_enabled and not frm,
            bum_enabled=self.bum_enabled and not bum,
            fusion_enabled=self.fusion_enabled and not fusion,
        )
