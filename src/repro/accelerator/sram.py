"""Multi-bank SRAM array with bank-conflict semantics.

The 1-D hash table that stores the embedding grid is divided equally across
``n_banks`` SRAM banks (Sec. 4.4).  Each bank can service a bounded number of
accesses per cycle, so a batch of addresses that maps onto few banks wastes
bandwidth — the situation the FRM unit exists to fix.  The bank of an address
is its position in the equal partition of the table's address range, which is
what makes the paper's four "address groups" (far apart in address space)
land in different banks while the two nearby addresses inside a group collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


@dataclass
class BankConflictStats:
    """Outcome of servicing a sequence of access batches."""

    n_accesses: int
    n_cycles: int
    n_conflict_cycles: int

    @property
    def accesses_per_cycle(self) -> float:
        return self.n_accesses / max(self.n_cycles, 1)

    @property
    def bank_utilization(self) -> float:
        """Fraction of bank-cycles that carried an access (needs ``n_banks``)."""
        # Filled in by SRAMBankArray.service via _n_banks; kept simple here.
        return self._utilization if hasattr(self, "_utilization") else float("nan")


class SRAMBankArray:
    """An equally partitioned multi-bank SRAM holding one 1-D hash table."""

    def __init__(self, n_banks: int, table_entries: int,
                 accesses_per_bank_per_cycle: int = 1):
        if n_banks < 1 or table_entries < 1:
            raise ValueError("n_banks and table_entries must be positive")
        if accesses_per_bank_per_cycle < 1:
            raise ValueError("accesses_per_bank_per_cycle must be positive")
        self.n_banks = int(n_banks)
        self.table_entries = int(table_entries)
        self.accesses_per_bank_per_cycle = int(accesses_per_bank_per_cycle)

    # -- address mapping ---------------------------------------------------------
    def bank_of(self, addresses: np.ndarray) -> np.ndarray:
        """Bank index of each address.

        Banks are interleaved at entry granularity (``address mod n_banks``),
        the mapping the multi-bank hash-table SRAM of the grid cores uses so
        that every resolution level of the concatenated table — including the
        small dense coarse levels — spreads across all banks.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if np.any(addresses < 0):
            raise ValueError("addresses must be non-negative")
        return addresses % self.n_banks

    # -- servicing ---------------------------------------------------------------
    def cycles_for_batch(self, addresses: np.ndarray) -> int:
        """Cycles to service one batch of parallel accesses.

        The batch takes as many cycles as the most-contended bank needs:
        ``ceil(max bank occupancy / accesses_per_bank_per_cycle)``.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size == 0:
            return 0
        banks = self.bank_of(addresses)
        counts = np.bincount(banks, minlength=self.n_banks)
        worst = int(counts.max())
        return int(np.ceil(worst / self.accesses_per_bank_per_cycle))

    def service(self, batches: Iterable[Sequence[int]]) -> BankConflictStats:
        """Service a sequence of access batches and return cycle statistics."""
        total_accesses = 0
        total_cycles = 0
        conflict_cycles = 0
        for batch in batches:
            batch = np.asarray(batch, dtype=np.int64)
            cycles = self.cycles_for_batch(batch)
            total_accesses += int(batch.size)
            total_cycles += cycles
            conflict_cycles += max(cycles - 1, 0)
        stats = BankConflictStats(
            n_accesses=total_accesses,
            n_cycles=total_cycles,
            n_conflict_cycles=conflict_cycles,
        )
        capacity = total_cycles * self.n_banks * self.accesses_per_bank_per_cycle
        stats._utilization = total_accesses / capacity if capacity else float("nan")
        return stats
