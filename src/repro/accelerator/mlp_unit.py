"""MLP compute units: a systolic array and a multiplier-adder tree.

Step ❸-② evaluates two small MLP heads per queried point.  The accelerator
uses two unit types (Sec. 4.3): a 16x16 FP16 systolic array for layers with
more than three output channels, and a multiplier-adder tree for layers with
three or fewer output channels (e.g. the final RGB layer), where a systolic
array would be mostly idle.  :class:`MLPEngine` routes each layer to the
better unit and reports total cycles for a batch of points.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.accelerator.config import MLPUnitConfig


@dataclass
class MLPLayerShape:
    """Shape of one dense layer as executed per point batch."""

    in_features: int
    out_features: int

    @property
    def macs_per_point(self) -> int:
        return self.in_features * self.out_features


class SystolicArrayUnit:
    """Weight-stationary FP16 systolic array cycle model."""

    def __init__(self, rows: int, cols: int, utilization: float = 0.85):
        if rows < 1 or cols < 1:
            raise ValueError("systolic array dimensions must be positive")
        self.rows = int(rows)
        self.cols = int(cols)
        self.utilization = float(utilization)

    def cycles_for_layer(self, layer: MLPLayerShape, n_points: int) -> int:
        """Cycles to run ``n_points`` through one dense layer.

        The array processes ``rows`` input channels x ``cols`` output channels
        per pass; a batch streams through with one point per cycle per pass,
        plus the pipeline fill latency.
        """
        in_tiles = int(np.ceil(layer.in_features / self.rows))
        out_tiles = int(np.ceil(layer.out_features / self.cols))
        passes = in_tiles * out_tiles
        fill_latency = self.rows + self.cols
        streaming = int(np.ceil(n_points / self.utilization))
        return passes * (streaming + fill_latency)


class AdderTreeUnit:
    """Multiplier-adder-tree cycle model for small-output-channel layers."""

    def __init__(self, n_macs: int, utilization: float = 0.85):
        if n_macs < 1:
            raise ValueError("n_macs must be positive")
        self.n_macs = int(n_macs)
        self.utilization = float(utilization)

    def cycles_for_layer(self, layer: MLPLayerShape, n_points: int) -> int:
        """Cycles to run ``n_points`` through one dense layer on the adder tree."""
        macs = layer.macs_per_point * n_points
        throughput = self.n_macs * self.utilization
        tree_depth = max(int(np.ceil(np.log2(max(layer.in_features, 2)))), 1)
        return int(np.ceil(macs / throughput)) + tree_depth


class MLPEngine:
    """Routes MLP layers to the systolic array or the adder tree (Sec. 4.3)."""

    #: Layers with at most this many output channels go to the adder tree.
    SMALL_OUTPUT_THRESHOLD = 3

    def __init__(self, config: MLPUnitConfig):
        self.config = config
        self.systolic = SystolicArrayUnit(config.systolic_rows, config.systolic_cols,
                                          config.utilization)
        self.adder_tree = AdderTreeUnit(config.adder_tree_macs, config.utilization)

    def route(self, layer: MLPLayerShape) -> str:
        """Which unit a layer runs on (``"systolic"`` or ``"adder_tree"``)."""
        if layer.out_features <= self.SMALL_OUTPUT_THRESHOLD:
            return "adder_tree"
        return "systolic"

    def cycles_for_layers(self, layers: Sequence[MLPLayerShape], n_points: int
                          ) -> Tuple[int, List[Tuple[str, int]]]:
        """Total cycles and the per-layer (unit, cycles) routing decisions."""
        total = 0
        routing: List[Tuple[str, int]] = []
        for layer in layers:
            unit = self.route(layer)
            if unit == "adder_tree":
                cycles = self.adder_tree.cycles_for_layer(layer, n_points)
            else:
                cycles = self.systolic.cycles_for_layer(layer, n_points)
            routing.append((unit, cycles))
            total += cycles
        return total, routing

    @staticmethod
    def head_layers(in_features: int, hidden_width: int, hidden_layers: int,
                    out_features: int) -> List[MLPLayerShape]:
        """Layer shapes of one MLP head (mirrors :class:`repro.nn.mlp.MLP`)."""
        widths = [in_features] + [hidden_width] * hidden_layers + [out_features]
        return [MLPLayerShape(a, b) for a, b in zip(widths[:-1], widths[1:])]
