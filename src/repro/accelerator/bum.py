"""Back-Propagation Update Merger (BUM) — Sec. 4.5 of the paper.

During back-propagation, many vertices map to the same hash-table entry (the
table is smaller than the vertex count), so gradient updates to the *same*
address arrive repeatedly inside a short time window.  The BUM unit keeps a
small buffer of (address, accumulated update) entries: a new update whose
address matches a buffered entry is merged by accumulation; otherwise it
occupies a free entry; an entry that has not been matched for ``timeout``
cycles — or that is displaced when the buffer is full — is written back to
SRAM as a single write.

:class:`BackPropUpdateMerger.process` replays a write-address trace through
that policy and reports how many SRAM writes remain, which is the statistic
behind the Fig. 18 ablation and the accelerator's back-propagation cycle
count.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np


@dataclass
class BUMResult:
    """Outcome of replaying one gradient-update trace through the BUM."""

    n_updates: int          # incoming gradient updates (one per vertex touch)
    n_sram_writes: int      # writes that actually reach the SRAM banks
    n_merged: int           # updates absorbed into an existing buffer entry

    @property
    def write_reduction(self) -> float:
        """Fraction of SRAM writes eliminated by merging."""
        if self.n_updates == 0:
            return 0.0
        return 1.0 - self.n_sram_writes / self.n_updates

    @property
    def merge_rate(self) -> float:
        """Fraction of incoming updates that were merged."""
        if self.n_updates == 0:
            return 0.0
        return self.n_merged / self.n_updates


class BackPropUpdateMerger:
    """A fixed-size address-matching merge buffer for embedding-grid updates."""

    def __init__(self, n_entries: int = 16, timeout_cycles: int = 16):
        if n_entries < 1 or timeout_cycles < 1:
            raise ValueError("n_entries and timeout_cycles must be positive")
        self.n_entries = int(n_entries)
        self.timeout_cycles = int(timeout_cycles)

    def process(self, addresses: np.ndarray, enabled: bool = True) -> BUMResult:
        """Replay a sequence of update addresses (one per cycle) through the BUM."""
        addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
        n_updates = int(addresses.size)
        if not enabled or n_updates == 0:
            return BUMResult(n_updates=n_updates, n_sram_writes=n_updates, n_merged=0)

        # OrderedDict keyed by address; value = cycle of the last merge.
        buffer: "OrderedDict[int, int]" = OrderedDict()
        sram_writes = 0
        merged = 0
        for cycle, addr in enumerate(addresses):
            addr = int(addr)
            # Retire entries that have waited past the timeout.
            expired = [a for a, last in buffer.items()
                       if cycle - last >= self.timeout_cycles]
            for a in expired:
                del buffer[a]
                sram_writes += 1

            if addr in buffer:
                merged += 1
                buffer[addr] = cycle
                buffer.move_to_end(addr)
                continue

            if len(buffer) >= self.n_entries:
                # Displace the entry at the tail of the buffer (oldest).
                buffer.popitem(last=False)
                sram_writes += 1
            buffer[addr] = cycle

        # Flush whatever is left at the end of the trace.
        sram_writes += len(buffer)
        return BUMResult(n_updates=n_updates, n_sram_writes=sram_writes, n_merged=merged)


def replay_trace(addresses: np.ndarray, n_entries: int = 16,
                 timeout_cycles: int = 16, cap: int = None) -> dict:
    """Replay a touched-address trace through the BUM and summarise it.

    The hook the scheduling benchmark (and any notebook) uses to score a
    live training batch: feed it a grid's recorded address stream — e.g.
    ``grid.last_access.flat_addresses()`` straight after a train step — and
    read off the merge rate the modeled hardware would achieve on it, next
    to the software ceiling (a perfect merger that coalesces *all* repeats,
    regardless of distance: ``1 - unique/total``).

    ``cap`` truncates long traces; replay cost is linear in trace length and
    the statistic stabilises within a few tens of thousands of updates.
    """
    addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
    if cap is not None:
        addresses = addresses[:cap]
    result = BackPropUpdateMerger(n_entries=n_entries,
                                  timeout_cycles=timeout_cycles).process(addresses)
    n_unique = int(np.unique(addresses).size)
    return {
        "n_updates": result.n_updates,
        "n_sram_writes": result.n_sram_writes,
        "n_merged": result.n_merged,
        "merge_rate": result.merge_rate,
        "write_reduction": result.write_reduction,
        "unique_addresses": n_unique,
        "perfect_merge_rate": (1.0 - n_unique / result.n_updates
                               if result.n_updates else 0.0),
    }
