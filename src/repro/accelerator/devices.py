"""Analytic performance/power models of the baseline edge devices (Tab. 3).

The paper's baselines are three NVIDIA Jetson modules running the reference
CUDA Instant-NGP.  Since those boards are not available in this environment,
each is modelled analytically: per-iteration runtime is derived from the same
workload counts (grid bytes gathered/scattered, MLP FLOPs, host-side work)
that the real kernels execute, with per-device effective rates **calibrated
to the paper's own measured end-to-end runtimes** (72 s / ~211 s / ~358 s per
NeRF-Synthetic scene, i.e. the 45x/132x/224x accelerator speedups of Fig. 16
divided into the 1.6 s accelerator runtime) — see DESIGN.md §1 and
EXPERIMENTS.md.  Everything the benchmarks *derive* from these models
(runtime breakdowns, the Instant-3D algorithm's relative speedups, the
crossover behaviour of Tables 1/2/5) follows from how the workload counts
change between configurations, not from further per-experiment fitting.

A key modelled effect is gather/scatter *locality*: a hash table that fits in
the GPU's cache hierarchy is cheaper to access per byte than one that spills
to DRAM.  This is what makes the smaller color grid of the Instant-3D
algorithm faster on the same device (Tab. 1) even though the number of
accesses is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.training.profiler import IterationWorkload, PipelineStep, WorkloadScale


@dataclass(frozen=True)
class DeviceSpec:
    """Static device specification (the rows of the paper's Table 3)."""

    name: str
    technology_nm: int
    sram_mb: float
    area_mm2: Optional[float]
    frequency_ghz: float
    dram: str
    dram_bandwidth_gbs: float
    typical_power_w: float


@dataclass(frozen=True)
class DevicePerformanceParams:
    """Calibrated effective rates of one device (see module docstring)."""

    grid_gather_bytes_per_s: float      # effective rate for embedding reads
    grid_scatter_bytes_per_s: float     # effective rate for gradient updates
    mlp_flops_per_s: float              # effective FP16 throughput for the MLPs
    host_flops_per_s: float             # rate for host-side pipeline steps
    host_overhead_s: float              # fixed per-iteration launch/sync overhead
    cache_bytes: float                  # working set that gathers/scatters can hold
    locality_floor: float               # minimum relative cost of a cache-resident table


@dataclass
class DeviceRuntimeEstimate:
    """Per-scene training-runtime estimate of a device on a workload."""

    device: str
    per_iteration_s: float
    total_s: float
    n_iterations: int
    step_seconds: Dict[str, float] = field(default_factory=dict)
    energy_j: float = 0.0

    def step_fraction(self, steps) -> float:
        """Fraction of per-iteration runtime spent in the named steps."""
        if self.per_iteration_s <= 0:
            return 0.0
        selected = sum(v for k, v in self.step_seconds.items()
                       if any(k.startswith(s) for s in steps))
        return selected / self.per_iteration_s


#: Table 3 specifications.
JETSON_NANO = DeviceSpec(
    name="Jetson Nano", technology_nm=20, sram_mb=2.5, area_mm2=118.0,
    frequency_ghz=0.9, dram="LPDDR4-1600", dram_bandwidth_gbs=25.6,
    typical_power_w=10.0,
)
JETSON_TX2 = DeviceSpec(
    name="Jetson TX2", technology_nm=16, sram_mb=5.0, area_mm2=None,
    frequency_ghz=1.4, dram="LPDDR4-1866", dram_bandwidth_gbs=59.7,
    typical_power_w=15.0,
)
XAVIER_NX = DeviceSpec(
    name="Xavier NX", technology_nm=12, sram_mb=11.0, area_mm2=350.0,
    frequency_ghz=1.1, dram="LPDDR4-1866", dram_bandwidth_gbs=59.7,
    typical_power_w=20.0,
)

#: Calibrated effective rates (see module docstring for the calibration rule).
_DEVICE_PARAMS: Dict[str, DevicePerformanceParams] = {
    XAVIER_NX.name: DevicePerformanceParams(
        grid_gather_bytes_per_s=3.6e9,
        grid_scatter_bytes_per_s=3.6e9,
        mlp_flops_per_s=2.2e12,
        host_flops_per_s=0.5e12,
        host_overhead_s=5.5e-3,
        cache_bytes=8.0e6,
        locality_floor=0.44,
    ),
    JETSON_TX2.name: DevicePerformanceParams(
        grid_gather_bytes_per_s=1.23e9,
        grid_scatter_bytes_per_s=1.23e9,
        mlp_flops_per_s=0.75e12,
        host_flops_per_s=0.2e12,
        host_overhead_s=16.0e-3,
        cache_bytes=4.0e6,
        locality_floor=0.44,
    ),
    JETSON_NANO.name: DevicePerformanceParams(
        grid_gather_bytes_per_s=0.72e9,
        grid_scatter_bytes_per_s=0.72e9,
        mlp_flops_per_s=0.45e12,
        host_flops_per_s=0.12e12,
        host_overhead_s=28.0e-3,
        cache_bytes=2.0e6,
        locality_floor=0.44,
    ),
}


class EdgeGPUModel:
    """Workload-count-driven runtime/energy model of one Jetson-class device."""

    def __init__(self, spec: DeviceSpec,
                 params: Optional[DevicePerformanceParams] = None):
        self.spec = spec
        if params is None:
            if spec.name not in _DEVICE_PARAMS:
                raise KeyError(f"no calibrated parameters for device {spec.name!r}")
            params = _DEVICE_PARAMS[spec.name]
        self.params = params

    # -- cost helpers ---------------------------------------------------------------
    def _locality_penalty(self, table_bytes: float) -> float:
        """Relative per-byte cost of accessing a hash table of ``table_bytes``.

        Tables no larger than the device's cache working set approach the
        ``locality_floor``; tables much larger than it cost the full rate.
        """
        p = self.params
        resident = min(1.0, table_bytes / max(p.cache_bytes, 1.0))
        return p.locality_floor + (1.0 - p.locality_floor) * resident

    def estimate_step_times(self, workload: IterationWorkload) -> Dict[str, float]:
        """Seconds spent in each pipeline step during one training iteration."""
        p = self.params
        table_bytes = workload.grid_table_bytes
        step_seconds: Dict[str, float] = {}
        for step in workload.steps:
            key = step.label
            if step.step == PipelineStep.GRID_FORWARD:
                penalty = self._locality_penalty(table_bytes[step.branch])
                seconds = step.grid_bytes * penalty / p.grid_gather_bytes_per_s
            elif step.step == PipelineStep.GRID_BACKWARD:
                penalty = self._locality_penalty(table_bytes[step.branch])
                seconds = (step.grid_bytes * penalty / p.grid_scatter_bytes_per_s)
                seconds *= step.update_fraction
            elif step.step in (PipelineStep.MLP_FORWARD, PipelineStep.MLP_BACKWARD):
                seconds = step.flops / p.mlp_flops_per_s
            else:
                seconds = (step.flops / p.host_flops_per_s
                           + step.other_bytes / (self.spec.dram_bandwidth_gbs * 1e9))
            step_seconds[key] = step_seconds.get(key, 0.0) + seconds
        # Fixed kernel-launch / synchronisation overhead, attributed to Step ❶.
        step_seconds[PipelineStep.SAMPLE_PIXELS] = (
            step_seconds.get(PipelineStep.SAMPLE_PIXELS, 0.0) + p.host_overhead_s
        )
        return step_seconds

    def estimate_training(self, workload: IterationWorkload,
                          n_iterations: Optional[int] = None) -> DeviceRuntimeEstimate:
        """Per-scene runtime and energy for a full training run."""
        n_iterations = n_iterations if n_iterations is not None else workload.scale.n_iterations
        step_seconds = self.estimate_step_times(workload)
        per_iteration = float(sum(step_seconds.values()))
        total = per_iteration * n_iterations
        return DeviceRuntimeEstimate(
            device=self.spec.name,
            per_iteration_s=per_iteration,
            total_s=total,
            n_iterations=n_iterations,
            step_seconds=step_seconds,
            energy_j=total * self.spec.typical_power_w,
        )


def baseline_devices() -> Dict[str, EdgeGPUModel]:
    """The three baseline device models, keyed by name (Tab. 3 order)."""
    return {
        JETSON_NANO.name: EdgeGPUModel(JETSON_NANO),
        JETSON_TX2.name: EdgeGPUModel(JETSON_TX2),
        XAVIER_NX.name: EdgeGPUModel(XAVIER_NX),
    }
