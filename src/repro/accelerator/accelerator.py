"""Top-level Instant-3D accelerator simulation.

:class:`Instant3DAccelerator` combines the component models — grid cores with
FRM/BUM and the multi-core-fusion scheme, the MLP engine, the host SoC and
the LPDDR4 DRAM — into a per-scene training-runtime and energy estimate.

The grid-core behaviour (reads packed per cycle by the FRM, gradient writes
merged by the BUM) is *measured* by replaying a real memory trace extracted
from the Python model (:mod:`repro.accelerator.trace`); the measured
per-access rates are then scaled to the paper-scale workload counts produced
by :mod:`repro.training.profiler`.  Feature ablations (``frm_enabled``,
``bum_enabled``, ``fusion_enabled`` on the config, or swapping the Instant-3D
algorithm for the Instant-NGP baseline) therefore change the estimate through
the simulated mechanisms, which is how Figs. 16-18 and Tab. 5 are
regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.energy import AreaModel, EnergyBreakdown, EnergyModel
from repro.accelerator.fusion import plan_fusion
from repro.accelerator.grid_core import GridCoreSimulator, GridPhaseResult
from repro.accelerator.mlp_unit import MLPEngine
from repro.accelerator.trace import MemoryTrace
from repro.grid.hash_encoding import FEATURE_BYTES
from repro.training.profiler import IterationWorkload, PipelineStep


@dataclass
class AcceleratorRunEstimate:
    """Runtime/energy estimate of one full training run on the accelerator."""

    config_name: str
    per_iteration_s: float
    total_s: float
    n_iterations: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)
    grid_phases: Dict[str, GridPhaseResult] = field(default_factory=dict)
    energy: Optional[EnergyBreakdown] = None
    average_power_w: float = 0.0

    @property
    def energy_j(self) -> float:
        return self.energy.total_j if self.energy is not None else 0.0

    def speedup_over(self, other_total_s: float) -> float:
        """Speedup of this run versus another runtime (e.g. a Jetson estimate)."""
        if self.total_s <= 0:
            return float("inf")
        return other_total_s / self.total_s

    def energy_efficiency_over(self, other_energy_j: float) -> float:
        """Energy-efficiency gain versus another run's energy."""
        if self.energy_j <= 0:
            return float("inf")
        return other_energy_j / self.energy_j


#: Fallback per-access rates used when no memory trace is provided, taken
#: from typical trace measurements (accesses serviced per cycle per branch
#: and BUM write-reduction fraction).
_DEFAULT_RATES = {
    "forward_accesses_per_cycle_per_bank": 0.85,
    "backward_accesses_per_cycle_per_bank": 0.65,
    "bum_write_reduction": 0.6,
}

#: Bytes exchanged with DRAM per queried point (coordinates in, features out).
_IO_BYTES_PER_POINT = 20.0
#: Host SoC effective rate for the pipeline steps it keeps (Steps ❶❷❹❺).
_HOST_FLOPS_PER_S = 0.25e12
_HOST_OVERHEAD_S = 1.0e-4


class Instant3DAccelerator:
    """Cycle-level runtime/energy estimator for the Instant-3D accelerator."""

    def __init__(self, config: Optional[AcceleratorConfig] = None):
        self.config = config if config is not None else AcceleratorConfig()
        self.grid_sim = GridCoreSimulator(self.config)
        self.mlp_engine = MLPEngine(self.config.mlp_unit)
        self.energy_model = EnergyModel(self.config)
        self.area_model = AreaModel(self.config)

    # -- grid phases --------------------------------------------------------------
    def _branch_rates(self, trace: Optional[MemoryTrace], table_bytes: Dict[str, int]
                      ) -> Dict[str, Dict[str, float]]:
        """Per-branch accesses-per-cycle rates, measured from the trace if given."""
        rates: Dict[str, Dict[str, float]] = {}
        for branch, bytes_ in table_bytes.items():
            if trace is not None and branch in trace.branches:
                branch_trace = trace.branch(branch)
                fwd = self.grid_sim.simulate_forward(branch_trace, bytes_)
                bwd = self.grid_sim.simulate_backward(branch_trace, bytes_)
                # The backward rate is the backward phase's own access count
                # (gradient reads + update writes, ``bwd.n_accesses``) per
                # core cycle — the old numerator used the forward read count
                # alone, which halved the measured rate while the workload's
                # GRID_BACKWARD step counts both reads and writes.
                rates[branch] = {
                    "forward_accesses_per_cycle": max(fwd.accesses_per_cycle, 1e-9),
                    "backward_accesses_per_cycle": max(bwd.accesses_per_cycle, 1e-9),
                    "forward_result": fwd,
                    "backward_result": bwd,
                }
            else:
                plan = plan_fusion(bytes_, self.config)
                banks = (self.config.n_grid_cores * self.config.grid_core.n_banks
                         if self.config.fusion_enabled else self.config.grid_core.n_banks)
                fwd_per_bank = (_DEFAULT_RATES["forward_accesses_per_cycle_per_bank"]
                                if self.config.frm_enabled else 0.25)
                bwd_per_bank = (_DEFAULT_RATES["backward_accesses_per_cycle_per_bank"]
                                if self.config.frm_enabled else 0.2)
                if not self.config.bum_enabled:
                    bwd_per_bank *= 0.6
                rates[branch] = {
                    "forward_accesses_per_cycle": banks * fwd_per_bank / plan.n_segments,
                    "backward_accesses_per_cycle": banks * bwd_per_bank / plan.n_segments,
                    "forward_result": None,
                    "backward_result": None,
                }
        return rates

    # -- full estimate ---------------------------------------------------------------
    def estimate_training(self, workload: IterationWorkload,
                          trace: Optional[MemoryTrace] = None,
                          n_iterations: Optional[int] = None) -> AcceleratorRunEstimate:
        """Estimate the per-scene training runtime and energy for ``workload``."""
        config = self.config
        n_iterations = (n_iterations if n_iterations is not None
                        else workload.scale.n_iterations)
        cycle_s = config.cycle_time_s
        table_bytes = workload.grid_table_bytes
        rates = self._branch_rates(trace, table_bytes)

        phase_seconds: Dict[str, float] = {}
        grid_phases: Dict[str, GridPhaseResult] = {}
        sram_read_bytes = 0.0
        sram_write_bytes = 0.0
        interpolation_macs = 0.0
        dram_swap_bytes = 0.0

        grid_forward_s = 0.0
        grid_backward_s = 0.0
        for step in workload.steps:
            if step.step not in PipelineStep.GRID_STEPS:
                continue
            branch = step.branch
            plan = plan_fusion(table_bytes[branch], config)
            branch_rates = rates[branch]
            if step.step == PipelineStep.GRID_FORWARD:
                rate = branch_rates["forward_accesses_per_cycle"]
                cycles = step.grid_accesses / rate
                seconds = cycles * cycle_s
                seconds += plan.dram_swap_bytes / config.dram_bandwidth_bytes_per_s
                grid_forward_s += seconds
                phase_seconds[f"grid_forward[{branch}]"] = seconds
                if branch_rates["forward_result"] is not None:
                    grid_phases[f"forward[{branch}]"] = branch_rates["forward_result"]
                sram_read_bytes += step.grid_bytes
                dram_swap_bytes += plan.dram_swap_bytes
            else:
                rate = branch_rates["backward_accesses_per_cycle"]
                cycles = step.grid_accesses / rate
                seconds = cycles * cycle_s
                seconds += plan.dram_swap_bytes / config.dram_bandwidth_bytes_per_s
                seconds *= step.update_fraction
                grid_backward_s += seconds
                phase_seconds[f"grid_backward[{branch}]"] = seconds
                if branch_rates["backward_result"] is not None:
                    grid_phases[f"backward[{branch}]"] = branch_rates["backward_result"]
                bwd_result = branch_rates["backward_result"]
                write_fraction = (1.0 - bwd_result.bum.write_reduction
                                  if bwd_result is not None and bwd_result.bum is not None
                                  else (1.0 - _DEFAULT_RATES["bum_write_reduction"]
                                        if config.bum_enabled else 1.0))
                sram_read_bytes += step.grid_bytes * step.update_fraction
                sram_write_bytes += step.grid_bytes * write_fraction * step.update_fraction
                dram_swap_bytes += plan.dram_swap_bytes * step.update_fraction
            interpolation_macs += step.flops * step.update_fraction / 2.0

        # MLP engine: forward and backward of the two heads (Step ❸-②).
        model_config = workload.config
        branch_features = max(1, model_config.grid.n_features_per_level // 2)
        density_in = model_config.density_grid_config.n_levels * branch_features
        color_in = (model_config.color_grid_config.n_levels * branch_features
                    + model_config.sh_degree ** 2)
        layers = (
            self.mlp_engine.head_layers(density_in, model_config.mlp_hidden_width,
                                        model_config.mlp_hidden_layers, 1)
            + self.mlp_engine.head_layers(color_in, model_config.mlp_hidden_width,
                                          model_config.mlp_hidden_layers, 3)
        )
        n_points = workload.points_per_iteration
        mlp_fwd_cycles, _routing = self.mlp_engine.cycles_for_layers(layers, n_points)
        mlp_forward_s = mlp_fwd_cycles * cycle_s
        mlp_backward_s = 2.0 * mlp_forward_s
        phase_seconds["mlp_forward"] = mlp_forward_s
        phase_seconds["mlp_backward"] = mlp_backward_s
        mlp_macs = workload.total("flops", [PipelineStep.MLP_FORWARD,
                                            PipelineStep.MLP_BACKWARD]) / 2.0

        # Host SoC steps (❶❷❹❺ and the MLP optimiser update) and DRAM I/O.
        host_flops = workload.total("flops", list(PipelineStep.HOST_STEPS))
        host_bytes = workload.total("other_bytes", list(PipelineStep.HOST_STEPS))
        host_s = (host_flops / _HOST_FLOPS_PER_S
                  + host_bytes / config.dram_bandwidth_bytes_per_s
                  + _HOST_OVERHEAD_S)
        io_bytes = n_points * _IO_BYTES_PER_POINT
        io_s = io_bytes / config.dram_bandwidth_bytes_per_s
        phase_seconds["host"] = host_s
        phase_seconds["dram_io"] = io_s

        # Grid cores and MLP units pipeline over point chunks within each of
        # the forward and backward halves of an iteration.
        forward_s = max(grid_forward_s, mlp_forward_s)
        backward_s = max(grid_backward_s, mlp_backward_s)
        per_iteration_s = forward_s + backward_s + host_s + io_s
        total_s = per_iteration_s * n_iterations

        energy = self.energy_model.breakdown(
            sram_read_bytes=sram_read_bytes * n_iterations,
            sram_write_bytes=sram_write_bytes * n_iterations,
            interpolation_macs=interpolation_macs * n_iterations,
            mlp_macs=mlp_macs * n_iterations,
            activation_bytes=workload.total(
                "other_bytes", [PipelineStep.MLP_FORWARD, PipelineStep.MLP_BACKWARD]
            ) * n_iterations,
            dram_bytes=(io_bytes + dram_swap_bytes + host_bytes) * n_iterations,
            runtime_s=total_s,
        )
        return AcceleratorRunEstimate(
            config_name=config.name,
            per_iteration_s=per_iteration_s,
            total_s=total_s,
            n_iterations=n_iterations,
            phase_seconds=phase_seconds,
            grid_phases=grid_phases,
            energy=energy,
            average_power_w=self.energy_model.average_power_w(energy, total_s),
        )

    # -- reporting helpers -------------------------------------------------------------
    def area_breakdown(self):
        """Silicon-area breakdown of the configured accelerator (Fig. 15)."""
        return self.area_model.breakdown()
