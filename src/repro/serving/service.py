"""The multi-tenant scene service: a job queue over shared trainers.

:class:`SceneService` is the front end of the serving layer.  Clients
submit :class:`~repro.serving.jobs.RenderJob` / fine-tune
:class:`~repro.serving.jobs.TrainJob` requests and get back
:class:`~repro.serving.jobs.JobHandle` futures; worker threads drain a
``(priority, deadline, arrival)``-ordered queue, keeping each scene's
trainer resident under the :class:`~repro.serving.residency.ResidencyManager`'s
``max_resident_scenes`` checkpoint-eviction cap.

Two engine-utilization levers from the training stack carry over:

* **cross-request ray batching** — when a worker dequeues a render job it
  also grabs every other pending render job for the *same scene* (same
  sample count, within ``max_coalesced_rays``) and runs them as one
  coalesced field query (:func:`~repro.serving.batching.render_coalesced`)
  instead of per-request calls;
* **per-worker workspace arenas** — each worker owns one
  :class:`~repro.utils.workspace.WorkspaceArena` for its pipeline and
  coalescer temporaries, so steady-state serving performs no large
  allocations (buffer names are bounded: pipeline sites plus
  ``serve/<slot>/...`` retention sites).

Determinism: renders are jitter-free and consume no training RNG, so any
mix of render and train jobs leaves every scene's training trajectory
bit-identical to solo :class:`~repro.training.trainer.Trainer` runs — train
jobs for one scene execute under that scene's lock in submission order
(they never coalesce and never run concurrently with that scene's renders).

Fault tolerance (see ``docs/reliability.md``): a failed job is classified
by the service's :class:`~repro.reliability.retry.RetryPolicy` — transient
errors requeue the job with deterministic exponential backoff (implemented
as a ``not_before`` timestamp, so workers keep draining other jobs instead
of sleeping), permanent errors fail the handle immediately, and a job that
exhausts its attempts is quarantined with
:class:`~repro.serving.jobs.JobPoisoned`.  Innocent batch-mates of a failed
coalesced render are requeued individually (``solo``), never failed with
the lead.  A worker thread that dies outside the per-batch handler is
respawned and its claimed jobs requeued.  Deadlines are enforced (expired
jobs shed with :class:`~repro.serving.jobs.DeadlineExceeded` before
execution) and ``max_queue_depth`` bounds the queue via
:class:`~repro.serving.jobs.QueueFull` admission control.

Retried train jobs stay bit-exact: the first attempt records the target
iteration, and a retry runs only the remaining steps — fault sites sit at
step boundaries, so the trajectory is the solo trainer's exactly.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.config import Instant3DConfig
from repro.datasets.dataset import SceneDataset
from repro.nerf.cameras import PinholeCamera
from repro.nerf.pipeline import RenderPipeline
from repro.reliability.faults import fault_point, get_injector
from repro.reliability.health import NumericalFault
from repro.reliability.retry import RetryPolicy
from repro.serving.batching import DEFAULT_CHUNK_POINTS, render_coalesced
from repro.serving.jobs import (
    DeadlineExceeded,
    JobCancelled,
    JobHandle,
    JobPoisoned,
    QueueFull,
    RenderJob,
    RenderResult,
    TrainJob,
    TrainResult,
)
from repro.serving.residency import ResidencyManager

__all__ = ["SceneService"]


class SceneService:
    """Queue-scheduled rendering and fine-tuning over a set of scenes.

    Parameters
    ----------
    datasets:
        Scenes this service can serve (unique names; one trainer each,
        built lazily on first use with the shared ``config``/``seed`` so
        trajectories match solo training).
    config / seed:
        Shared training configuration and base seed.
    n_workers:
        Worker threads draining the queue.  One worker already benefits
        from coalescing (queued same-scene renders merge); more workers add
        scene-level parallelism.
    checkpoint_dir / max_resident_scenes:
        Residency cap plumbing, exactly as on
        :class:`~repro.training.fleet.SceneFleet`: over-cap scenes are
        checkpointed and restored on demand (LRU victims).  Note workers
        pin the scenes they are executing, so with more workers than the
        cap the bound stretches to the number of busy scenes.
    coalesce:
        Merge pending same-scene render jobs into one engine stream
        (``False`` = per-request dispatch, the benchmark baseline).
    max_coalesced_rays:
        Ray budget of one coalesced batch (the lead job always runs, even
        if it alone exceeds the budget).
    retry_policy:
        Transient-failure retry/backoff policy (default:
        :class:`~repro.reliability.retry.RetryPolicy` with 3 attempts;
        pass ``RetryPolicy(max_attempts=1)`` to disable retries).
    max_queue_depth:
        Admission-control bound on queued jobs; ``submit`` raises
        :class:`~repro.serving.jobs.QueueFull` beyond it.  ``None`` =
        unbounded.  Internal requeues (retries, batch-mates) are exempt so
        backpressure never cancels accepted work.
    shed_expired:
        Enforce deadlines: fail jobs whose deadline passed while queued
        with :class:`~repro.serving.jobs.DeadlineExceeded` instead of
        running them (``False`` restores the soft, accounting-only
        contract).
    keep_generations:
        Checkpoint generations retained per scene (forwarded to the
        :class:`~repro.serving.residency.ResidencyManager`; ``N > 1``
        enables corruption fallback to older snapshots).
    """

    def __init__(self, datasets: Sequence[SceneDataset], config: Instant3DConfig,
                 seed: int = 0, n_workers: int = 1,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 max_resident_scenes: Optional[int] = None,
                 coalesce: bool = True, max_coalesced_rays: int = 65536,
                 retry_policy: Optional[RetryPolicy] = None,
                 max_queue_depth: Optional[int] = None,
                 shed_expired: bool = True,
                 keep_generations: int = 1):
        if not datasets:
            raise ValueError("SceneService needs at least one dataset")
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if max_coalesced_rays < 1:
            raise ValueError("max_coalesced_rays must be >= 1")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 or None")
        self.config = config
        self.seed = int(seed)
        self.coalesce = bool(coalesce)
        self.max_coalesced_rays = int(max_coalesced_rays)
        self.shed_expired = bool(shed_expired)
        self.max_queue_depth = max_queue_depth
        self._retry_policy = (retry_policy if retry_policy is not None
                              else RetryPolicy())
        self._residency = ResidencyManager(
            config, seed=seed, checkpoint_dir=checkpoint_dir,
            max_resident_scenes=max_resident_scenes,
            keep_generations=keep_generations)
        for dataset in datasets:
            self._residency.add_scene(dataset)
        self._residency_lock = threading.Lock()
        self._scene_locks: Dict[str, threading.Lock] = {
            dataset.name: threading.Lock() for dataset in datasets}
        self._cv = threading.Condition()
        self._pending: List[JobHandle] = []
        self._busy: set = set()            # scene names a worker is executing
        self._claimed: Dict[int, List[JobHandle]] = {}   # worker -> its batch
        self._closed = False
        self._seq = 0
        self._stats = {
            "render_jobs": 0, "train_jobs": 0, "batches": 0,
            "coalesced_jobs": 0, "max_batch_size": 0, "deadline_misses": 0,
            "retries": 0, "requeues": 0, "shed": 0, "poisoned": 0,
            "cancelled": 0, "workers_respawned": 0,
        }
        #: Scenes quarantined by a NumericalFault: training diverged past
        #: the rollback budget.  Submissions for them are rejected up
        #: front — the divergence is deterministic, so re-running the job
        #: would poison the scene identically.
        self._poisoned_scenes: set = set()
        self._workers = [
            threading.Thread(target=self._worker_main, args=(index,),
                             name=f"scene-service-{index}", daemon=True)
            for index in range(n_workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- client API -----------------------------------------------------------
    @property
    def scene_names(self) -> List[str]:
        return self._residency.scene_names

    def submit(self, job) -> JobHandle:
        """Enqueue a job and return its handle (raises if the service is
        closed, the scene unknown, or the queue full)."""
        with self._cv:
            if job.scene in self._poisoned_scenes:
                raise JobPoisoned(
                    f"scene {job.scene!r} is quarantined: its training "
                    f"diverged past the rollback budget (NumericalFault); "
                    f"further jobs would replay the same divergence")
        with self._residency_lock:
            # Workers mutate residency state in checkout(); even the
            # read-only slot lookup must serialise behind the same lock.
            slot = self._residency.slot(job.scene)   # validates the scene name
        camera = None
        n_rays = 0
        if job.kind == "render":
            camera = job.camera
            if camera is None:
                if not slot.dataset.test_views:
                    raise ValueError(
                        f"scene {job.scene!r} has no test views; pass an "
                        "explicit camera on the RenderJob")
                camera = slot.dataset.test_views[0].camera
            n_rays = camera.n_pixels
        elif job.kind != "train":
            raise TypeError(f"unknown job kind {getattr(job, 'kind', None)!r}")
        with self._cv:
            if self._closed:
                raise RuntimeError("cannot submit to a closed SceneService")
            if (self.max_queue_depth is not None
                    and len(self._pending) >= self.max_queue_depth):
                raise QueueFull(
                    f"queue depth {len(self._pending)} at the "
                    f"max_queue_depth={self.max_queue_depth} bound; "
                    f"retry after the backlog drains")
            self._seq += 1
            handle = JobHandle(job=job, seq=self._seq,
                               submitted_at=time.perf_counter(),
                               camera=camera, n_rays=n_rays)
            handle._canceller = self._cancel_pending
            self._pending.append(handle)
            self._cv.notify_all()
        return handle

    def _cancel_pending(self, handle: JobHandle) -> bool:
        """Back end of :meth:`JobHandle.cancel`: withdraw a queued job."""
        with self._cv:
            if handle not in self._pending:
                return False            # running, retired, or already done
            self._pending.remove(handle)
            self._stats["cancelled"] += 1
            handle._fail(JobCancelled(
                f"job {handle.seq} cancelled by the client before execution"))
            return True

    def render(self, scene: str, camera: Optional[PinholeCamera] = None,
               n_samples: Optional[int] = None, priority: int = 0,
               deadline_s: Optional[float] = None) -> JobHandle:
        """Convenience wrapper: submit a :class:`RenderJob`."""
        return self.submit(RenderJob(scene=scene, camera=camera,
                                     n_samples=n_samples, priority=priority,
                                     deadline_s=deadline_s))

    def train(self, scene: str, n_steps: int = 1, priority: int = 0,
              deadline_s: Optional[float] = None) -> JobHandle:
        """Convenience wrapper: submit a :class:`TrainJob`."""
        if n_steps < 1:
            raise ValueError("n_steps must be >= 1")
        return self.submit(TrainJob(scene=scene, n_steps=n_steps,
                                    priority=priority, deadline_s=deadline_s))

    def stats(self) -> Dict[str, float]:
        """Service counters plus the residency manager's eviction stats."""
        with self._cv:
            counters = dict(self._stats)
            poisoned_scenes = len(self._poisoned_scenes)
        batches = max(counters["batches"], 1)
        out = {key: float(value) for key, value in counters.items()}
        out["mean_batch_size"] = counters["coalesced_jobs"] / batches
        out["poisoned_scenes"] = float(poisoned_scenes)
        injector = get_injector()
        out["faults_injected"] = (float(injector.faults_injected)
                                  if injector is not None else 0.0)
        with self._residency_lock:
            out.update(self._residency.stats())
            out.update(self._residency.health_stats())
        return out

    def close(self, save: Optional[bool] = None) -> None:
        """Drain the queue, stop the workers and release every trainer.

        Already-submitted jobs complete; new submissions raise.  ``save``
        is forwarded to :meth:`ResidencyManager.flush` (default: checkpoint
        exactly when a ``checkpoint_dir`` is configured).
        """
        with self._cv:
            if self._closed:
                return
            self._closed = True
            self._cv.notify_all()
        # A crashing worker may respawn a replacement mid-join, so join
        # until the worker list is stable and fully dead.
        while True:
            with self._cv:
                threads = list(self._workers)
            for thread in threads:
                thread.join()
            with self._cv:
                if all(not thread.is_alive() for thread in self._workers):
                    break
        # Workers are gone; fail anything that slipped through unclaimed.
        with self._cv:
            leftovers = list(self._pending)
            self._pending.clear()
        for handle in leftovers:
            handle._fail(JobCancelled("service closed before the job ran"))
        with self._residency_lock:
            self._residency.flush(save=save)

    def __enter__(self) -> "SceneService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- worker side ----------------------------------------------------------
    def _shed_expired(self, now: float) -> None:
        """Fail queued jobs whose deadline already passed; ``_cv`` held."""
        expired = [handle for handle in self._pending if handle.expired(now)]
        for handle in expired:
            self._pending.remove(handle)
            self._stats["shed"] += 1
            handle._fail(DeadlineExceeded(
                f"job {handle.seq} ({handle.job.kind} of scene "
                f"{handle.job.scene!r}) expired its {handle.job.deadline_s}s "
                f"deadline while queued; shed without executing"))

    def _take_batch(self, now: float) -> Optional[List[JobHandle]]:
        """Pick the best runnable job (+ coalescable friends); lock held.

        Per-scene submission order is preserved: only the best-ranked
        pending job of a scene may lead a batch, so a scene whose best job
        is deferred (retry backoff) yields no work this round rather than
        running a later job out of order — the property that keeps retried
        trajectories bit-exact.
        """
        if self.shed_expired:
            self._shed_expired(now)
        candidates = sorted(self._pending, key=JobHandle.sort_key)
        seen_scenes: set = set()
        for lead in candidates:
            scene = lead.job.scene
            if scene in seen_scenes:
                continue
            seen_scenes.add(scene)
            if scene in self._busy or lead.not_before > now:
                continue
            batch = [lead]
            if self.coalesce and lead.job.kind == "render" and not lead.solo:
                rays = lead.n_rays
                for other in candidates:
                    if other is lead or other.job.kind != "render":
                        continue
                    if other.solo or other.not_before > now:
                        continue
                    if (other.job.scene != scene
                            or other.job.n_samples != lead.job.n_samples
                            or rays + other.n_rays > self.max_coalesced_rays):
                        continue
                    batch.append(other)
                    rays += other.n_rays
            for handle in batch:
                self._pending.remove(handle)
            self._busy.add(scene)
            return batch
        return None

    def _wait_timeout(self, now: float) -> Optional[float]:
        """How long a worker may sleep before a deferred job becomes ready."""
        deferred = [handle.not_before for handle in self._pending
                    if handle.not_before > now]
        if not deferred:
            return None
        return max(1e-4, min(deferred) - now)

    def _worker_main(self, index: int) -> None:
        """Thread target: run the loop, survive crashes via the supervisor."""
        try:
            self._worker_loop(index)
        except BaseException as exc:  # noqa: BLE001 - worker supervision
            self._supervise_crash(index, exc)

    def _worker_loop(self, index: int) -> None:
        backend = self.config.array_backend
        arena = backend.make_arena() if self.config.reuse_workspace else None
        while True:
            with self._cv:
                batch = None
                while batch is None:
                    now = time.perf_counter()
                    if self._pending:
                        batch = self._take_batch(now)
                        if batch is not None:
                            break
                    if self._closed and not self._pending:
                        return
                    self._cv.wait(self._wait_timeout(now))
                self._claimed[index] = batch
            scene = batch[0].job.scene
            # Outside the per-batch handler: an injected crash here kills
            # the whole worker thread and exercises the supervisor.
            fault_point("worker.crash")
            try:
                self._execute(batch, arena)
            finally:
                with self._cv:
                    self._claimed.pop(index, None)
                    self._busy.discard(scene)
                    self._cv.notify_all()

    def _supervise_crash(self, index: int, error: BaseException) -> None:
        """A worker thread died: requeue its claimed batch and respawn it."""
        with self._cv:
            self._stats["workers_respawned"] += 1
            batch = self._claimed.pop(index, None)
            if batch:
                self._busy.discard(batch[0].job.scene)
                for handle in batch:
                    handle.attempts += 1
                    if handle.attempts >= self._retry_policy.max_attempts:
                        self._stats["poisoned"] += 1
                        poisoned = JobPoisoned(
                            f"job {handle.seq} crashed its worker on all "
                            f"{handle.attempts} permitted attempts; "
                            f"quarantined")
                        poisoned.__cause__ = error
                        handle._fail(poisoned)
                    else:
                        handle.not_before = (
                            time.perf_counter()
                            + self._retry_policy.backoff_s(handle.attempts))
                        self._stats["retries"] += 1
                        self._pending.append(handle)
            if not self._closed:
                replacement = threading.Thread(
                    target=self._worker_main, args=(index,),
                    name=f"scene-service-{index}", daemon=True)
                self._workers.append(replacement)
                replacement.start()
            self._cv.notify_all()

    def _execute(self, batch: List[JobHandle], arena) -> None:
        lead = batch[0]
        scene = lead.job.scene
        dequeued_at = time.perf_counter()
        try:
            with self._scene_locks[scene]:
                with self._cv:
                    pinned = set(self._busy)
                with self._residency_lock:
                    slot = self._residency.checkout(scene, pinned=pinned)
                fault_point("worker.execute")
                if lead.job.kind == "train":
                    self._run_train(lead, slot, dequeued_at)
                else:
                    self._run_renders(batch, slot, arena, dequeued_at)
        except BaseException as exc:  # noqa: BLE001 - retried or delivered
            self._handle_failure(batch, exc)

    def _handle_failure(self, batch: List[JobHandle], error: BaseException
                        ) -> None:
        """Classify a batch failure: retry the lead, requeue the mates.

        Only the lead's attempt counter is charged — batch-mates were
        passengers.  They requeue as ``solo`` so a poisoned lead cannot
        repeatedly drag fresh batches down with it.
        """
        lead = batch[0]
        policy = self._retry_policy
        now = time.perf_counter()
        with self._cv:
            lead.attempts += 1
            if isinstance(error, NumericalFault):
                # Training diverged past the rollback budget.  The fault is
                # deterministic (same seed => same divergence), so the
                # *scene* is quarantined, not just the job: map it to
                # JobPoisoned here and reject future submissions up front.
                self._poisoned_scenes.add(lead.job.scene)
                self._stats["poisoned"] += 1
                poisoned = JobPoisoned(
                    f"scene {lead.job.scene!r} poisoned: {error}")
                poisoned.__cause__ = error
                lead._fail(poisoned)
            elif policy.should_retry(error, lead.attempts):
                lead.not_before = now + policy.backoff_s(lead.attempts)
                self._stats["retries"] += 1
                self._pending.append(lead)
            elif policy.classify(error) == "transient":
                self._stats["poisoned"] += 1
                poisoned = JobPoisoned(
                    f"job {lead.seq} failed all {lead.attempts} permitted "
                    f"attempts; quarantined")
                poisoned.__cause__ = error
                lead._fail(poisoned)
            else:
                lead._fail(error)
            for mate in batch[1:]:
                mate.solo = True
                self._stats["requeues"] += 1
                self._pending.append(mate)
            self._cv.notify_all()

    def _finish_timing(self, handle: JobHandle, dequeued_at: float):
        now = time.perf_counter()
        queued_ms = 1e3 * (dequeued_at - handle.submitted_at)
        service_ms = 1e3 * (now - handle.submitted_at)
        deadline = getattr(handle.job, "deadline_s", None)
        missed = deadline is not None and service_ms > 1e3 * deadline
        if missed:
            with self._cv:
                self._stats["deadline_misses"] += 1
        return queued_ms, service_ms, missed

    def _run_train(self, handle: JobHandle, slot, dequeued_at: float) -> None:
        job = handle.job
        trainer = slot.trainer
        if handle.target_iteration is None:
            # First attempt: pin the job to an absolute iteration span so a
            # retry runs exactly the remaining steps (fault sites sit at
            # step boundaries, so the trajectory stays the solo trainer's).
            handle.target_iteration = trainer.iteration + job.n_steps
            handle.history_before = len(slot.history.losses)
        before = handle.history_before
        remaining = handle.target_iteration - trainer.iteration
        if remaining > 0:
            trainer.run_steps(remaining, slot.history)
        queued_ms, service_ms, missed = self._finish_timing(handle, dequeued_at)
        with self._cv:
            self._stats["train_jobs"] += 1
        handle._finish(TrainResult(
            scene=job.scene,
            iteration=trainer.iteration,
            losses=list(slot.history.losses[before:]),
            queued_ms=queued_ms,
            service_ms=service_ms,
            deadline_missed=missed,
        ))

    def _run_renders(self, batch: List[JobHandle], slot, arena,
                     dequeued_at: float) -> None:
        trainer = slot.trainer
        n_samples = (batch[0].job.n_samples
                     if batch[0].job.n_samples is not None
                     else self.config.n_samples_per_ray)
        # A fresh pipeline per batch is cheap (no allocations): all heavy
        # buffers come from the worker's arena, keyed by stable site names.
        pipeline = RenderPipeline(
            trainer.model, slot.dataset.scene_bound, n_samples=n_samples,
            white_background=self.config.white_background,
            occupancy=trainer.occupancy,
            culling_enabled=trainer.occupancy is not None,
            policy=trainer.policy, arena=arena, backend=trainer.backend,
        )
        bundles = [handle.camera.all_rays() for handle in batch]
        views = render_coalesced(
            pipeline, bundles, arena=arena,
            chunk_points=self.config.max_chunk_points or DEFAULT_CHUNK_POINTS)
        with self._cv:
            self._stats["render_jobs"] += len(batch)
            self._stats["batches"] += 1
            self._stats["coalesced_jobs"] += len(batch)
            self._stats["max_batch_size"] = max(self._stats["max_batch_size"],
                                                len(batch))
        for handle, view in zip(batch, views):
            camera = handle.camera
            queued_ms, service_ms, missed = self._finish_timing(handle,
                                                                dequeued_at)
            handle._finish(RenderResult(
                scene=handle.job.scene,
                colors=np.clip(view.colors, 0.0, 1.0).reshape(
                    camera.height, camera.width, 3),
                depth=view.depth.reshape(camera.height, camera.width),
                n_rays=view.n_rays,
                n_queried=view.n_queried,
                batch_size=len(batch),
                queued_ms=queued_ms,
                service_ms=service_ms,
                deadline_missed=missed,
            ))
