"""Multi-tenant serving: job queue, scene residency and cross-request batching.

The package turns the repo's single-scene synchronous training/rendering
stack into the service shape the ROADMAP's north star describes — many
concurrent render and fine-tune requests sharing one engine:

* :mod:`repro.serving.jobs` — the :class:`RenderJob` / :class:`TrainJob`
  request model (scene name, priority, deadline) and the
  :class:`JobHandle` futures clients wait on;
* :mod:`repro.serving.residency` — the :class:`ResidencyManager`, the
  standalone LRU checkpoint-eviction engine shared by
  :class:`~repro.training.fleet.SceneFleet` and the service;
* :mod:`repro.serving.batching` — cross-request ray coalescing over the
  :class:`~repro.nerf.pipeline.RenderPipeline` stages;
* :mod:`repro.serving.service` — the :class:`SceneService` front end owning
  the worker threads and the request queue.
"""

from repro.serving.jobs import (
    DeadlineExceeded,
    JobCancelled,
    JobHandle,
    JobPoisoned,
    QueueFull,
    RenderJob,
    RenderResult,
    TrainJob,
    TrainResult,
)
from repro.serving.residency import ResidencyManager, SceneSlot, validate_scene_name
from repro.serving.batching import (
    DEFAULT_CHUNK_POINTS,
    CoalescedView,
    render_coalesced,
)
from repro.serving.service import SceneService

__all__ = [
    "CoalescedView",
    "DEFAULT_CHUNK_POINTS",
    "DeadlineExceeded",
    "JobCancelled",
    "JobHandle",
    "JobPoisoned",
    "QueueFull",
    "RenderJob",
    "RenderResult",
    "ResidencyManager",
    "SceneService",
    "SceneSlot",
    "TrainJob",
    "TrainResult",
    "render_coalesced",
    "validate_scene_name",
]
