"""Cross-request ray coalescing over the composable pipeline stages.

The utilization argument of the paper applied to serving: the fused grid
engine streams any contiguous point block in ``max_chunk_points`` chunks,
so N pending render requests for the *same resident scene* are cheapest as
ONE query over the concatenation of their kept samples — one stream of full
chunks instead of N part-filled streams — with the results split back per
request afterwards.

:func:`render_coalesced` runs stages ❶–❷ (sampling, occupancy culling)
per request and compacts each request's kept samples *directly into its
slice of the shared query block* — the concatenation capacity is known
upfront from the bundles' dense ray x sample products, so stage ❸a's
per-request gather lands in place and no second concatenation copy is
paid.  What the composite needs later (``t_vals``/``deltas``/``idx``) is
retained in slot-indexed arena buffers (``serve/<i>/...`` — a bounded name
set, so steady-state serving stays allocation-free).  One stage-❸b field
query covers every request, then stage ❹ composites per request, copying
colors/depth out before the next composite reuses the renderer's planes.

Equivalence: the grid interpolation and activations are per-point, so the
coalesced query computes exactly the per-request results; only the MLP
matmuls see a different batch extent, which can move the last ulp of a BLAS
reduction.  Coalesced and per-request renders therefore agree to reduction
tolerance, not bitwise — the differential tests pin that bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.nerf.cameras import RayBundle
from repro.nerf.pipeline import CullStage, RenderPipeline, SampleStage
from repro.utils.workspace import WorkspaceArena, arena_buffer

__all__ = ["CoalescedView", "DEFAULT_CHUNK_POINTS", "render_coalesced"]

#: Serving-side engine stream chunk (points per stage-❸b call) when the
#: config leaves ``max_chunk_points`` unset.  Rendering runs forward-only,
#: so chunking the field query is safe (no backward state is needed) and
#: keeps the fused engine's ``(8, L, chunk)`` planes and the MLP
#: activations inside the cache hierarchy — without it a many-request
#: coalesced block slows down super-linearly and batching loses to
#: per-request dispatch instead of beating it.
DEFAULT_CHUNK_POINTS = 4096


@dataclass
class CoalescedView:
    """One request's rendered rays, scattered back out of a coalesced pass."""

    colors: np.ndarray          # (n_rays, 3), owned copy
    depth: np.ndarray           # (n_rays,), owned copy
    n_rays: int
    n_samples: int
    n_queried: int              # this request's field queries after culling
    n_total: int                # dense rays x samples product


def _retain(arena: Optional[WorkspaceArena], name: str, source: np.ndarray,
            backend=None) -> np.ndarray:
    """Copy ``source`` into an arena buffer that survives later stage calls."""
    out = arena_buffer(arena, name, source.shape, source.dtype, backend=backend)
    out[...] = source
    return out


def render_coalesced(pipeline: RenderPipeline, bundles: Sequence[RayBundle],
                     arena: Optional[WorkspaceArena] = None,
                     chunk_points: Optional[int] = DEFAULT_CHUNK_POINTS
                     ) -> List[CoalescedView]:
    """Render several ray bundles of one scene through a single field query.

    ``pipeline`` must belong to the scene being rendered; ``arena`` holds
    the retained per-request blocks and the concatenated query block
    (typically the serving worker's arena — pass the pipeline's own arena
    only if nothing else interleaves with it).  Rendering is deterministic
    (no stratified jitter), matching evaluation renders.

    ``chunk_points`` streams the shared query ``chunk_points`` samples at a
    time (``None`` = one unchunked call).  Chunk boundaries are value-
    neutral up to BLAS reduction order — every op in the query is
    per-point/per-row — so results agree with per-request rendering to
    reduction tolerance either way.
    """
    if not bundles:
        return []
    backend = pipeline.backend
    dtype = pipeline.policy.dtype
    # Capacity is the dense upper bound, known before any stage runs — so
    # every request's stage-❸a compaction gathers straight into its slice
    # of the shared block instead of into a private buffer that would need
    # concatenating (a second full copy) afterwards.
    capacity = sum(bundle.n_rays for bundle in bundles) * pipeline.n_samples
    points_all = arena_buffer(arena, "serve/points_all", (capacity, 3),
                              dtype, backend=backend)
    dirs_all = arena_buffer(arena, "serve/dirs_all", (capacity, 3),
                            dtype, backend=backend)
    plans: List[CullStage] = []
    offsets = [0]
    for i, bundle in enumerate(bundles):
        sample = pipeline.stage_samples(bundle, rng=None)
        plan = pipeline.stage_cull(sample)
        # Everything the composite needs outlives the next request's stages
        # only if copied out of the pipeline's per-call buffers.
        t_vals = _retain(arena, f"serve/{i}/t_vals", sample.t_vals, backend)
        deltas = _retain(arena, f"serve/{i}/deltas", sample.deltas, backend)
        start = offsets[-1]
        stop = start + plan.n_queried
        idx = plan.idx
        if idx is None:
            points_all[start:stop] = sample.points_unit
            dirs_all[start:stop] = sample.dirs
        elif plan.n_queried:
            idx = _retain(arena, f"serve/{i}/idx", idx, backend)
            backend.gather(sample.points_unit, idx,
                           out=points_all[start:stop])
            backend.gather(sample.dirs, idx, out=dirs_all[start:stop])
        retained_sample = SampleStage(
            t_vals=t_vals, deltas=deltas,
            # The composite never reads the sample positions — they live
            # only in the shared query block.
            points_unit=None, dirs=None,
            n_rays=sample.n_rays, n_samples=sample.n_samples)
        plans.append(CullStage(sample=retained_sample, keep_flat=None,
                               idx=idx, n_queried=plan.n_queried))
        offsets.append(stop)

    total = offsets[-1]
    sigma_all = rgb_all = None
    if total:
        # The single engine stream all requests share (stage ❸b),
        # indifferent to where request boundaries fall: N part-filled
        # per-request queries become ceil(total / chunk_points) full
        # chunks.
        step = chunk_points if chunk_points is not None else total
        if step >= total:
            sigma_all, rgb_all = pipeline.stage_query(points_all[:total],
                                                      dirs_all[:total])
        else:
            for start in range(0, total, step):
                stop = min(start + step, total)
                sigma, rgb = pipeline.stage_query(points_all[start:stop],
                                                  dirs_all[start:stop])
                if sigma_all is None:
                    sigma_all = arena_buffer(arena, "serve/sigma_all",
                                             total, sigma.dtype,
                                             backend=backend)
                    rgb_all = arena_buffer(arena, "serve/rgb_all",
                                           (total, 3), rgb.dtype,
                                           backend=backend)
                sigma_all[start:stop] = sigma
                rgb_all[start:stop] = rgb

    views: List[CoalescedView] = []
    for plan, start, stop in zip(plans, offsets, offsets[1:]):
        sigma = sigma_all[start:stop] if stop > start else None
        rgb = rgb_all[start:stop] if stop > start else None
        render = pipeline.stage_composite(plan, sigma, rgb)
        # Copy out before the next composite reuses the renderer's planes.
        views.append(CoalescedView(
            colors=np.array(render.colors, copy=True),
            depth=np.array(render.depth, copy=True),
            n_rays=plan.sample.n_rays,
            n_samples=plan.sample.n_samples,
            n_queried=plan.n_queried,
            n_total=plan.sample.n_total,
        ))
    return views
