"""Scene residency: checkpoint-backed trainer eviction shared by fleet and service.

``max_resident_scenes`` bounds how many trainers (model + optimiser moments +
occupancy grid) are in memory at once; over-cap scenes are checkpointed to
one ``.npz`` file each and transparently restored on their next use — the
same preemption machinery :class:`~repro.training.fleet.SceneFleet` has
always used, extracted here so the multi-tenant
:class:`~repro.serving.service.SceneService` can share it.

:class:`ResidencyManager` owns the *mechanics* — building or restoring a
trainer, staleness-aware checkpoint saves, eviction accounting, and a
make-room pass that evicts before acquiring so peak residency never exceeds
the cap even transiently.  The *victim policy* is pluggable: the default is
LRU over :attr:`SceneSlot.last_used` (right for a service where request
recency is the only signal), while the fleet passes its cyclic
distance-to-next-turn key, the cyclic-access analogue of LRU.

Restores are validated (scene name and seed must match the checkpoint's
metadata) and bit-exact: a trainer evicted and re-acquired continues the
exact trajectory of one that stayed resident — the property the fleet's
differential tests enforce and the service inherits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets.dataset import SceneDataset
from repro.io import (CheckpointError, io_stats, load_trainer_checkpoint,
                      save_trainer_checkpoint)
from repro.reliability.faults import fault_point
from repro.training.trainer import Trainer, TrainingHistory

__all__ = ["ResidencyManager", "SceneSlot", "validate_scene_name"]


def validate_scene_name(name: str) -> None:
    """Reject names unusable as checkpoint file names.

    Names become checkpoint file names (``<name>.ckpt.npz``); path
    separators or relative components would escape the checkpoint directory.
    """
    if not name or name in (".", "..") or any(
            sep in name for sep in ("/", "\\", "\0")):
        raise ValueError(
            f"scene name {name!r} is not usable as a checkpoint "
            "file name (empty, relative, or contains a path "
            "separator)")


@dataclass(eq=False)
class SceneSlot:
    """Residency bookkeeping for one scene.

    ``trainer`` is ``None`` while the scene is evicted (or not yet started);
    ``history`` stays in memory across evictions — only the heavy model /
    optimiser / occupancy state is dropped.  ``on_disk`` records whether a
    checkpoint file exists that :meth:`ResidencyManager.acquire` should
    restore from rather than starting fresh.  ``last_used`` is the LRU
    clock tick of the slot's most recent acquire.
    """

    dataset: SceneDataset
    trainer: Optional[Trainer] = None
    history: Optional[TrainingHistory] = None
    on_disk: bool = False
    last_checkpoint_iteration: int = -1
    last_used: int = 0

    @property
    def name(self) -> str:
        return self.dataset.name

    @property
    def resident(self) -> bool:
        return self.trainer is not None


class ResidencyManager:
    """LRU checkpoint eviction of per-scene trainers under a residency cap.

    Parameters
    ----------
    config / seed:
        Shared training configuration and base seed — every trainer this
        manager builds or restores uses them, so an evict/re-acquire cycle
        reproduces the resident trajectory bit-exactly.
    checkpoint_dir:
        Directory for per-scene checkpoint files (``<scene>.ckpt.npz``),
        created on demand.  Required when ``max_resident_scenes`` is set.
    max_resident_scenes:
        Upper bound on simultaneously resident trainers.  ``None`` means
        unbounded (no eviction; the manager still tracks residency stats).
    keep_generations:
        Checkpoint generations retained per scene (``N > 1`` rotates the
        previous file to ``<scene>.ckpt.npz.g1`` etc. on save, enabling
        :func:`~repro.io.load_checkpoint`'s corruption fallback).

    The manager is not thread-safe by itself — the service serialises all
    calls behind one lock, and the fleet is single-threaded.
    """

    def __init__(self, config: Instant3DConfig, seed: int = 0,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 max_resident_scenes: Optional[int] = None,
                 keep_generations: int = 1):
        if max_resident_scenes is not None and max_resident_scenes < 1:
            raise ValueError("max_resident_scenes must be >= 1 or None")
        if max_resident_scenes is not None and checkpoint_dir is None:
            raise ValueError("max_resident_scenes requires a checkpoint_dir")
        self.config = config
        self.seed = int(seed)
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.max_resident_scenes = max_resident_scenes
        self.keep_generations = int(keep_generations)
        self._slots: Dict[str, SceneSlot] = {}
        self._clock = 0
        self._resident = 0
        #: Trainers checkpointed to disk and dropped from memory.
        self.evictions = 0
        #: High-water mark of simultaneously resident trainers.
        self.peak_resident = 0
        self.checkpoint_saves = 0
        self.checkpoint_loads = 0
        self.checkpoint_save_s = 0.0
        self.checkpoint_load_s = 0.0
        #: Restores served from an older generation after the primary
        #: checkpoint failed verification (see ``docs/reliability.md``).
        self.fallback_loads = 0

    # -- scene registry (service path) ---------------------------------------
    def add_scene(self, dataset: SceneDataset) -> SceneSlot:
        """Register a scene and return its slot (names must be unique)."""
        validate_scene_name(dataset.name)
        if dataset.name in self._slots:
            raise ValueError(
                f"duplicate scene name {dataset.name!r} — per-scene RNG "
                "streams are derived from the scene name, so duplicates "
                "would train on identical pixel/sample streams")
        slot = SceneSlot(dataset=dataset)
        if self.checkpoint_dir is not None:
            slot.on_disk = self.checkpoint_path(dataset.name).exists()
        self._slots[dataset.name] = slot
        return slot

    def slot(self, name: str) -> SceneSlot:
        try:
            return self._slots[name]
        except KeyError:
            raise ValueError(f"unknown scene {name!r} — registered scenes: "
                             f"{sorted(self._slots)}") from None

    @property
    def scene_names(self) -> List[str]:
        return list(self._slots)

    @property
    def resident_names(self) -> List[str]:
        return [name for name, slot in self._slots.items() if slot.resident]

    @property
    def n_resident(self) -> int:
        return self._resident

    # -- checkpoint plumbing --------------------------------------------------
    def checkpoint_path(self, scene_name: str) -> Path:
        """Checkpoint file for one scene (requires ``checkpoint_dir``)."""
        if self.checkpoint_dir is None:
            raise ValueError("this residency manager has no checkpoint_dir")
        return self.checkpoint_dir / f"{scene_name}.ckpt.npz"

    def save(self, slot: SceneSlot) -> None:
        """Checkpoint a resident slot (history included) and mark it clean."""
        start = time.perf_counter()
        save_trainer_checkpoint(
            self.checkpoint_path(slot.name), slot.trainer,
            history=slot.history, metadata={"seed": int(self.seed)},
            keep_generations=self.keep_generations)
        self.checkpoint_save_s += time.perf_counter() - start
        self.checkpoint_saves += 1
        slot.last_checkpoint_iteration = slot.trainer.iteration
        slot.on_disk = True

    def save_if_stale(self, slot: SceneSlot) -> None:
        """Checkpoint unless the file already holds the slot's iteration."""
        if slot.trainer is None:
            return
        if (not slot.on_disk
                or slot.trainer.iteration != slot.last_checkpoint_iteration):
            self.save(slot)

    # -- residency transitions ------------------------------------------------
    def acquire(self, slot: SceneSlot) -> Trainer:
        """Make the slot's trainer resident (build fresh or restore)."""
        self._clock += 1
        slot.last_used = self._clock
        if slot.trainer is not None:
            return slot.trainer
        trainer = Trainer(DecoupledRadianceField(self.config, seed=self.seed),
                          slot.dataset, config=self.config, seed=self.seed)
        if slot.on_disk:
            path = self.checkpoint_path(slot.name)
            start = time.perf_counter()
            fallbacks_before = io_stats().fallback_loads
            if slot.history is None:
                # Cross-process resume: the history lives in the checkpoint.
                slot.history = TrainingHistory()
                metadata = load_trainer_checkpoint(path, trainer,
                                                   history=slot.history)
            else:
                # Re-acquire after in-run eviction: the in-memory history is
                # already current, only the trainer state is restored.
                metadata = load_trainer_checkpoint(path, trainer)
            self.checkpoint_load_s += time.perf_counter() - start
            self.checkpoint_loads += 1
            self.fallback_loads += io_stats().fallback_loads - fallbacks_before
            if metadata.get("scene") != slot.name:
                raise CheckpointError(
                    f"checkpoint {path} was written for scene "
                    f"{metadata.get('scene')!r}, not {slot.name!r}")
            if metadata.get("seed") is not None and metadata["seed"] != self.seed:
                raise CheckpointError(
                    f"checkpoint {path} was written with seed "
                    f"{metadata['seed']}, this fleet/service uses seed "
                    f"{self.seed}")
            slot.last_checkpoint_iteration = trainer.iteration
        else:
            if slot.history is None:
                slot.history = TrainingHistory()
            slot.last_checkpoint_iteration = trainer.iteration
        slot.trainer = trainer
        self._resident += 1
        self.peak_resident = max(self.peak_resident, self._resident)
        return trainer

    def release(self, slot: SceneSlot) -> None:
        """Drop a resident trainer whose state is already safe (or final)."""
        if slot.trainer is not None:
            self._resident -= 1
        slot.trainer = None

    def evict(self, slot: SceneSlot,
              release: Optional[Callable[[SceneSlot], None]] = None) -> None:
        """Checkpoint a resident trainer to disk and drop it from memory.

        ``release`` substitutes the drop step (the fleet routes it through
        its own ``_release`` so residency spies observe both transitions).
        """
        if slot.trainer is None:
            return
        self.save_if_stale(slot)
        (release if release is not None else self.release)(slot)
        self.evictions += 1

    def make_room(self, incoming: SceneSlot,
                  candidates: Optional[Sequence[SceneSlot]] = None,
                  pinned: Iterable[str] = (),
                  victim_key: Optional[Callable[[SceneSlot], object]] = None,
                  evict: Optional[Callable[[SceneSlot], None]] = None) -> None:
        """Evict residents so acquiring ``incoming`` stays within the cap.

        Runs *before* the incoming trainer is built, so peak residency never
        exceeds ``max_resident_scenes`` — not even transiently.  Victims are
        the ``victim_key``-smallest residents (default: least recently
        used).  ``pinned`` names are never evicted (the service pins scenes
        a worker is actively executing on); with enough pinned scenes the
        cap can be transiently exceeded, by design — correctness over
        strictness when workers outnumber the cap.
        """
        cap = self.max_resident_scenes
        if cap is None or incoming.resident:
            return
        pool = list(self._slots.values()) if candidates is None else list(candidates)
        pinned = set(pinned)
        n_resident = sum(1 for slot in pool if slot.resident)
        excess = n_resident - (cap - 1)
        if excess <= 0:
            return
        evictable = [slot for slot in pool
                     if slot.resident and slot is not incoming
                     and slot.name not in pinned]
        key = victim_key if victim_key is not None else (lambda s: s.last_used)
        victims = sorted(evictable, key=key)[:excess]
        for victim in victims:
            (evict if evict is not None else self.evict)(victim)

    def checkout(self, name: str, pinned: Iterable[str] = ()) -> SceneSlot:
        """Make a registered scene resident, evicting LRU scenes as needed."""
        fault_point("residency.checkout")
        slot = self.slot(name)
        self.make_room(slot, pinned=pinned)
        self.acquire(slot)
        return slot

    def flush(self, save: Optional[bool] = None) -> None:
        """Release every registered resident slot (checkpointing by default).

        ``save=None`` saves exactly when a ``checkpoint_dir`` is configured;
        ``save=False`` drops state without persisting (shutdown of a
        checkpoint-less service).
        """
        if save is None:
            save = self.checkpoint_dir is not None
        for slot in self._slots.values():
            if not slot.resident:
                continue
            if save:
                self.save_if_stale(slot)
            self.release(slot)

    # -- accounting -----------------------------------------------------------
    def reset_window(self) -> None:
        """Start a fresh peak-residency window (no slots counted resident).

        The fleet builds a fresh slot list per run and discards the previous
        one, so its manager's residency count restarts from zero each run.
        """
        self._resident = 0
        self.peak_resident = 0

    def stats(self) -> Dict[str, float]:
        """JSON-able residency/eviction counters."""
        return {
            "evictions": float(self.evictions),
            "peak_resident_scenes": float(self.peak_resident),
            "n_resident": float(self._resident),
            "checkpoint_saves": float(self.checkpoint_saves),
            "checkpoint_loads": float(self.checkpoint_loads),
            "checkpoint_save_ms": 1e3 * self.checkpoint_save_s,
            "checkpoint_load_ms": 1e3 * self.checkpoint_load_s,
            "fallback_loads": float(self.fallback_loads),
        }

    def health_stats(self) -> Dict[str, float]:
        """Numerical-health counters summed over every scene's history.

        Histories live on the slots and survive eviction, so the sums
        cover evicted scenes too — no trainer needs re-materialising.
        """
        totals = {"guard_trips": 0, "rollbacks": 0,
                  "lr_backoffs": 0, "batch_skips": 0}
        for slot in self._slots.values():
            if slot.history is None:  # slot created but never acquired
                continue
            for name in totals:
                totals[name] += getattr(slot.history, name)
        return {name: float(value) for name, value in totals.items()}
