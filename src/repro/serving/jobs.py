"""The serving request model: render / fine-tune jobs and their handles.

A job names a scene and carries scheduling metadata; the
:class:`~repro.serving.service.SceneService` queue orders ready jobs by
``(priority, deadline, arrival)`` — lower priority value first (unix-nice
convention), then earliest deadline, then submission order.  Deadlines are
**enforced** by default: a job whose deadline already passed when a worker
would dequeue it is *shed* — failed with :class:`DeadlineExceeded` without
running — so an overloaded service stops burning compute on answers nobody
can use.  With ``SceneService(shed_expired=False)`` deadlines revert to the
soft contract: a late job still runs and the miss is only counted (in the
service stats and per job on its result).

Clients hold a :class:`JobHandle` — a minimal future.  ``result()`` blocks
until a worker finishes the job and re-raises any worker-side exception in
the client thread.  ``cancel()`` withdraws a job that is still queued.
Failed jobs may be retried by the service's
:class:`~repro.reliability.retry.RetryPolicy` before the handle resolves;
``attempts`` / ``not_before`` / ``solo`` are the retry bookkeeping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.nerf.cameras import PinholeCamera

__all__ = [
    "DeadlineExceeded",
    "JobCancelled",
    "JobHandle",
    "JobPoisoned",
    "QueueFull",
    "RenderJob",
    "RenderResult",
    "TrainJob",
    "TrainResult",
]


class JobCancelled(RuntimeError):
    """Raised from :meth:`JobHandle.result` when the service shut down —
    or the client cancelled the job — before it ran."""


class DeadlineExceeded(RuntimeError):
    """The job's deadline had already passed when a worker went to run it,
    so the service shed it without executing (``shed_expired=True``)."""


class QueueFull(RuntimeError):
    """Raised by :meth:`~repro.serving.service.SceneService.submit` when
    ``max_queue_depth`` admission control rejects a new job."""


class JobPoisoned(RuntimeError):
    """The job failed (or crashed its worker) on every permitted attempt
    and was quarantined instead of being retried again.  The last
    underlying error is chained as ``__cause__``."""


@dataclass
class RenderJob:
    """Render one view of a scene.

    ``camera=None`` renders the scene's first test view.  ``n_samples``
    overrides the service's per-ray sample count for this job only (jobs
    with different sample counts are never coalesced together).
    """

    scene: str
    camera: Optional[PinholeCamera] = None
    n_samples: Optional[int] = None
    priority: int = 0
    deadline_s: Optional[float] = None    # seconds after submit; expired
                                          # jobs are shed by default

    kind = "render"


@dataclass
class TrainJob:
    """Advance a scene's trainer by ``n_steps`` iterations.

    Training consumes the scene's own RNG streams, so any interleaving of
    train jobs (and renders, which draw no training randomness) reproduces
    the solo :class:`~repro.training.trainer.Trainer` trajectory exactly.
    """

    scene: str
    n_steps: int = 1
    priority: int = 0
    deadline_s: Optional[float] = None

    kind = "train"


@dataclass
class RenderResult:
    """One rendered view plus its serving accounting."""

    scene: str
    colors: np.ndarray            # (H, W, 3) clipped to [0, 1]
    depth: np.ndarray             # (H, W)
    n_rays: int
    n_queried: int                # field queries after occupancy culling
    batch_size: int               # requests coalesced into this engine stream
    queued_ms: float              # submit → dequeue
    service_ms: float             # submit → completion
    deadline_missed: bool = False


@dataclass
class TrainResult:
    """Outcome of one fine-tune job."""

    scene: str
    iteration: int                # trainer iteration after the job
    losses: List[float]           # per-step losses of this job's slice
    queued_ms: float
    service_ms: float
    deadline_missed: bool = False


@dataclass
class JobHandle:
    """Minimal future for one submitted job.

    ``camera`` / ``n_rays`` are resolved by the service at submit time for
    render jobs (default cameras filled in, ray counts precomputed so the
    coalescer can respect its ray budget without touching job payloads).
    """

    job: object
    seq: int
    submitted_at: float
    camera: Optional[PinholeCamera] = None
    n_rays: int = 0
    #: executions so far (bumped on each failure; retries keep the handle).
    attempts: int = 0
    #: earliest dequeue time (perf_counter) — the retry backoff clock.
    not_before: float = 0.0
    #: re-queued batch-mates run individually, never coalesced again.
    solo: bool = False
    #: first-attempt targets so a retried train job runs exactly the
    #: remaining steps (bit-exact continuation).
    target_iteration: Optional[int] = field(default=None, repr=False)
    history_before: Optional[int] = field(default=None, repr=False)
    _event: threading.Event = field(default_factory=threading.Event, repr=False)
    _result: object = field(default=None, repr=False)
    _error: Optional[BaseException] = field(default=None, repr=False)
    _canceller: Optional[Callable[["JobHandle"], bool]] = field(
        default=None, repr=False)

    def done(self) -> bool:
        return self._event.is_set()

    def cancel(self) -> bool:
        """Withdraw the job if it is still queued.

        Returns True when the job was removed from the queue (``result()``
        then raises :class:`JobCancelled`).  Cancelling a job that is
        already running, finished, or being retried in-flight is a no-op
        returning False — in-flight work is never interrupted.
        """
        if self._canceller is None or self.done():
            return False
        return self._canceller(self)

    def result(self, timeout: Optional[float] = None):
        """Block until the job finished; re-raise worker-side errors."""
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"job {self.seq} ({getattr(self.job, 'kind', '?')} of scene "
                f"{getattr(self.job, 'scene', '?')!r}) did not complete "
                f"within {timeout}s")
        if self._error is not None:
            raise self._error
        return self._result

    # -- worker side ----------------------------------------------------------
    def _finish(self, result) -> None:
        self._result = result
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def sort_key(self) -> Tuple:
        job = self.job
        deadline = getattr(job, "deadline_s", None)
        absolute = (self.submitted_at + deadline if deadline is not None
                    else float("inf"))
        return (getattr(job, "priority", 0), absolute, self.seq)

    def expired(self, now: float) -> bool:
        """True when the job's absolute deadline lies in the past."""
        deadline = getattr(self.job, "deadline_s", None)
        return deadline is not None and now > self.submitted_at + deadline
