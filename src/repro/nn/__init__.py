"""A tiny NumPy neural-network library with explicit forward/backward passes.

Instant-NGP-style NeRF training only needs very small fully-connected
networks (3 layers x 64 hidden units), so instead of depending on a deep
learning framework the reproduction implements the required pieces directly:

* :class:`~repro.nn.parameter.Parameter` — a named tensor with a gradient
  accumulator.
* :class:`~repro.nn.layers.Linear` and the activations in
  :mod:`repro.nn.activations` — modules with ``forward``/``backward``.
* :class:`~repro.nn.mlp.MLP` — a sequential container used for both the
  density and color heads.
* :class:`~repro.nn.optim.Adam` / :class:`~repro.nn.optim.SGD` — optimisers
  that consume the accumulated gradients.
* :func:`~repro.nn.gradcheck.numerical_gradient` — finite-difference helper
  used by the test-suite to validate every backward pass.

The forward methods cache whatever the matching backward pass needs, and
``backward`` both returns the gradient with respect to the input and
accumulates parameter gradients, mirroring the structure of the CUDA kernels
the paper profiles.
"""

from repro.nn.parameter import Parameter, SparseGrad
from repro.nn.layers import Linear
from repro.nn.activations import ReLU, Sigmoid, TruncatedExp, Identity, Softplus
from repro.nn.mlp import MLP
from repro.nn.optim import SGD, Adam
from repro.nn.gradcheck import numerical_gradient

__all__ = [
    "Parameter",
    "SparseGrad",
    "Linear",
    "ReLU",
    "Sigmoid",
    "TruncatedExp",
    "Softplus",
    "Identity",
    "MLP",
    "SGD",
    "Adam",
    "numerical_gradient",
]
