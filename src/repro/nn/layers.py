"""Fully-connected layer with explicit forward/backward.

Compute is float32 under **both** precision policies — parameters are stored
float32 (mirroring the reference implementation's FP16/FP32 mixed precision)
and the matmuls run at storage precision.  What the precision policy buys
the MLP stack is *dtype discipline*: under the float32 policy every caller
hands the layer float32 activations and gradients, so the defensive
``np.asarray`` casts below are no-ops instead of silent full-batch copies.
The :attr:`Linear.conversions` counter records every such silent copy; the
dtype-discipline test asserts it stays at zero across a float32-policy
training step.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.nn.parameter import Parameter
from repro.utils.workspace import WorkspaceArena, arena_buffer


class Linear:
    """Affine layer ``y = x @ W + b`` with cached activations for backward.

    Weights are initialised with the He/Kaiming-uniform scheme that the
    tiny-cuda-nn MLPs in Instant-NGP use, which keeps activations well scaled
    for the ReLU networks in the color/density heads.
    """

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator, bias: bool = True,
                 name: str = "linear", backend: BackendLike = None):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.backend = resolve_backend(backend)
        bound = np.sqrt(6.0 / in_features)
        weight = rng.uniform(-bound, bound, size=(in_features, out_features))
        self.weight = Parameter(weight, name=f"{name}.weight",
                                backend=self.backend)
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(np.zeros(out_features), name=f"{name}.bias",
                                  backend=self.backend)
        self._cached_input: Optional[np.ndarray] = None
        self.arena: Optional[WorkspaceArena] = None
        #: Silent dtype conversions (full-batch copies) performed on inputs
        #: or gradients that arrived in a non-float32 dtype.
        self.conversions = 0

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        self.arena = arena

    def set_backend(self, backend: BackendLike) -> None:
        self.backend = resolve_backend(backend)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the affine map and cache the input for backward."""
        # Backend capability query (not an isinstance-ndarray check): a
        # non-numpy backend's native arrays must not silently round-trip
        # through a dense host conversion.
        if not self.backend.is_native_f32(x):
            self.conversions += 1
            x = self.backend.asarray(x, np.float32)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected input of shape (N, {self.in_features}), got {x.shape}"
            )
        self._cached_input = x
        out = arena_buffer(self.arena, f"{self.name}/out",
                           (x.shape[0], self.out_features), np.float32,
                           backend=self.backend)
        self.backend.matmul(x, self.weight.data, out=out)
        if self.bias is not None:
            out += self.bias.data
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter gradients and return the input gradient."""
        if self._cached_input is None:
            raise RuntimeError("backward called before forward")
        if not self.backend.is_native_f32(grad_out):
            self.conversions += 1
            grad_out = self.backend.asarray(grad_out, np.float32)
        x = self._cached_input
        self.weight.accumulate_grad(self.backend.matmul(x.T, grad_out))
        if self.bias is not None:
            self.bias.accumulate_grad(grad_out.sum(axis=0))
        grad_in = arena_buffer(self.arena, f"{self.name}/grad_in",
                               (grad_out.shape[0], self.in_features),
                               np.float32, backend=self.backend)
        self.backend.matmul(grad_out, self.weight.data.T, out=grad_in)
        return grad_in

    def parameters(self) -> List[Parameter]:
        params = [self.weight]
        if self.bias is not None:
            params.append(self.bias)
        return params

    @property
    def flops_per_sample(self) -> int:
        """Multiply-accumulate FLOPs for a single input row (2 per MAC)."""
        flops = 2 * self.in_features * self.out_features
        if self.bias is not None:
            flops += self.out_features
        return flops
