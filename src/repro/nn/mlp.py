"""Sequential multilayer perceptron container."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

from repro.nn.activations import Identity, ReLU, _Activation
from repro.nn.layers import Linear
from repro.nn.parameter import Parameter


class MLP:
    """A small fully-connected network built from Linear + activation pairs.

    Instant-NGP replaces the 10-layer/256-unit vanilla-NeRF MLP with
    3-layer/64-unit heads; :class:`MLP` covers both by taking an arbitrary
    list of hidden widths.  ``output_activation`` defaults to identity so
    heads can apply their own non-linearity (sigmoid for color, truncated
    exponential for density).
    """

    def __init__(self, in_features: int, hidden_features: Sequence[int],
                 out_features: int, rng: np.random.Generator,
                 hidden_activation=ReLU, output_activation=Identity,
                 name: str = "mlp"):
        self.in_features = in_features
        self.out_features = out_features
        self.layers: List = []
        widths = [in_features, *hidden_features, out_features]
        for i, (w_in, w_out) in enumerate(zip(widths[:-1], widths[1:])):
            self.layers.append(
                Linear(w_in, w_out, rng=rng, name=f"{name}.linear{i}")
            )
            is_last = i == len(widths) - 2
            activation = output_activation() if is_last else hidden_activation()
            if not isinstance(activation, _Activation):
                raise TypeError("activations must derive from _Activation")
            self.layers.append(activation)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network; each layer caches state for the backward pass."""
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_out`` and return the input gradient."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for layer in self.layers:
            params.extend(layer.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of every layer parameter, in layer order."""
        return {"parameters": [p.state_dict() for p in self.parameters()]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into an identically shaped network."""
        params = self.parameters()
        stored = state["parameters"]
        if len(stored) != len(params):
            raise ValueError(
                f"checkpoint has {len(stored)} parameters, network has "
                f"{len(params)}")
        for param, entry in zip(params, stored):
            param.load_state_dict(entry)

    @property
    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    @property
    def flops_per_sample(self) -> int:
        """FLOPs to evaluate one input row (forward pass only)."""
        return sum(layer.flops_per_sample for layer in self.layers)
