"""Sequential multilayer perceptron container."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.nn.activations import Identity, ReLU, _Activation
from repro.nn.layers import Linear
from repro.nn.parameter import Parameter
from repro.utils.precision import PolicyLike
from repro.utils.workspace import WorkspaceArena


class MLP:
    """A small fully-connected network built from Linear + activation pairs.

    Instant-NGP replaces the 10-layer/256-unit vanilla-NeRF MLP with
    3-layer/64-unit heads; :class:`MLP` covers both by taking an arbitrary
    list of hidden widths.  ``output_activation`` defaults to identity so
    heads can apply their own non-linearity (sigmoid for color, truncated
    exponential for density).
    """

    def __init__(self, in_features: int, hidden_features: Sequence[int],
                 out_features: int, rng: np.random.Generator,
                 hidden_activation=ReLU, output_activation=Identity,
                 name: str = "mlp", backend: BackendLike = None):
        self.in_features = in_features
        self.out_features = out_features
        self.name = name
        self.backend = resolve_backend(backend)
        self.layers: List = []
        widths = [in_features, *hidden_features, out_features]
        for i, (w_in, w_out) in enumerate(zip(widths[:-1], widths[1:])):
            self.layers.append(
                Linear(w_in, w_out, rng=rng, name=f"{name}.linear{i}",
                       backend=self.backend)
            )
            is_last = i == len(widths) - 2
            activation = output_activation() if is_last else hidden_activation()
            if not isinstance(activation, _Activation):
                raise TypeError("activations must derive from _Activation")
            activation.name = f"{name}.act{i}"
            activation.set_backend(self.backend)
            self.layers.append(activation)
        # The layer stack is fixed after construction, so the parameter list
        # is built once instead of re-concatenated per zero_grad/step.
        self._params: List[Parameter] = []
        for layer in self.layers:
            self._params.extend(layer.parameters())
        self._num_parameters = sum(p.size for p in self._params)

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        """Thread a workspace arena through every layer and activation."""
        for layer in self.layers:
            layer.set_arena(arena)

    def set_backend(self, backend: BackendLike) -> None:
        """Re-point every layer and activation at another array backend."""
        self.backend = resolve_backend(backend)
        for layer in self.layers:
            layer.set_backend(self.backend)

    def set_policy(self, policy: PolicyLike) -> None:
        """Set the compute-precision policy of the activations.

        Linear compute stays float32 under both policies (storage
        precision); only dtype-sensitive activations (e.g. the sigmoid's
        exponent) follow the policy.
        """
        for layer in self.layers:
            if isinstance(layer, _Activation):
                layer.set_policy(policy)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network; each layer caches state for the backward pass."""
        out = x
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_out`` and return the input gradient."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> List[Parameter]:
        """All layer parameters in layer order (cached list — do not mutate)."""
        return self._params

    def zero_grad(self) -> None:
        for param in self._params:
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of every layer parameter, in layer order."""
        return {"parameters": [p.state_dict() for p in self.parameters()]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into an identically shaped network."""
        params = self.parameters()
        stored = state["parameters"]
        if len(stored) != len(params):
            raise ValueError(
                f"checkpoint has {len(stored)} parameters, network has "
                f"{len(params)}")
        for param, entry in zip(params, stored):
            param.load_state_dict(entry)

    @property
    def num_parameters(self) -> int:
        return self._num_parameters

    @property
    def flops_per_sample(self) -> int:
        """FLOPs to evaluate one input row (forward pass only)."""
        return sum(layer.flops_per_sample for layer in self.layers)
