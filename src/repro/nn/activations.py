"""Pointwise activation modules.

Each activation caches what its backward pass needs.  ``TruncatedExp`` is the
clamped exponential Instant-NGP uses to map the raw density-head output to a
non-negative volumetric density with bounded gradients.

Activations participate in the compute-precision policy and the workspace
arena: under the float64 reference policy (the default) every op sequence is
value-identical to the pre-policy implementation — ``Sigmoid`` still runs
its exponent in float64 — while the float32 policy keeps the whole chain in
single precision.  With an arena attached the per-batch outputs, masks and
backward products come from named reusable buffers, so steady-state
iterations allocate nothing here.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.nn.parameter import Parameter
from repro.utils.precision import PrecisionPolicy, resolve_policy
from repro.utils.workspace import WorkspaceArena, arena_buffer


class _Activation:
    """Base class: parameter-free module with cached forward state.

    Activation arithmetic is pointwise and runs through the numpy ufunc
    protocol on whatever arrays the backend hands in; the backend seam here
    covers buffer *allocation* (``_buf``) so outputs/masks live on the
    owning backend when no arena is attached.
    """

    #: Arena used for per-batch buffers (None = allocate fresh arrays).
    arena: Optional[WorkspaceArena] = None
    #: Unique buffer-name prefix inside the arena (set via :meth:`set_arena`).
    name: Optional[str] = None
    #: Compute-precision policy (float64 reference by default).
    policy: PrecisionPolicy = resolve_policy(None)
    #: Array backend owning this activation's buffers (None = process default,
    #: resolved lazily in ``_buf`` / ``set_backend``).
    backend = None

    def set_arena(self, arena: Optional[WorkspaceArena],
                  name: Optional[str] = None) -> None:
        """Attach a workspace arena (and a stable buffer-name prefix)."""
        self.arena = arena
        if name is not None:
            self.name = name

    def set_policy(self, policy) -> None:
        self.policy = resolve_policy(policy)

    def set_backend(self, backend: BackendLike) -> None:
        self.backend = resolve_backend(backend)

    def _buf(self, key: str, shape, dtype) -> np.ndarray:
        prefix = self.name if self.name is not None else f"act@{id(self):x}"
        return arena_buffer(self.arena, f"{prefix}/{key}", shape, dtype,
                            backend=self.backend)

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    @property
    def flops_per_sample(self) -> int:
        return 0


class Identity(_Activation):
    """Pass-through activation (used for the final layer of heads)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.asarray(grad_out, dtype=np.float32)


class ReLU(_Activation):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        mask = self._buf("mask", x.shape, bool)
        np.greater(x, 0, out=mask)
        self._mask = mask
        # x * mask matches np.where(mask, x, 0) exactly for finite inputs.
        out = self._buf("out", x.shape, np.float32)
        np.multiply(x, mask, out=out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        grad_out = np.asarray(grad_out, dtype=np.float32)
        grad_in = self._buf("grad_in", grad_out.shape, np.float32)
        np.multiply(grad_out, self._mask, out=grad_in)
        return grad_in


class Sigmoid(_Activation):
    """Logistic sigmoid, used to map the color head output into [0, 1].

    The exponent runs in the policy's compute dtype — float64 under the
    reference policy (the original behaviour), float32 under the fast path —
    and the cached output is float32 under both.
    """

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        t = self._buf("t", np.shape(x), self.policy.dtype)
        np.clip(x, -30.0, 30.0, out=t)
        np.negative(t, out=t)
        np.exp(t, out=t)
        np.add(t, 1.0, out=t)
        np.divide(1.0, t, out=t)
        out = self._buf("out", t.shape, np.float32)
        np.copyto(out, t, casting="same_kind")
        self._out = out
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        one_minus = self._buf("one_minus", self._out.shape, np.float32)
        np.subtract(1.0, self._out, out=one_minus)
        grad_in = self._buf("grad_in", self._out.shape, np.float32)
        np.multiply(np.asarray(grad_out, dtype=np.float32), self._out,
                    out=grad_in)
        np.multiply(grad_in, one_minus, out=grad_in)
        return grad_in


class TruncatedExp(_Activation):
    """Exponential with clamped input, the density activation of Instant-NGP.

    The input is clamped to ``[-clamp, clamp]`` in the backward pass so a few
    outlier samples cannot blow up the hash-grid gradients; the forward pass
    clamps as well to keep densities finite.
    """

    def __init__(self, clamp: float = 15.0) -> None:
        self.clamp = float(clamp)
        self._clamped_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        clamped = self._buf("clamped", x.shape, np.float32)
        np.clip(x, -self.clamp, self.clamp, out=clamped)
        self._clamped_input = clamped
        out = self._buf("out", x.shape, np.float32)
        np.exp(clamped, out=out)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._clamped_input is None:
            raise RuntimeError("backward called before forward")
        grad_in = self._buf("grad_in", self._clamped_input.shape, np.float32)
        np.exp(self._clamped_input, out=grad_in)
        np.multiply(np.asarray(grad_out, dtype=np.float32), grad_in,
                    out=grad_in)
        return grad_in


class Softplus(_Activation):
    """Numerically-stable softplus, an alternative density activation."""

    def __init__(self, beta: float = 1.0) -> None:
        self.beta = float(beta)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input = x
        out = np.logaddexp(0.0, self.beta * x) / self.beta
        return out.astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.beta * self._input, -30.0, 30.0)))
        return (grad_out * sig).astype(np.float32)
