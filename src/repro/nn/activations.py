"""Pointwise activation modules.

Each activation caches what its backward pass needs.  ``TruncatedExp`` is the
clamped exponential Instant-NGP uses to map the raw density-head output to a
non-negative volumetric density with bounded gradients.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.nn.parameter import Parameter


class _Activation:
    """Base class: parameter-free module with cached forward state."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def parameters(self) -> List[Parameter]:
        return []

    @property
    def flops_per_sample(self) -> int:
        return 0


class Identity(_Activation):
    """Pass-through activation (used for the final layer of heads)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x, dtype=np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return np.asarray(grad_out, dtype=np.float32)


class ReLU(_Activation):
    """Rectified linear unit."""

    def __init__(self) -> None:
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0).astype(np.float32)


class Sigmoid(_Activation):
    """Logistic sigmoid, used to map the color head output into [0, 1]."""

    def __init__(self) -> None:
        self._out: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))
        self._out = out.astype(np.float32)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        return (grad_out * self._out * (1.0 - self._out)).astype(np.float32)


class TruncatedExp(_Activation):
    """Exponential with clamped input, the density activation of Instant-NGP.

    The input is clamped to ``[-clamp, clamp]`` in the backward pass so a few
    outlier samples cannot blow up the hash-grid gradients; the forward pass
    clamps as well to keep densities finite.
    """

    def __init__(self, clamp: float = 15.0) -> None:
        self.clamp = float(clamp)
        self._clamped_input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float32)
        clamped = np.clip(x, -self.clamp, self.clamp)
        self._clamped_input = clamped
        return np.exp(clamped).astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._clamped_input is None:
            raise RuntimeError("backward called before forward")
        return (grad_out * np.exp(self._clamped_input)).astype(np.float32)


class Softplus(_Activation):
    """Numerically-stable softplus, an alternative density activation."""

    def __init__(self, beta: float = 1.0) -> None:
        self.beta = float(beta)
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        self._input = x
        out = np.logaddexp(0.0, self.beta * x) / self.beta
        return out.astype(np.float32)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.beta * self._input, -30.0, 30.0)))
        return (grad_out * sig).astype(np.float32)
