"""Finite-difference gradient checking used by the test-suite.

Because every backward pass in this library is hand-derived, the tests verify
them against central finite differences.  The helper works on any scalar
function of a NumPy array.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       eps: float = 1e-4) -> np.ndarray:
    """Central-difference gradient of a scalar function ``fn`` at ``x``.

    ``fn`` must not mutate its argument.  The computation is O(2 * x.size)
    function evaluations, so callers should keep ``x`` small.
    """
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        f_plus = float(fn(x))
        x[idx] = original - eps
        f_minus = float(fn(x))
        x[idx] = original
        grad[idx] = (f_plus - f_minus) / (2.0 * eps)
        it.iternext()
    return grad
