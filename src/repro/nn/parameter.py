"""Trainable parameter container (dense gradients, optional row-sparse slot)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend


@dataclass
class SparseGrad:
    """A compacted row-sparse (COO) gradient of a 2-D table parameter.

    ``rows`` holds the touched row indices, **sorted and unique**, and
    ``values`` the accumulated gradient of each touched row — exactly the
    ``(unique_addresses, accumulated_grads)`` pair the hash-grid backward
    emits after deduplicating its scatter trace.  Rows whose accumulated
    float32 gradient is entirely zero are filtered out at emission, so the
    row set is identical to ``np.flatnonzero(np.any(dense_grad != 0, -1))``
    of the equivalent dense gradient table.

    The arrays may be views into a :class:`~repro.utils.workspace`
    arena — valid until the producing site runs again (i.e. for exactly one
    optimiser step, the natural lifetime of a gradient).
    """

    rows: np.ndarray       # (U,) integer row indices, sorted unique
    values: np.ndarray     # (U, F) float32 accumulated gradients

    @property
    def n_rows(self) -> int:
        return int(self.rows.size)


class Parameter:
    """A named trainable tensor with a gradient accumulator.

    The library uses float32 data throughout to mirror the FP16/FP32 mixed
    precision of the reference CUDA implementation while keeping NumPy
    numerics stable.

    Sparse-update support (the hash-grid tables under
    ``Instant3DConfig(sparse_updates=True)``) adds two attributes:

    ``sparse``
        The optimiser applies **touched-rows-only lazy updates** to this
        parameter: rows with a gradient receive the full moment +
        bias-correction update, untouched rows' moment decay is deferred
        (closed-form ``beta**k`` catch-up on next touch).  This mirrors the
        accelerator's backward-update-merging unit, which only ever writes
        touched hash-table entries back to SRAM.
    ``coo_grads``
        Gradients arrive exclusively through :meth:`add_sparse_grad`; the
        dense ``grad`` array is never written and must stay all-zero.
        :meth:`zero_grad` then skips the dense O(table) clear — part of what
        makes the sparse path fast.  A ``sparse`` parameter with
        ``coo_grads=False`` is the *dense-representation oracle*: gradients
        live in ``grad`` and the optimiser derives the touched rows from its
        non-zero rows (bit-identical semantics, dense cost).
    """

    def __init__(self, data: np.ndarray, name: str = "param",
                 backend: BackendLike = None):
        # Storage lives on the owning backend (capability-queried, never
        # isinstance-assumed numpy), so a non-numpy backend's parameters
        # stay native end-to-end.
        self.backend = resolve_backend(backend)
        self.data = self.backend.asarray(data, np.float32)
        self.grad = self.backend.zeros(self.data.shape, np.float32)
        self.name = name
        #: Optimiser applies row-sparse lazy updates (see class docstring).
        self.sparse = False
        #: Gradients arrive only via :meth:`add_sparse_grad` (dense ``grad``
        #: stays zero and is not cleared per step).
        self.coo_grads = False
        #: The current row-sparse gradient, or ``None`` (cleared per step).
        self.sparse_grad: Optional[SparseGrad] = None

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient (dense and sparse) in place.

        In COO mode the dense array is known to be all-zero (nothing ever
        writes it), so only the sparse slot is dropped — O(1) instead of an
        O(table) memset per step.
        """
        self.sparse_grad = None
        if not self.coo_grads:
            self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the dense accumulator (shape-checked)."""
        if self.coo_grads:
            raise RuntimeError(
                f"parameter {self.name} receives COO gradients; dense "
                f"accumulation would break the all-zero dense-grad invariant")
        if not self.backend.is_native_f32(grad):
            grad = self.backend.asarray(grad, np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        self.grad += grad

    def add_sparse_grad(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Attach (or merge) a compacted row-sparse gradient.

        ``rows`` must be sorted unique row indices into ``data``'s leading
        axis and ``values`` the matching ``(U, F)`` float32 accumulated
        gradients.  A second call before :meth:`zero_grad` merges by
        summation (the sparse analogue of ``grad +=``); the common
        one-backward-per-step path stores the arrays as-is, without copying.
        """
        if rows.ndim != 1 or values.ndim != self.data.ndim:
            raise ValueError(
                f"sparse gradient for {self.name} must be (U,) rows and "
                f"(U, F) values, got {rows.shape} / {values.shape}")
        if values.shape[0] != rows.shape[0] or (
                values.shape[1:] != self.data.shape[1:]):
            raise ValueError(
                f"sparse gradient values {values.shape} do not match "
                f"parameter {self.name} rows {rows.shape} / feature shape "
                f"{self.data.shape[1:]}")
        if self.sparse_grad is None:
            self.sparse_grad = SparseGrad(rows=rows, values=values)
            return
        # Merge path (rare: two backward passes without zero_grad): combine
        # the two sorted COO pairs into a fresh (owned) pair.
        merged_rows = np.union1d(self.sparse_grad.rows, rows)
        merged_vals = np.zeros((merged_rows.size,) + self.data.shape[1:],
                               dtype=np.float32)
        old_pos = np.searchsorted(merged_rows, self.sparse_grad.rows)
        merged_vals[old_pos] += self.sparse_grad.values
        new_pos = np.searchsorted(merged_rows, rows)
        merged_vals[new_pos] += values
        self.sparse_grad = SparseGrad(rows=merged_rows, values=merged_vals)

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of the parameter (name + data).

        Gradients are transient (the trainer zeroes them at the start of
        every backward pass), so only the data tensor is captured.
        """
        return {"name": self.name, "data": self.data.copy()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` in place (the array object is kept,
        so optimisers and layers holding references stay valid)."""
        name = state.get("name")
        if name is not None and name != self.name:
            raise ValueError(
                f"checkpoint parameter name {name!r} does not match {self.name!r}")
        data = self.backend.asarray(state["data"], np.float32)
        if data.shape != self.data.shape:
            raise ValueError(
                f"checkpoint shape {data.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}")
        self.data[...] = data
        self.sparse_grad = None
        if not self.coo_grads:
            self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
