"""Trainable parameter container."""

from __future__ import annotations

from typing import Any, Dict

import numpy as np


class Parameter:
    """A named trainable tensor with a gradient accumulator.

    The library uses float32 data throughout to mirror the FP16/FP32 mixed
    precision of the reference CUDA implementation while keeping NumPy
    numerics stable.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulator (shape-checked)."""
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        self.grad += grad

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of the parameter (name + data).

        Gradients are transient (the trainer zeroes them at the start of
        every backward pass), so only the data tensor is captured.
        """
        return {"name": self.name, "data": self.data.copy()}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` in place (the array object is kept,
        so optimisers and layers holding references stay valid)."""
        name = state.get("name")
        if name is not None and name != self.name:
            raise ValueError(
                f"checkpoint parameter name {name!r} does not match {self.name!r}")
        data = np.asarray(state["data"], dtype=np.float32)
        if data.shape != self.data.shape:
            raise ValueError(
                f"checkpoint shape {data.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}")
        self.data[...] = data
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
