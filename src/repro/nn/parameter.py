"""Trainable parameter container."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A named trainable tensor with a gradient accumulator.

    The library uses float32 data throughout to mirror the FP16/FP32 mixed
    precision of the reference CUDA implementation while keeping NumPy
    numerics stable.
    """

    def __init__(self, data: np.ndarray, name: str = "param"):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add ``grad`` into the accumulator (shape-checked)."""
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"{self.name} shape {self.data.shape}"
            )
        self.grad += grad

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
