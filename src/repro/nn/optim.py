"""Gradient-descent optimisers operating on :class:`~repro.nn.parameter.Parameter`.

Per-parameter state (momentum velocities, Adam moments) is keyed by the
parameter's *index* in ``self.parameters`` rather than by ``id(param)``:
CPython reuses object ids after garbage collection, so identity keys can
silently alias one parameter's state onto an unrelated parameter that
happens to be allocated at the same address — and identity keys cannot
round-trip through a checkpoint.  Index keys are stable, collision-free and
serialisable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


def _load_indexed_state(slots: Dict[int, np.ndarray], stored: Dict[str, Any],
                        parameters: List[Parameter], label: str) -> None:
    """Restore an index-keyed array dict (moments/velocities) in place."""
    slots.clear()
    for key, array in stored.items():
        index = int(key)
        if not 0 <= index < len(parameters):
            raise ValueError(
                f"checkpoint {label} index {index} is out of range for "
                f"{len(parameters)} parameters")
        array = np.asarray(array, dtype=np.float32)
        expected = parameters[index].data.shape
        if array.shape != expected:
            raise ValueError(
                f"checkpoint {label}[{index}] shape {array.shape} does not "
                f"match parameter shape {expected}")
        slots[index] = array.copy()


def _dump_indexed_state(slots: Dict[int, np.ndarray]) -> Dict[str, np.ndarray]:
    """Serialise an index-keyed array dict (string keys for the manifest)."""
    return {str(index): array.copy() for index, array in sorted(slots.items())}


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients currently accumulated."""
        for index, param in enumerate(self.parameters):
            update = param.grad
            if self.momentum > 0.0:
                vel = self._velocity.setdefault(index, np.zeros_like(param.data))
                vel *= self.momentum
                vel += update
                update = vel
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state (momentum velocities by index)."""
        return {"velocity": _dump_indexed_state(self._velocity)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`; continuation is bit-identical."""
        _load_indexed_state(self._velocity, state["velocity"], self.parameters,
                            "velocity")


class Adam:
    """Adam optimiser, the optimiser used by Instant-NGP for both MLPs and grids.

    The hash-grid tables receive extremely sparse gradients (only touched
    entries are non-zero); Adam's per-element moment estimates handle that
    without any special casing, exactly as in the reference implementation.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 betas=(0.9, 0.99), eps: float = 1e-10,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m = self._m.setdefault(index, np.zeros_like(param.data))
            v = self._v.setdefault(index, np.zeros_like(param.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    @property
    def step_count(self) -> int:
        return self._step_count

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state: step count plus per-index moments.

        The step count drives the bias-correction terms, so omitting it
        would change every post-resume update; moments are float32 arrays
        and round-trip exactly.
        """
        return {
            "step_count": int(self._step_count),
            "m": _dump_indexed_state(self._m),
            "v": _dump_indexed_state(self._v),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`; continuation is bit-identical."""
        step_count = int(state["step_count"])
        if step_count < 0:
            raise ValueError("checkpoint step_count must be non-negative")
        _load_indexed_state(self._m, state["m"], self.parameters, "m")
        _load_indexed_state(self._v, state["v"], self.parameters, "v")
        self._step_count = step_count
