"""Gradient-descent optimisers operating on :class:`~repro.nn.parameter.Parameter`."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update using the gradients currently accumulated."""
        for param in self.parameters:
            update = param.grad
            if self.momentum > 0.0:
                vel = self._velocity.setdefault(id(param), np.zeros_like(param.data))
                vel *= self.momentum
                vel += update
                update = vel
            param.data -= self.lr * update

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam optimiser, the optimiser used by Instant-NGP for both MLPs and grids.

    The hash-grid tables receive extremely sparse gradients (only touched
    entries are non-zero); Adam's per-element moment estimates handle that
    without any special casing, exactly as in the reference implementation.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 betas=(0.9, 0.99), eps: float = 1e-10,
                 weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients."""
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m = self._m.setdefault(id(param), np.zeros_like(param.data))
            v = self._v.setdefault(id(param), np.zeros_like(param.data))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    @property
    def step_count(self) -> int:
        return self._step_count
