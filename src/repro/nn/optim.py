"""Gradient-descent optimisers operating on :class:`~repro.nn.parameter.Parameter`.

Per-parameter state (momentum velocities, Adam moments) is keyed by the
parameter's *index* in ``self.parameters`` rather than by ``id(param)``:
CPython reuses object ids after garbage collection, so identity keys can
silently alias one parameter's state onto an unrelated parameter that
happens to be allocated at the same address — and identity keys cannot
round-trip through a checkpoint.  Index keys are stable, collision-free and
serialisable.

Sparse / lazy updates
---------------------
Parameters flagged ``sparse`` (the hash-grid tables under
``Instant3DConfig(sparse_updates=True)``) receive **touched-rows-only lazy
updates**, mirroring the accelerator's backward-update-merging unit, which
only ever writes touched hash-table entries back to SRAM:

* rows carrying a gradient this step get the full moment + bias-correction
  update at the current global step count;
* untouched rows are not visited at all — their pending moment decay is
  recorded through a per-row *last-step* counter and applied as a
  closed-form ``beta ** k`` catch-up the next time the row is touched
  (``k`` = steps since the last touch), which is arithmetically the
  deferred form of decaying every step;
* untouched rows receive **no parameter update** while their gradient is
  zero.  This is where the lazy semantics deliberately differ from plain
  dense Adam, whose bias-corrected momentum keeps nudging a row for many
  steps after its last gradient — exactly the per-entry work (and SRAM
  traffic) the paper's hardware never performs.

Gradients arrive either as a compacted COO pair
(:attr:`Parameter.sparse_grad`, produced by the grid backward) or — the
dense-representation *oracle* used for differential testing — as an ordinary
dense ``grad`` array whose non-zero rows define the touched set.  Both
representations run the identical row-update arithmetic, so they are
bit-identical.

``state_dict()`` **flushes** the deferred decay first (every row's moments
are brought up to the current step), so serialised moments are canonical
plain arrays: checkpoints need no per-row counters, and a save → load →
continue run is bit-identical to the saving run's own continuation.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.nn.parameter import Parameter
from repro.utils.workspace import WorkspaceArena, arena_buffer


def _load_indexed_state(slots: Dict[int, np.ndarray], stored: Dict[str, Any],
                        parameters: List[Parameter], label: str) -> None:
    """Restore an index-keyed array dict (moments/velocities) in place."""
    slots.clear()
    for key, array in stored.items():
        index = int(key)
        if not 0 <= index < len(parameters):
            raise ValueError(
                f"checkpoint {label} index {index} is out of range for "
                f"{len(parameters)} parameters")
        array = np.asarray(array, dtype=np.float32)
        expected = parameters[index].data.shape
        if array.shape != expected:
            raise ValueError(
                f"checkpoint {label}[{index}] shape {array.shape} does not "
                f"match parameter shape {expected}")
        slots[index] = array.copy()


def _dump_indexed_state(slots: Dict[int, np.ndarray]) -> Dict[str, np.ndarray]:
    """Serialise an index-keyed array dict (string keys for the manifest)."""
    return {str(index): array.copy() for index, array in sorted(slots.items())}


def _state_slot(slots: Dict[int, np.ndarray], index: int,
                template: np.ndarray, dtype=None,
                backend=None) -> np.ndarray:
    """The per-parameter state array, created zeroed on first use.

    (``dict.setdefault`` would evaluate — allocate and zero — the default
    table-sized array on *every* call; this helper only pays on the miss.)
    Allocation goes through ``backend`` when given so moments live on the
    owner's backend.
    """
    slot = slots.get(index)
    if slot is None:
        if backend is not None:
            slot = (backend.zeros(template.shape, template.dtype)
                    if dtype is None
                    else backend.zeros((template.shape[0],), dtype))
        else:
            slot = (np.zeros_like(template) if dtype is None
                    else np.zeros(template.shape[0], dtype=dtype))
        slots[index] = slot
    return slot


def _touched_rows(param: Parameter,
                  backend=None) -> Tuple[np.ndarray, np.ndarray]:
    """The ``(rows, values)`` gradient of a sparse parameter, either
    representation.

    COO gradients are returned as-is; the dense-oracle representation
    derives the touched set from the non-zero rows of ``param.grad`` (which
    matches the COO emitter's filter exactly — it drops rows whose float32
    accumulated gradient is entirely zero).
    """
    if param.sparse_grad is not None:
        return param.sparse_grad.rows, param.sparse_grad.values
    if param.coo_grads:
        # COO invariant: the dense grad is all-zero by construction, so a
        # missing sparse_grad means nothing was touched this step — skip
        # the O(table) non-zero scan the sparse mode exists to eliminate.
        return np.empty(0, dtype=np.int64), param.grad[:0]
    backend = resolve_backend(backend)
    grad = param.grad
    if grad.ndim == 1:
        rows = backend.flatnonzero(grad != 0.0)
    else:
        rows = backend.flatnonzero(
            np.any(grad != 0.0, axis=tuple(range(1, grad.ndim))))
    return rows, grad[rows]


def _broadcast_tail(factors: np.ndarray, ndim: int) -> np.ndarray:
    """Reshape per-row ``(U,)`` factors to broadcast over trailing axes."""
    return factors.reshape(factors.shape + (1,) * (ndim - 1))


def _pow_by_exponent(beta: float, k: np.ndarray,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """``beta ** k`` for an integer array ``k >= 0``.

    Evaluates ``np.power`` once per *distinct exponent* (a table over
    ``[0, k.max()]`` — gap lengths are bounded by the step count, so the
    table is tiny) and gathers, instead of one scalar ``pow`` per element.
    Bit-identical to ``np.power(beta, k)``: the same scalar power is
    evaluated at the same integer exponents.
    """
    table = np.power(np.float64(beta), np.arange(int(k.max()) + 1,
                                                 dtype=np.int64))
    if out is None:
        return table[k]
    np.take(table.astype(out.dtype, copy=False), k, out=out)
    return out


def _rebuild_last_step(slots: Dict[int, np.ndarray], indices,
                       parameters: List[Parameter], step_count: int) -> None:
    """Recreate last-touch counters after a checkpoint load.

    ``state_dict()`` flushes before serialising, so every serialised row is
    decayed up to ``step_count`` — the counters are uniform and need not be
    stored.  ``indices`` iterates the parameter indices holding state.
    """
    slots.clear()
    for index in indices:
        if parameters[index].sparse:
            slots[index] = np.full(parameters[index].data.shape[0],
                                   step_count, dtype=np.int32)


class SGD:
    """Plain stochastic gradient descent with optional momentum.

    ``sparse`` parameters take the lazy row-update path described in the
    module docstring (velocity decay caught up as ``momentum ** k``); dense
    parameters are untouched by it.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0,
                 arena: Optional[WorkspaceArena] = None,
                 backend: BackendLike = None):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.arena = arena
        self.backend = resolve_backend(backend)
        self._step_count = 0
        self._velocity: Dict[int, np.ndarray] = {}
        self._last_step: Dict[int, np.ndarray] = {}

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        self.arena = arena

    def set_backend(self, backend: BackendLike) -> None:
        self.backend = resolve_backend(backend)

    def step(self) -> None:
        """Apply one update using the gradients currently accumulated."""
        self._step_count += 1
        for index, param in enumerate(self.parameters):
            if param.sparse:
                self._step_sparse(index, param)
                continue
            update = param.grad
            if self.momentum > 0.0:
                vel = _state_slot(self._velocity, index, param.data,
                                  backend=self.backend)
                vel *= self.momentum
                vel += update
                update = vel
            # param.data -= lr * update, without the lr * update temporary.
            scratch = arena_buffer(self.arena, "sgd/scratch", update.shape,
                                   update.dtype, backend=self.backend)
            np.multiply(self.lr, update, out=scratch)
            param.data -= scratch

    def _step_sparse(self, index: int, param: Parameter) -> None:
        """Touched-rows-only update with lazy momentum catch-up."""
        rows, vals = _touched_rows(param, self.backend)
        if rows.size == 0:
            return
        vals64 = vals.astype(np.float64)
        if self.momentum > 0.0:
            vel = _state_slot(self._velocity, index, param.data,
                              backend=self.backend)
            last = _state_slot(self._last_step, index, param.data,
                               dtype=np.int32, backend=self.backend)
            k = self._step_count - last[rows]
            last[rows] = self._step_count
            vel64 = vel[rows].astype(np.float64)
            vel64 *= _broadcast_tail(_pow_by_exponent(self.momentum, k),
                                     vals64.ndim)
            vel64 += vals64
            vel[rows] = vel64
            update = vel64
        else:
            update = vals64
        param.data[rows] -= self.lr * update

    def _flush_lazy(self) -> None:
        """Apply all deferred velocity decay (every row up to the current step)."""
        for index, last in self._last_step.items():
            stale = np.flatnonzero(last < self._step_count)
            if stale.size == 0:
                continue
            k = self._step_count - last[stale]
            vel = self._velocity[index]
            vel[stale] *= _broadcast_tail(_pow_by_exponent(self.momentum, k),
                                          vel.ndim)
            last[stale] = self._step_count

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state (momentum velocities by index).

        Deferred lazy decay is **flushed first** (see the module docstring),
        which rebases the live optimiser too — the saving run's continuation
        and a load-and-continue run stay bit-identical to each other.
        """
        self._flush_lazy()
        return {"step_count": int(self._step_count),
                "velocity": _dump_indexed_state(self._velocity)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`; continuation is bit-identical."""
        _load_indexed_state(self._velocity, state["velocity"], self.parameters,
                            "velocity")
        self._step_count = int(state.get("step_count", 0))
        _rebuild_last_step(self._last_step, self._velocity, self.parameters,
                           self._step_count)


class Adam:
    """Adam optimiser, the optimiser used by Instant-NGP for both MLPs and grids.

    The hash-grid tables receive extremely sparse gradients (only touched
    entries are non-zero).  Dense parameters (and every parameter when
    ``sparse_updates`` is off) run the textbook per-element update; ``sparse``
    parameters run the touched-rows-only lazy update of the module
    docstring, whose per-step cost scales with the touched-row count instead
    of the table size.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 betas=(0.9, 0.99), eps: float = 1e-10,
                 weight_decay: float = 0.0,
                 arena: Optional[WorkspaceArena] = None,
                 backend: BackendLike = None):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.arena = arena
        self.backend = resolve_backend(backend)
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        #: Per sparse parameter: the step each row's moments are decayed to.
        self._last_step: Dict[int, np.ndarray] = {}

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        """Attach a workspace arena supplying the per-update scratch buffers."""
        self.arena = arena

    def set_backend(self, backend: BackendLike) -> None:
        self.backend = resolve_backend(backend)

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients.

        Every arithmetic step of the dense path runs in place through two
        scratch buffers with the exact operation order of the textbook
        expression ``param -= lr * (m / bias1) / (sqrt(v / bias2) + eps)``,
        so results are bit-identical to the allocating formulation while
        steady-state steps allocate nothing.  ``sparse`` parameters branch
        to the lazy row update instead.
        """
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            if param.sparse:
                self._step_sparse(index, param, bias1, bias2)
                continue
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m = _state_slot(self._m, index, param.data, backend=self.backend)
            v = _state_slot(self._v, index, param.data, backend=self.backend)
            t1 = arena_buffer(self.arena, "adam/t1", grad.shape, grad.dtype,
                              backend=self.backend)
            t2 = arena_buffer(self.arena, "adam/t2", grad.shape, grad.dtype,
                              backend=self.backend)
            m *= self.beta1
            np.multiply(1.0 - self.beta1, grad, out=t1)
            m += t1
            v *= self.beta2
            np.multiply(1.0 - self.beta2, grad, out=t1)
            t1 *= grad
            v += t1
            np.divide(m, bias1, out=t1)          # m_hat
            np.multiply(self.lr, t1, out=t1)     # lr * m_hat
            np.divide(v, bias2, out=t2)          # v_hat
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            param.data -= t1

    def _step_sparse(self, index: int, param: Parameter,
                     bias1: float, bias2: float) -> None:
        """Touched-rows-only Adam update with ``beta ** k`` moment catch-up.

        Gathers the touched rows' moments, applies the deferred decay of the
        ``k`` steps since each row's last touch (the current step included),
        folds in this step's gradient and writes back — every pass is
        ``O(touched)`` rows, never ``O(table)``.  Like the dense path, the
        arithmetic runs in single precision (moments are float32 storage);
        the decay factors are float32 roundings of exact float64 powers.
        The COO and dense-oracle gradient representations share this code,
        so they are bit-identical by construction.
        """
        rows, vals = _touched_rows(param, self.backend)
        n_rows = int(rows.size)
        if n_rows == 0:
            return            # nothing touched: every row's decay stays deferred
        backend = self.backend
        m = _state_slot(self._m, index, param.data, backend=backend)
        v = _state_slot(self._v, index, param.data, backend=backend)
        last = _state_slot(self._last_step, index, param.data,
                           dtype=np.int32, backend=backend)
        arena = self.arena
        k = arena_buffer(arena, "adam/sp_k", n_rows, np.int32,
                         backend=backend)
        backend.take_out(last, rows, k)
        np.subtract(np.int32(self._step_count), k, out=k)        # k >= 1
        backend.scatter_rows(last, rows, self._step_count)
        c1 = _pow_by_exponent(self.beta1, k,
                              arena_buffer(arena, "adam/sp_c1", n_rows,
                                           np.float32, backend=backend))
        c2 = _pow_by_exponent(self.beta2, k,
                              arena_buffer(arena, "adam/sp_c2", n_rows,
                                           np.float32, backend=backend))
        # Gather the touched rows of the moments and the parameter into
        # contiguous scratch.  The hash-table layout ((T, 2) float32,
        # contiguous) goes through the backend's flat pair view (complex64
        # on numpy-family backends) — one flat take per array instead of
        # 2-D fancy indexing — and all arithmetic below then runs on
        # contiguous float32 blocks.
        mflat = backend.flat_pair_view(m)
        vflat = backend.flat_pair_view(v)
        dflat = backend.flat_pair_view(param.data)
        if mflat is not None and vflat is not None and dflat is not None:
            mg = arena_buffer(arena, "adam/sp_mg", n_rows, np.complex64,
                              backend=backend)
            vg = arena_buffer(arena, "adam/sp_vg", n_rows, np.complex64,
                              backend=backend)
            dg = arena_buffer(arena, "adam/sp_dg", n_rows, np.complex64,
                              backend=backend)
            backend.take_out(mflat, rows, mg)
            backend.take_out(vflat, rows, vg)
            backend.take_out(dflat, rows, dg)
            m32 = mg.view(np.float32).reshape(vals.shape)
            v32 = vg.view(np.float32).reshape(vals.shape)
            d32 = dg.view(np.float32).reshape(vals.shape)
        else:
            mg = vg = dg = None
            m32 = arena_buffer(arena, "adam/sp_m32", vals.shape, np.float32,
                               backend=backend)
            v32 = arena_buffer(arena, "adam/sp_v32", vals.shape, np.float32,
                               backend=backend)
            d32 = arena_buffer(arena, "adam/sp_d32", vals.shape, np.float32,
                               backend=backend)
            backend.gather(m, rows, out=m32)
            backend.gather(v, rows, out=v32)
            backend.gather(param.data, rows, out=d32)
        if self.weight_decay > 0.0:
            vals = vals + self.weight_decay * d32
        # Moments, float32 in place on the gathered rows:
        #   m <- beta1**k * m + (1 - beta1) * g
        #   v <- beta2**k * v + (1 - beta2) * g^2
        tail = vals.ndim
        g1 = arena_buffer(arena, "adam/sp_g1", vals.shape, np.float32,
                          backend=backend)
        np.multiply(1.0 - self.beta1, vals, out=g1)
        g2 = arena_buffer(arena, "adam/sp_g2", vals.shape, np.float32,
                          backend=backend)
        np.multiply(vals, vals, out=g2)
        g2 *= 1.0 - self.beta2
        if mg is not None:
            # Complex in-place forms: a real factor scales both features of
            # a row (value-identical to the per-feature multiply), and the
            # complex add is the elementwise add — every pass contiguous,
            # no broadcast column.
            mg *= c1
            mg += g1.view(np.complex64).reshape(-1)
            vg *= c2
            vg += g2.view(np.complex64).reshape(-1)
        else:
            m32 *= _broadcast_tail(c1, tail)
            m32 += g1
            v32 *= _broadcast_tail(c2, tail)
            v32 += g2
        # Parameter update (g1/g2 reused as scratch, scalars folded):
        #   param -= (lr / bias1) * m / (sqrt(v * (1 / bias2)) + eps)
        np.multiply(self.lr / bias1, m32, out=g1)
        np.multiply(1.0 / bias2, v32, out=g2)
        np.sqrt(g2, out=g2)
        g2 += self.eps
        g1 /= g2
        d32 -= g1
        # Scatter moments and parameter back (touched rows only).
        if mg is not None:
            backend.scatter_rows(mflat, rows, mg)
            backend.scatter_rows(vflat, rows, vg)
            backend.scatter_rows(dflat, rows, dg)
        else:
            backend.scatter_rows(m, rows, m32)
            backend.scatter_rows(v, rows, v32)
            backend.scatter_rows(param.data, rows, d32)

    def _flush_lazy(self) -> None:
        """Apply all deferred moment decay (every row up to the current step)."""
        for index, last in self._last_step.items():
            stale = np.flatnonzero(last < self._step_count)
            if stale.size == 0:
                continue
            k = self._step_count - last[stale]
            m, v = self._m[index], self._v[index]
            m[stale] *= _broadcast_tail(_pow_by_exponent(self.beta1, k), m.ndim)
            v[stale] *= _broadcast_tail(_pow_by_exponent(self.beta2, k), v.ndim)
            last[stale] = self._step_count

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    @property
    def step_count(self) -> int:
        return self._step_count

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state: step count plus per-index moments.

        The step count drives the bias-correction terms, so omitting it
        would change every post-resume update; moments are float32 arrays
        and round-trip exactly.  Deferred lazy decay is **flushed first**
        (rebasing the live optimiser too), so the serialised moments are
        canonical and no per-row counters need to be stored — see the
        module docstring.
        """
        self._flush_lazy()
        return {
            "step_count": int(self._step_count),
            "m": _dump_indexed_state(self._m),
            "v": _dump_indexed_state(self._v),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`; continuation is bit-identical."""
        step_count = int(state["step_count"])
        if step_count < 0:
            raise ValueError("checkpoint step_count must be non-negative")
        _load_indexed_state(self._m, state["m"], self.parameters, "m")
        _load_indexed_state(self._v, state["v"], self.parameters, "v")
        self._step_count = step_count
        _rebuild_last_step(self._last_step, self._m, self.parameters,
                           step_count)
