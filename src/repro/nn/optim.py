"""Gradient-descent optimisers operating on :class:`~repro.nn.parameter.Parameter`.

Per-parameter state (momentum velocities, Adam moments) is keyed by the
parameter's *index* in ``self.parameters`` rather than by ``id(param)``:
CPython reuses object ids after garbage collection, so identity keys can
silently alias one parameter's state onto an unrelated parameter that
happens to be allocated at the same address — and identity keys cannot
round-trip through a checkpoint.  Index keys are stable, collision-free and
serialisable.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from repro.nn.parameter import Parameter
from repro.utils.workspace import WorkspaceArena, arena_buffer


def _load_indexed_state(slots: Dict[int, np.ndarray], stored: Dict[str, Any],
                        parameters: List[Parameter], label: str) -> None:
    """Restore an index-keyed array dict (moments/velocities) in place."""
    slots.clear()
    for key, array in stored.items():
        index = int(key)
        if not 0 <= index < len(parameters):
            raise ValueError(
                f"checkpoint {label} index {index} is out of range for "
                f"{len(parameters)} parameters")
        array = np.asarray(array, dtype=np.float32)
        expected = parameters[index].data.shape
        if array.shape != expected:
            raise ValueError(
                f"checkpoint {label}[{index}] shape {array.shape} does not "
                f"match parameter shape {expected}")
        slots[index] = array.copy()


def _dump_indexed_state(slots: Dict[int, np.ndarray]) -> Dict[str, np.ndarray]:
    """Serialise an index-keyed array dict (string keys for the manifest)."""
    return {str(index): array.copy() for index, array in sorted(slots.items())}


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 momentum: float = 0.0,
                 arena: Optional[WorkspaceArena] = None):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.arena = arena
        self._velocity: Dict[int, np.ndarray] = {}

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        self.arena = arena

    def step(self) -> None:
        """Apply one update using the gradients currently accumulated."""
        for index, param in enumerate(self.parameters):
            update = param.grad
            if self.momentum > 0.0:
                vel = self._velocity.setdefault(index, np.zeros_like(param.data))
                vel *= self.momentum
                vel += update
                update = vel
            # param.data -= lr * update, without the lr * update temporary.
            scratch = arena_buffer(self.arena, "sgd/scratch", update.shape,
                                   update.dtype)
            np.multiply(self.lr, update, out=scratch)
            param.data -= scratch

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state (momentum velocities by index)."""
        return {"velocity": _dump_indexed_state(self._velocity)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`; continuation is bit-identical."""
        _load_indexed_state(self._velocity, state["velocity"], self.parameters,
                            "velocity")


class Adam:
    """Adam optimiser, the optimiser used by Instant-NGP for both MLPs and grids.

    The hash-grid tables receive extremely sparse gradients (only touched
    entries are non-zero); Adam's per-element moment estimates handle that
    without any special casing, exactly as in the reference implementation.
    """

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-2,
                 betas=(0.9, 0.99), eps: float = 1e-10,
                 weight_decay: float = 0.0,
                 arena: Optional[WorkspaceArena] = None):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.parameters: List[Parameter] = list(parameters)
        self.lr = float(lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self.arena = arena
        self._step_count = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        """Attach a workspace arena supplying the per-update scratch buffers."""
        self.arena = arena

    def step(self) -> None:
        """Apply one Adam update using the accumulated gradients.

        Every arithmetic step runs in place through two scratch buffers with
        the exact operation order of the textbook expression
        ``param -= lr * (m / bias1) / (sqrt(v / bias2) + eps)``, so results
        are bit-identical to the allocating formulation while steady-state
        steps allocate nothing.
        """
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.parameters):
            grad = param.grad
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param.data
            m = self._m.setdefault(index, np.zeros_like(param.data))
            v = self._v.setdefault(index, np.zeros_like(param.data))
            t1 = arena_buffer(self.arena, "adam/t1", grad.shape, grad.dtype)
            t2 = arena_buffer(self.arena, "adam/t2", grad.shape, grad.dtype)
            m *= self.beta1
            np.multiply(1.0 - self.beta1, grad, out=t1)
            m += t1
            v *= self.beta2
            np.multiply(1.0 - self.beta2, grad, out=t1)
            t1 *= grad
            v += t1
            np.divide(m, bias1, out=t1)          # m_hat
            np.multiply(self.lr, t1, out=t1)     # lr * m_hat
            np.divide(v, bias2, out=t2)          # v_hat
            np.sqrt(t2, out=t2)
            t2 += self.eps
            t1 /= t2
            param.data -= t1

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    @property
    def step_count(self) -> int:
        return self._step_count

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable optimiser state: step count plus per-index moments.

        The step count drives the bias-correction terms, so omitting it
        would change every post-resume update; moments are float32 arrays
        and round-trip exactly.
        """
        return {
            "step_count": int(self._step_count),
            "m": _dump_indexed_state(self._m),
            "v": _dump_indexed_state(self._v),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`; continuation is bit-identical."""
        step_count = int(state["step_count"])
        if step_count < 0:
            raise ValueError("checkpoint step_count must be non-negative")
        _load_indexed_state(self._m, state["m"], self.parameters, "m")
        _load_indexed_state(self._v, state["v"], self.parameters, "v")
        self._step_count = step_count
