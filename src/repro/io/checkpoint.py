"""Versioned single-file checkpointing for training state.

A checkpoint is **one** ``.npz`` file: every :class:`numpy.ndarray` leaf of
the state tree is stored as a raw npz member (dtype- and bit-exact), and a
JSON *manifest* — stored inside the same archive under ``__manifest__`` —
records the tree structure, scalar leaves (including the arbitrary-precision
integers of numpy bit-generator states), a format version and caller
metadata.  The format needs no pickle (``allow_pickle=False`` throughout),
so checkpoints are safe to load from untrusted sources and stable across
Python versions.

Round-trip guarantees, which the interrupt/resume differential tests build
on:

* arrays are byte-identical (npz stores raw buffers);
* Python ``float`` scalars round-trip exactly (JSON uses ``repr``-based
  shortest representations that parse back to the same double);
* ``int`` scalars of any magnitude round-trip exactly (JSON integers are
  unbounded), which covers PCG64's 128-bit state words.

Integrity and fault tolerance (see ``docs/reliability.md``):

* every array member's CRC32 is recorded in the manifest under
  ``"digests"`` at save and verified on load; a mismatch (or an unreadable
  archive) raises :class:`CheckpointCorruptError`.  Digest-less files from
  older checkpoints still load — with a :class:`UserWarning` and a bump of
  the ``legacy_digestless_loads`` counter in :func:`io_stats`;
* ``save_checkpoint(..., keep_generations=N)`` rotates the previous file
  to ``path.g1`` (and ``.g1`` to ``.g2``, ...) before the atomic replace,
  keeping the newest ``N`` snapshots;
* when the primary file is corrupt (or missing) and generation files
  exist, :func:`load_checkpoint` quarantines the bad file (renamed to
  ``*.corrupt``) and falls back to the newest generation that verifies,
  so a torn write degrades the scene to its previous snapshot instead of
  losing it.

Layered on the generic :func:`save_checkpoint` / :func:`load_checkpoint`
pair are trainer-level helpers used by
:class:`~repro.training.fleet.SceneFleet` for preemptible scheduling:
:func:`save_trainer_checkpoint` captures a
:class:`~repro.training.trainer.Trainer` (model parameters, both Adam
optimisers, occupancy grid, RNG streams, iteration counters) plus its
:class:`~repro.training.trainer.TrainingHistory`, and
:func:`load_trainer_checkpoint` restores them into a freshly constructed
trainer so the run continues bit-identically.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import warnings
import zipfile
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from repro.backend import materialize
from repro.reliability.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.training.trainer import Trainer, TrainingHistory

#: Identifies the file format inside the manifest.
CHECKPOINT_FORMAT = "repro-checkpoint"
#: Bumped whenever the manifest layout changes incompatibly.
#: Version history:
#:   1 — original layout (hash grids exposed one Parameter per level, so
#:       optimiser moments were keyed/shaped per level);
#:   2 — each grid's levels are backed by a single master-table Parameter:
#:       optimiser state holds one table-sized moment array per grid.
CHECKPOINT_VERSION = 2
#: Oldest version this library can still restore.  Version-1 optimiser
#: state cannot be mapped onto the master-table parameters, so such files
#: are rejected up front with a clear error instead of failing deep inside
#: the moment-shape validation.
CHECKPOINT_MIN_VERSION = 2
#: npz member that stores the JSON manifest.
_MANIFEST_KEY = "__manifest__"
#: Manifest placeholder key referencing an npz array member.
_ARRAY_KEY = "__npz__"

PathLike = Union[str, Path]


#: Upper bound on the generation chain, purely a sanity cap.
_MAX_GENERATIONS = 64
#: Serialises the per-process temp-name counter.
_TMP_COUNTER = itertools.count()


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or of an unsupported version."""


class NonFiniteCheckpointError(CheckpointError):
    """Refused to persist a state tree containing non-finite values.

    Raised by :func:`save_checkpoint` (unless ``allow_non_finite=True``)
    when any floating array leaf holds a NaN or infinity.  A checkpoint is
    the durable copy of a scene — persisting a numerically poisoned state
    would outlive the diverged run and re-poison every later restore, so
    the refusal is the default.
    """


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file exists but fails integrity verification.

    Raised for unreadable archives, undecodable manifests and CRC32 digest
    mismatches — the failures a torn write or silent media corruption
    produces.  Structural problems (wrong kind, unsupported version) stay
    plain :class:`CheckpointError`: they are caller bugs, not data loss,
    and must not trigger generation fallback.
    """


@dataclass
class CheckpointIOStats:
    """Process-wide counters for the integrity/fallback machinery."""

    fallback_loads: int = 0
    quarantined_files: int = 0
    legacy_digestless_loads: int = 0


_IO_STATS = CheckpointIOStats()


def io_stats() -> CheckpointIOStats:
    """A snapshot copy of the process-wide checkpoint I/O counters.

    Counters are cumulative for the process; callers that need deltas
    (e.g. :class:`~repro.serving.residency.ResidencyManager`) snapshot
    before and after an operation.
    """
    return replace(_IO_STATS)


def reset_io_stats() -> None:
    """Zero the process-wide counters (test isolation helper)."""
    _IO_STATS.fallback_loads = 0
    _IO_STATS.quarantined_files = 0
    _IO_STATS.legacy_digestless_loads = 0


@dataclass
class Checkpoint:
    """A loaded checkpoint: the state tree plus its manifest header."""

    payload: Dict[str, Any]
    kind: str
    version: int
    metadata: Dict[str, Any] = field(default_factory=dict)
    #: 0 when the primary file verified; ``k`` when the load fell back to
    #: the ``path.g{k}`` generation after quarantining newer candidates.
    fallback_generation: int = 0


def _array_digest(array: np.ndarray) -> int:
    """CRC32 over the array's raw bytes (C-contiguous view)."""
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


def generation_path(path: PathLike, k: int) -> Path:
    """The ``k``-th retained generation of ``path`` (``k >= 1``)."""
    path = Path(path)
    return path.with_name(f"{path.name}.g{k}")


def _list_generations(path: Path) -> List[Path]:
    """Existing generation files, newest (``.g1``) first."""
    out: List[Path] = []
    for k in range(1, _MAX_GENERATIONS + 1):
        candidate = generation_path(path, k)
        if not candidate.exists():
            break
        out.append(candidate)
    return out


def _rotate_generations(path: Path, keep_generations: int) -> None:
    """Shift ``path -> .g1 -> .g2 -> ...`` keeping the newest generations.

    Callers serialise saves per path (the service holds the scene lock),
    so the rotation itself needs no locking.
    """
    oldest = generation_path(path, keep_generations - 1)
    if oldest.exists():
        oldest.unlink()
    for k in range(keep_generations - 2, 0, -1):
        source = generation_path(path, k)
        if source.exists():
            os.replace(source, generation_path(path, k + 1))
    os.replace(path, generation_path(path, 1))


def _quarantine(path: Path) -> Path:
    """Rename a corrupt file to ``*.corrupt`` (uniquified) for post-mortems."""
    target = path.with_name(f"{path.name}.corrupt")
    suffix = 0
    while target.exists():
        suffix += 1
        target = path.with_name(f"{path.name}.corrupt{suffix}")
    os.replace(path, target)
    _IO_STATS.quarantined_files += 1
    return target


def _flatten(node: Any, arrays: Dict[str, np.ndarray], path: str,
             allow_non_finite: bool = True) -> Any:
    """Split a state tree into a JSON-able skeleton and an array table.

    Leaves are materialised to host numpy first, so state trees holding a
    non-numpy backend's native arrays checkpoint to the same
    backend-agnostic npz format (restore works under any backend).  With
    ``allow_non_finite=False``, floating leaves (arrays and scalars) are
    additionally screened for NaN/inf and refused with
    :class:`NonFiniteCheckpointError`.
    """
    node = materialize(node)
    if isinstance(node, np.ndarray):
        if node.dtype == object:
            # np.savez would silently pickle these, and allow_pickle=False
            # on load would then reject them — an unrestorable checkpoint.
            raise CheckpointError(
                f"object-dtype arrays cannot be checkpointed "
                f"(at {path or '<root>'})")
        if not allow_non_finite and np.issubdtype(node.dtype, np.floating) \
                and not np.isfinite(node).all():
            raise NonFiniteCheckpointError(
                f"refusing to persist non-finite array at "
                f"{path or '<root>'} (pass allow_non_finite=True to "
                f"override for post-mortem dumps)")
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_KEY: key}
    if isinstance(node, np.generic):           # numpy scalar: keep its dtype
        return _flatten(np.asarray(node), arrays, path, allow_non_finite)
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be strings, got {key!r} at "
                    f"{path or '<root>'}")
            if key == _ARRAY_KEY:
                raise CheckpointError(
                    f"{_ARRAY_KEY!r} is reserved by the checkpoint format "
                    f"(at {path or '<root>'})")
            out[key] = _flatten(value, arrays, f"{path}.{key}" if path else key,
                                allow_non_finite)
        return out
    if isinstance(node, (list, tuple)):
        return [_flatten(value, arrays, f"{path}[{i}]", allow_non_finite)
                for i, value in enumerate(node)]
    if node is None or isinstance(node, (bool, int, float, str)):
        if not allow_non_finite and isinstance(node, float) \
                and not np.isfinite(node):
            raise NonFiniteCheckpointError(
                f"refusing to persist non-finite scalar at "
                f"{path or '<root>'} (pass allow_non_finite=True to "
                f"override for post-mortem dumps)")
        return node
    raise CheckpointError(
        f"unsupported type {type(node).__name__} at {path or '<root>'}")


def _unflatten(node: Any, data) -> Any:
    """Rebuild the state tree, materialising array placeholders from npz."""
    if isinstance(node, dict):
        if set(node.keys()) == {_ARRAY_KEY}:
            return data[node[_ARRAY_KEY]]
        return {key: _unflatten(value, data) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, data) for value in node]
    return node


def save_checkpoint(path: PathLike, payload: Dict[str, Any], *,
                    kind: str = "state",
                    metadata: Optional[Dict[str, Any]] = None,
                    keep_generations: int = 1,
                    allow_non_finite: bool = False) -> Path:
    """Write ``payload`` (a nested dict of arrays and scalars) to ``path``.

    ``kind`` tags what the payload holds (e.g. ``"trainer"``) and is checked
    on load; ``metadata`` is an arbitrary JSON-able dict stored alongside —
    use it for provenance (scene name, seed, iteration) rather than state.
    Parent directories are created as needed; the file lands whole, at
    exactly ``path`` (no implicit ``.npz`` suffix appended).

    The write is **atomic**: the archive is built in a same-directory temp
    file and renamed over ``path``, so a crash or preemption mid-save never
    truncates an existing checkpoint — readers see either the old snapshot
    or the new one, which is what lets the fleet checkpoint on a cadence
    without a window where the only recoverable state is a partial file.
    The temp name embeds pid, thread id and a monotonic counter, so
    concurrent saves of the same path from different threads never collide
    on the temp file.

    The manifest records a CRC32 digest per array member, verified by
    :func:`load_checkpoint`.  With ``keep_generations=N`` (N > 1) the
    previous file is rotated to ``path.g1`` (``.g1`` to ``.g2``, ...)
    before the replace, so a later corruption of the primary file can fall
    back to an older verified snapshot.

    Non-finite floating values in the payload are **refused** by default
    (:class:`NonFiniteCheckpointError`) — a NaN-poisoned state must not
    become the scene's durable copy.  ``allow_non_finite=True`` overrides
    the screen for deliberate post-mortem dumps.
    """
    if not 1 <= keep_generations <= _MAX_GENERATIONS:
        raise ValueError(f"keep_generations must be in "
                         f"[1, {_MAX_GENERATIONS}], got {keep_generations}")
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    tree = _flatten(payload, arrays, "", allow_non_finite)
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "kind": str(kind),
        "metadata": _flatten(metadata or {}, arrays, "metadata"),
        "payload": tree,
        "digests": {key: _array_digest(array)
                    for key, array in arrays.items()},
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.parent / (f".{path.name}.tmp{os.getpid()}-"
                              f"{threading.get_ident()}-{next(_TMP_COUNTER)}")
    try:
        with open(tmp_path, "wb") as handle:
            np.savez(handle, **{_MANIFEST_KEY: np.array(json.dumps(manifest))},
                     **arrays)
        if keep_generations > 1 and path.exists():
            _rotate_generations(path, keep_generations)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    # After the replace: raise-kinds model a post-write failure (the retry
    # harmlessly re-saves the same state); truncate/corrupt kinds model a
    # torn write of the final file and drive the generation-fallback path.
    fault_point("checkpoint.save", path)
    return path


def _read_verified(path: Path, expected_kind: Optional[str]) -> Checkpoint:
    """Read one file and verify its integrity digests.

    Corruption-class failures (unreadable archive, undecodable manifest,
    digest mismatch, dangling array reference) raise
    :class:`CheckpointCorruptError`; structural mismatches (format, version,
    kind) stay :class:`CheckpointError`.
    """
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointCorruptError(
            f"could not read checkpoint {path}: {exc}") from exc
    with archive as data:
        if _MANIFEST_KEY not in data.files:
            raise CheckpointCorruptError(
                f"{path} is not a repro checkpoint (missing {_MANIFEST_KEY})")
        try:
            manifest = json.loads(str(data[_MANIFEST_KEY][()]))
        except (json.JSONDecodeError, OSError, ValueError, zlib.error) as exc:
            raise CheckpointCorruptError(
                f"corrupt manifest in {path}: {exc}") from exc
        if manifest.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{path} has unknown format {manifest.get('format')!r}")
        version = int(manifest.get("version", -1))
        if not CHECKPOINT_MIN_VERSION <= version <= CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path} has unsupported checkpoint version {version} "
                f"(this library supports {CHECKPOINT_MIN_VERSION}.."
                f"{CHECKPOINT_VERSION}; version 1 files predate the "
                f"master-table grid layout and cannot be restored)")
        kind = manifest.get("kind", "state")
        if expected_kind is not None and kind != expected_kind:
            raise CheckpointError(
                f"{path} holds a {kind!r} checkpoint, expected "
                f"{expected_kind!r}")
        # Materialise every member once: digest verification and
        # _unflatten share the decompressed arrays.
        members: Dict[str, np.ndarray] = {}
        try:
            for key in data.files:
                if key != _MANIFEST_KEY:
                    members[key] = data[key]
        except (OSError, ValueError, zlib.error, EOFError,
                zipfile.BadZipFile) as exc:
            raise CheckpointCorruptError(
                f"corrupt array member in {path}: {exc}") from exc
        digests = manifest.get("digests")
        if digests is None:
            _IO_STATS.legacy_digestless_loads += 1
            warnings.warn(
                f"checkpoint {path} predates per-array integrity digests; "
                f"loading without verification (re-save to add digests)",
                UserWarning, stacklevel=3)
        else:
            for key, expected in digests.items():
                if key not in members:
                    raise CheckpointCorruptError(
                        f"corrupt checkpoint {path}: digest manifest lists "
                        f"member {key!r} but the archive lacks it")
                if _array_digest(members[key]) != int(expected):
                    raise CheckpointCorruptError(
                        f"corrupt checkpoint {path}: CRC32 mismatch on "
                        f"array member {key!r}")
        try:
            payload = _unflatten(manifest["payload"], members)
            metadata = _unflatten(manifest.get("metadata", {}), members)
        except (KeyError, ValueError) as exc:
            raise CheckpointCorruptError(
                f"corrupt checkpoint {path}: {exc}") from exc
    return Checkpoint(payload=payload, kind=kind, version=version,
                      metadata=metadata)


def load_checkpoint(path: PathLike, *,
                    expected_kind: Optional[str] = None,
                    fallback_generations: bool = True) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` if the file is not a repro checkpoint,
    its version is newer than this library understands, or ``expected_kind``
    does not match the stored kind; :class:`CheckpointCorruptError` if the
    file fails integrity verification.

    When the primary file is corrupt (or missing) and ``path.g1``,
    ``path.g2``, ... generation files exist (``fallback_generations=True``,
    the default), the bad file is quarantined (renamed ``*.corrupt``) and
    the newest generation that verifies is returned instead, with
    :attr:`Checkpoint.fallback_generation` recording which one.  Without
    generation files the original error propagates and nothing is renamed.
    """
    path = Path(path)
    fault_point("checkpoint.load", path)
    generations = _list_generations(path) if fallback_generations else []
    if not path.exists() and not generations:
        raise CheckpointError(f"checkpoint file not found: {path}")
    primary_error: Optional[CheckpointCorruptError] = None
    if path.exists():
        try:
            return _read_verified(path, expected_kind)
        except CheckpointCorruptError as exc:
            if not generations:
                raise
            primary_error = exc
            _quarantine(path)
    for k, gen_path in enumerate(generations, start=1):
        try:
            checkpoint = _read_verified(gen_path, expected_kind)
        except CheckpointCorruptError:
            _quarantine(gen_path)
            continue
        _IO_STATS.fallback_loads += 1
        checkpoint.fallback_generation = k
        return checkpoint
    raise CheckpointCorruptError(
        f"checkpoint {path} is corrupt and none of its "
        f"{len(generations)} retained generation(s) verified"
    ) from primary_error


# -- trainer-level helpers ----------------------------------------------------
TRAINER_KIND = "trainer"


def save_trainer_checkpoint(path: PathLike, trainer: "Trainer",
                            history: Optional["TrainingHistory"] = None,
                            metadata: Optional[Dict[str, Any]] = None,
                            keep_generations: int = 1,
                            allow_non_finite: bool = False) -> Path:
    """Checkpoint one trainer (and optionally its history) to a single file.

    The snapshot restores bit-identically: model parameters, both optimiser
    states (moments + step counts), the occupancy grid (density planes,
    counters and probe-RNG state) and the pixel/sample RNG streams.  Under
    ``sparse_updates=True`` the optimisers' deferred lazy-moment decay is
    flushed into the snapshot (canonical plain moment arrays — no per-row
    counters on disk) and the manifest records the mode, which
    :meth:`Trainer.load_state_dict` checks against the restoring config.
    """
    meta = {"scene": trainer.dataset.name, "iteration": int(trainer.iteration),
            "sparse_updates": bool(trainer.config.sparse_updates),
            "backend": str(trainer.config.backend)}
    if metadata:
        meta.update(metadata)
    return save_checkpoint(path, {"trainer": trainer.state_dict(history=history)},
                           kind=TRAINER_KIND, metadata=meta,
                           keep_generations=keep_generations,
                           allow_non_finite=allow_non_finite)


def load_trainer_checkpoint(path: PathLike, trainer: "Trainer",
                            history: Optional["TrainingHistory"] = None
                            ) -> Dict[str, Any]:
    """Restore a :func:`save_trainer_checkpoint` file into ``trainer``.

    ``trainer`` must be freshly built from the same configuration, dataset
    and seed as the checkpointed one.  When ``history`` is given it is
    filled from the stored history (the checkpoint must contain one).
    Returns the checkpoint's metadata dict.
    """
    checkpoint = load_checkpoint(path, expected_kind=TRAINER_KIND)
    try:
        trainer.load_state_dict(checkpoint.payload["trainer"], history=history)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} does not match this trainer: {exc}") from exc
    return checkpoint.metadata
