"""Versioned single-file checkpointing for training state.

A checkpoint is **one** ``.npz`` file: every :class:`numpy.ndarray` leaf of
the state tree is stored as a raw npz member (dtype- and bit-exact), and a
JSON *manifest* — stored inside the same archive under ``__manifest__`` —
records the tree structure, scalar leaves (including the arbitrary-precision
integers of numpy bit-generator states), a format version and caller
metadata.  The format needs no pickle (``allow_pickle=False`` throughout),
so checkpoints are safe to load from untrusted sources and stable across
Python versions.

Round-trip guarantees, which the interrupt/resume differential tests build
on:

* arrays are byte-identical (npz stores raw buffers);
* Python ``float`` scalars round-trip exactly (JSON uses ``repr``-based
  shortest representations that parse back to the same double);
* ``int`` scalars of any magnitude round-trip exactly (JSON integers are
  unbounded), which covers PCG64's 128-bit state words.

Layered on the generic :func:`save_checkpoint` / :func:`load_checkpoint`
pair are trainer-level helpers used by
:class:`~repro.training.fleet.SceneFleet` for preemptible scheduling:
:func:`save_trainer_checkpoint` captures a
:class:`~repro.training.trainer.Trainer` (model parameters, both Adam
optimisers, occupancy grid, RNG streams, iteration counters) plus its
:class:`~repro.training.trainer.TrainingHistory`, and
:func:`load_trainer_checkpoint` restores them into a freshly constructed
trainer so the run continues bit-identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Union

import numpy as np

from repro.backend import materialize

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.training.trainer import Trainer, TrainingHistory

#: Identifies the file format inside the manifest.
CHECKPOINT_FORMAT = "repro-checkpoint"
#: Bumped whenever the manifest layout changes incompatibly.
#: Version history:
#:   1 — original layout (hash grids exposed one Parameter per level, so
#:       optimiser moments were keyed/shaped per level);
#:   2 — each grid's levels are backed by a single master-table Parameter:
#:       optimiser state holds one table-sized moment array per grid.
CHECKPOINT_VERSION = 2
#: Oldest version this library can still restore.  Version-1 optimiser
#: state cannot be mapped onto the master-table parameters, so such files
#: are rejected up front with a clear error instead of failing deep inside
#: the moment-shape validation.
CHECKPOINT_MIN_VERSION = 2
#: npz member that stores the JSON manifest.
_MANIFEST_KEY = "__manifest__"
#: Manifest placeholder key referencing an npz array member.
_ARRAY_KEY = "__npz__"

PathLike = Union[str, Path]


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, malformed, or of an unsupported version."""


@dataclass
class Checkpoint:
    """A loaded checkpoint: the state tree plus its manifest header."""

    payload: Dict[str, Any]
    kind: str
    version: int
    metadata: Dict[str, Any] = field(default_factory=dict)


def _flatten(node: Any, arrays: Dict[str, np.ndarray], path: str) -> Any:
    """Split a state tree into a JSON-able skeleton and an array table.

    Leaves are materialised to host numpy first, so state trees holding a
    non-numpy backend's native arrays checkpoint to the same
    backend-agnostic npz format (restore works under any backend).
    """
    node = materialize(node)
    if isinstance(node, np.ndarray):
        if node.dtype == object:
            # np.savez would silently pickle these, and allow_pickle=False
            # on load would then reject them — an unrestorable checkpoint.
            raise CheckpointError(
                f"object-dtype arrays cannot be checkpointed "
                f"(at {path or '<root>'})")
        key = f"a{len(arrays)}"
        arrays[key] = node
        return {_ARRAY_KEY: key}
    if isinstance(node, np.generic):           # numpy scalar: keep its dtype
        return _flatten(np.asarray(node), arrays, path)
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"checkpoint dict keys must be strings, got {key!r} at "
                    f"{path or '<root>'}")
            if key == _ARRAY_KEY:
                raise CheckpointError(
                    f"{_ARRAY_KEY!r} is reserved by the checkpoint format "
                    f"(at {path or '<root>'})")
            out[key] = _flatten(value, arrays, f"{path}.{key}" if path else key)
        return out
    if isinstance(node, (list, tuple)):
        return [_flatten(value, arrays, f"{path}[{i}]")
                for i, value in enumerate(node)]
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    raise CheckpointError(
        f"unsupported type {type(node).__name__} at {path or '<root>'}")


def _unflatten(node: Any, data) -> Any:
    """Rebuild the state tree, materialising array placeholders from npz."""
    if isinstance(node, dict):
        if set(node.keys()) == {_ARRAY_KEY}:
            return data[node[_ARRAY_KEY]]
        return {key: _unflatten(value, data) for key, value in node.items()}
    if isinstance(node, list):
        return [_unflatten(value, data) for value in node]
    return node


def save_checkpoint(path: PathLike, payload: Dict[str, Any], *,
                    kind: str = "state",
                    metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Write ``payload`` (a nested dict of arrays and scalars) to ``path``.

    ``kind`` tags what the payload holds (e.g. ``"trainer"``) and is checked
    on load; ``metadata`` is an arbitrary JSON-able dict stored alongside —
    use it for provenance (scene name, seed, iteration) rather than state.
    Parent directories are created as needed; the file lands whole, at
    exactly ``path`` (no implicit ``.npz`` suffix appended).

    The write is **atomic**: the archive is built in a same-directory temp
    file and renamed over ``path``, so a crash or preemption mid-save never
    truncates an existing checkpoint — readers see either the old snapshot
    or the new one, which is what lets the fleet checkpoint on a cadence
    without a window where the only recoverable state is a partial file.
    """
    path = Path(path)
    arrays: Dict[str, np.ndarray] = {}
    tree = _flatten(payload, arrays, "")
    manifest = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "kind": str(kind),
        "metadata": _flatten(metadata or {}, arrays, "metadata"),
        "payload": tree,
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp_path = path.parent / f".{path.name}.tmp{os.getpid()}"
    try:
        with open(tmp_path, "wb") as handle:
            np.savez(handle, **{_MANIFEST_KEY: np.array(json.dumps(manifest))},
                     **arrays)
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()
    return path


def load_checkpoint(path: PathLike, *,
                    expected_kind: Optional[str] = None) -> Checkpoint:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` if the file is not a repro checkpoint,
    its version is newer than this library understands, or ``expected_kind``
    does not match the stored kind.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint file not found: {path}")
    try:
        archive = np.load(path, allow_pickle=False)
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"could not read checkpoint {path}: {exc}") from exc
    with archive as data:
        if _MANIFEST_KEY not in data.files:
            raise CheckpointError(f"{path} is not a repro checkpoint "
                                  f"(missing {_MANIFEST_KEY})")
        try:
            manifest = json.loads(str(data[_MANIFEST_KEY][()]))
        except json.JSONDecodeError as exc:
            raise CheckpointError(f"corrupt manifest in {path}: {exc}") from exc
        if manifest.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{path} has unknown format {manifest.get('format')!r}")
        version = int(manifest.get("version", -1))
        if not CHECKPOINT_MIN_VERSION <= version <= CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{path} has unsupported checkpoint version {version} "
                f"(this library supports {CHECKPOINT_MIN_VERSION}.."
                f"{CHECKPOINT_VERSION}; version 1 files predate the "
                f"master-table grid layout and cannot be restored)")
        kind = manifest.get("kind", "state")
        if expected_kind is not None and kind != expected_kind:
            raise CheckpointError(
                f"{path} holds a {kind!r} checkpoint, expected "
                f"{expected_kind!r}")
        try:
            payload = _unflatten(manifest["payload"], data)
            metadata = _unflatten(manifest.get("metadata", {}), data)
        except (KeyError, ValueError) as exc:
            raise CheckpointError(
                f"corrupt checkpoint {path}: {exc}") from exc
    return Checkpoint(payload=payload, kind=kind, version=version,
                      metadata=metadata)


# -- trainer-level helpers ----------------------------------------------------
TRAINER_KIND = "trainer"


def save_trainer_checkpoint(path: PathLike, trainer: "Trainer",
                            history: Optional["TrainingHistory"] = None,
                            metadata: Optional[Dict[str, Any]] = None) -> Path:
    """Checkpoint one trainer (and optionally its history) to a single file.

    The snapshot restores bit-identically: model parameters, both optimiser
    states (moments + step counts), the occupancy grid (density planes,
    counters and probe-RNG state) and the pixel/sample RNG streams.  Under
    ``sparse_updates=True`` the optimisers' deferred lazy-moment decay is
    flushed into the snapshot (canonical plain moment arrays — no per-row
    counters on disk) and the manifest records the mode, which
    :meth:`Trainer.load_state_dict` checks against the restoring config.
    """
    meta = {"scene": trainer.dataset.name, "iteration": int(trainer.iteration),
            "sparse_updates": bool(trainer.config.sparse_updates),
            "backend": str(trainer.config.backend)}
    if metadata:
        meta.update(metadata)
    return save_checkpoint(path, {"trainer": trainer.state_dict(history=history)},
                           kind=TRAINER_KIND, metadata=meta)


def load_trainer_checkpoint(path: PathLike, trainer: "Trainer",
                            history: Optional["TrainingHistory"] = None
                            ) -> Dict[str, Any]:
    """Restore a :func:`save_trainer_checkpoint` file into ``trainer``.

    ``trainer`` must be freshly built from the same configuration, dataset
    and seed as the checkpointed one.  When ``history`` is given it is
    filled from the stored history (the checkpoint must contain one).
    Returns the checkpoint's metadata dict.
    """
    checkpoint = load_checkpoint(path, expected_kind=TRAINER_KIND)
    try:
        trainer.load_state_dict(checkpoint.payload["trainer"], history=history)
    except (KeyError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint {path} does not match this trainer: {exc}") from exc
    return checkpoint.metadata
