"""Checkpoint/restore subsystem.

Serialises training state — model parameters, optimiser moments, occupancy
grids, RNG streams, loss histories — to versioned single-file ``.npz``
checkpoints with an embedded JSON manifest, and restores it bit-identically
so interrupted runs continue exactly where they left off.  Used directly
for single-scene trainers and by
:class:`~repro.training.fleet.SceneFleet`'s preemptible scheduling
(``checkpoint_every`` / ``resume()`` / ``max_resident_scenes`` eviction).
"""

from repro.io.checkpoint import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_MIN_VERSION,
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointIOStats,
    NonFiniteCheckpointError,
    generation_path,
    io_stats,
    load_checkpoint,
    load_trainer_checkpoint,
    reset_io_stats,
    save_checkpoint,
    save_trainer_checkpoint,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_MIN_VERSION",
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointIOStats",
    "NonFiniteCheckpointError",
    "generation_path",
    "io_stats",
    "load_checkpoint",
    "load_trainer_checkpoint",
    "reset_io_stats",
    "save_checkpoint",
    "save_trainer_checkpoint",
]
