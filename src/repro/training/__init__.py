"""Training pipeline: the six-step loop, workload profiling and metrics.

* :mod:`repro.training.profiler` — static workload accounting: how many grid
  accesses, bytes and FLOPs each pipeline step performs per iteration.  The
  device models and the accelerator simulator consume these counts, which is
  how paper-scale runtimes are estimated even though the Python optimisation
  itself runs at reduced scale (see DESIGN.md §4).
* :mod:`repro.training.trainer` — the actual optimisation loop used for the
  PSNR experiments (Tables 1, 2, 4 and Fig. 5).
* :mod:`repro.training.metrics` — test-view evaluation of RGB and depth PSNR.
* :mod:`repro.training.fleet` — multi-scene orchestration: round-robin or
  process-pool training of many scenes under one shared configuration.
"""

from repro.training.profiler import (
    PipelineStep,
    PhaseTimer,
    TrainPhase,
    StepWorkload,
    IterationWorkload,
    WorkloadScale,
    build_iteration_workload,
    profile_iteration,
)
from repro.training.trainer import Trainer, TrainingHistory, TrainingResult, train_scene
from repro.training.metrics import evaluate_model, EvaluationResult
from repro.training.fleet import FleetResult, SceneFleet, train_fleet

__all__ = [
    "PipelineStep",
    "PhaseTimer",
    "TrainPhase",
    "StepWorkload",
    "IterationWorkload",
    "WorkloadScale",
    "build_iteration_workload",
    "profile_iteration",
    "Trainer",
    "TrainingHistory",
    "TrainingResult",
    "train_scene",
    "evaluate_model",
    "EvaluationResult",
    "FleetResult",
    "SceneFleet",
    "train_fleet",
]
