"""Static workload accounting for one training iteration.

The paper's runtime analyses (Figs. 4 and 7, Tables 1/2/4/5, Figs. 16-18)
are about *where the work is*: how many embedding-grid accesses, bytes and
FLOPs each step of the training pipeline performs.  This module derives those
counts from an :class:`~repro.core.config.Instant3DConfig` and a
:class:`WorkloadScale`, without running the optimisation, so that paper-scale
workloads (hundreds of thousands of point queries per iteration) can be fed
to the device models and the accelerator simulator.

Pipeline steps follow the paper's numbering:

=====================  =======================================================
``SAMPLE_PIXELS``      Step ❶ — random pixel batch (host SoC)
``MAP_RAYS``           Step ❷ — pixels → rays (host SoC)
``GRID_FORWARD``       Step ❸-① — embedding-grid interpolation (per branch)
``MLP_FORWARD``        Step ❸-② — small MLP heads
``VOLUME_RENDER``      Step ❹ — volume rendering (host SoC)
``LOSS``               Step ❺ — squared-error loss (host SoC)
``MLP_BACKWARD``       back-propagation of Step ❸-②
``GRID_BACKWARD``      back-propagation of Step ❸-① (per branch)
``PARAM_UPDATE``       optimiser update of MLP weights
=====================  =======================================================
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.config import Instant3DConfig
from repro.grid.hash_encoding import FEATURE_BYTES, HashGridConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.nerf.occupancy import OccupancyGrid


# ---------------------------------------------------------------------------
# Measured per-phase wall time (complements the static counts below).
# ---------------------------------------------------------------------------

class TrainPhase:
    """Symbolic names of the measured training-step phases.

    ``SAMPLING`` is the pixel-batch draw (Step ❶, whatever the configured
    ray schedule), kept separate from ``FORWARD`` so scheduler overhead —
    tile draws, occupancy probing, batch reordering — is attributed instead
    of hiding inside the forward pass.  ``BACKWARD_SCATTER`` covers the
    gradient path from the renderer's per-sample gradients down to the
    parameter gradients (the hash-table scatter included);
    ``OPTIMIZER_STEP`` the Adam/SGD updates.  Splitting the two is what lets
    the throughput benchmark attribute the sparse-update win to the phase it
    lands in.
    """

    SAMPLING = "sampling"
    FORWARD = "forward"
    LOSS = "loss"
    BACKWARD_SCATTER = "backward_scatter"
    OPTIMIZER_STEP = "optimizer_step"
    ORDER = (SAMPLING, FORWARD, LOSS, BACKWARD_SCATTER, OPTIMIZER_STEP)


class PhaseTimer:
    """Accumulating wall-clock timer for the training-step phases.

    Attach one to a :class:`~repro.training.trainer.Trainer` via its
    ``profiler`` attribute and every ``train_step`` splits its wall time
    into the :class:`TrainPhase` buckets; ``seconds``/``calls`` accumulate
    until :meth:`reset`.  Overhead is two ``perf_counter`` calls per phase,
    and a detached trainer (``profiler=None``) pays a single attribute
    check, so the hot loop is unaffected by default.

    The timer is **thread-safe**: each thread accumulates into its own
    buckets (no locking on the hot path beyond first-use registration), and
    the read-side APIs — :attr:`seconds`, :attr:`calls`, :meth:`summary`,
    :meth:`mean_ms`, :meth:`total_seconds` — merge across threads.  One
    timer can therefore be shared by the serving layer's worker threads
    without losing or corrupting counts.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._register_lock = threading.Lock()
        #: One ``(seconds, calls)`` dict pair per thread that ever recorded.
        self._buckets: List[Tuple[Dict[str, float], Dict[str, int]]] = []

    def _thread_buckets(self) -> Tuple[Dict[str, float], Dict[str, int]]:
        buckets = getattr(self._local, "buckets", None)
        if buckets is None:
            buckets = ({}, {})
            with self._register_lock:
                self._buckets.append(buckets)
            self._local.buckets = buckets
        return buckets

    @property
    def seconds(self) -> Dict[str, float]:
        """Per-phase accumulated seconds, merged across threads."""
        with self._register_lock:
            buckets = list(self._buckets)
        merged: Dict[str, float] = {}
        for seconds, _ in buckets:
            for name, value in seconds.items():
                merged[name] = merged.get(name, 0.0) + value
        return merged

    @property
    def calls(self) -> Dict[str, int]:
        """Per-phase call counts, merged across threads."""
        with self._register_lock:
            buckets = list(self._buckets)
        merged: Dict[str, int] = {}
        for _, calls in buckets:
            for name, value in calls.items():
                merged[name] = merged.get(name, 0) + value
        return merged

    @contextmanager
    def phase(self, name: str):
        """Context manager accumulating the enclosed block's wall time."""
        seconds, calls = self._thread_buckets()
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            seconds[name] = seconds.get(name, 0.0) + elapsed
            calls[name] = calls.get(name, 0) + 1

    def mean_ms(self, name: str) -> float:
        """Mean milliseconds per call of ``name`` (0.0 if never recorded)."""
        seconds = self.seconds
        calls = self.calls.get(name, 0)
        if not calls:
            return 0.0
        return 1e3 * seconds[name] / calls

    def total_seconds(self) -> float:
        return float(sum(self.seconds.values()))

    def reset(self) -> None:
        """Clear every thread's accumulators (registrations are kept)."""
        with self._register_lock:
            for seconds, calls in self._buckets:
                seconds.clear()
                calls.clear()

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-phase ``{seconds, calls, mean_ms}`` (JSON-able, in phase order),
        merged across every thread that recorded into this timer."""
        seconds = self.seconds
        calls = self.calls
        names = [p for p in TrainPhase.ORDER if p in seconds]
        names += [p for p in seconds if p not in names]
        return {
            name: {
                "seconds": seconds[name],
                "calls": calls[name],
                "mean_ms": (1e3 * seconds[name] / calls[name]
                            if calls[name] else 0.0),
            }
            for name in names
        }


class PipelineStep:
    """Symbolic names of the training-pipeline steps."""

    SAMPLE_PIXELS = "sample_pixels"
    MAP_RAYS = "map_rays"
    GRID_FORWARD = "grid_forward"
    MLP_FORWARD = "mlp_forward"
    VOLUME_RENDER = "volume_render"
    LOSS = "loss"
    MLP_BACKWARD = "mlp_backward"
    GRID_BACKWARD = "grid_backward"
    PARAM_UPDATE = "param_update"

    #: Steps belonging to the paper's bottleneck: Step ❸-① and its backward.
    GRID_STEPS = (GRID_FORWARD, GRID_BACKWARD)
    #: Steps executed on the host SoC in the accelerator system (Fig. 11).
    HOST_STEPS = (SAMPLE_PIXELS, MAP_RAYS, VOLUME_RENDER, LOSS, PARAM_UPDATE)
    ORDER = (
        SAMPLE_PIXELS,
        MAP_RAYS,
        GRID_FORWARD,
        MLP_FORWARD,
        VOLUME_RENDER,
        LOSS,
        MLP_BACKWARD,
        GRID_BACKWARD,
        PARAM_UPDATE,
    )


@dataclass(frozen=True)
class WorkloadScale:
    """Size of one training run: per-iteration batch and iteration count."""

    batch_pixels: int
    samples_per_ray: int
    n_iterations: int

    def __post_init__(self) -> None:
        if self.batch_pixels < 1 or self.samples_per_ray < 1 or self.n_iterations < 1:
            raise ValueError("workload dimensions must be positive")

    @property
    def points_per_iteration(self) -> int:
        """Grid/MLP point queries per iteration (the paper's ">200,000")."""
        return self.batch_pixels * self.samples_per_ray

    @staticmethod
    def paper_scale(n_iterations: int = 1024) -> "WorkloadScale":
        """The Instant-NGP training workload the paper profiles.

        4096 pixels per batch and ~48 occupancy-pruned samples per ray give
        ~197k point queries per iteration, matching the paper's ">200,000
        interpolations per training iteration" statement.
        """
        return WorkloadScale(batch_pixels=4096, samples_per_ray=48,
                             n_iterations=n_iterations)

    @staticmethod
    def from_config(config: Instant3DConfig, n_iterations: int) -> "WorkloadScale":
        """Workload of the reduced-scale Python training loop itself."""
        return WorkloadScale(
            batch_pixels=config.batch_pixels,
            samples_per_ray=config.n_samples_per_ray,
            n_iterations=n_iterations,
        )


@dataclass
class StepWorkload:
    """Operation counts of one pipeline step in one training iteration."""

    step: str
    branch: Optional[str] = None          # "density", "color" or None
    flops: float = 0.0
    grid_accesses: float = 0.0            # individual vertex-embedding reads/writes
    grid_bytes: float = 0.0               # bytes moved to/from the hash tables
    other_bytes: float = 0.0              # non-grid memory traffic
    update_fraction: float = 1.0          # fraction of iterations this step runs

    @property
    def label(self) -> str:
        return f"{self.step}[{self.branch}]" if self.branch else self.step

    def effective(self, attribute: str) -> float:
        """An attribute scaled by the step's update fraction."""
        return getattr(self, attribute) * self.update_fraction


@dataclass
class IterationWorkload:
    """All step workloads of a single training iteration plus run metadata.

    ``keep_fraction`` records the occupancy-culled share of the dense
    ``rays x samples`` product that actually reaches the embedding grids and
    MLP heads (1.0 = dense).  The per-step counts in ``steps`` are already
    scaled by it, so device and accelerator models price the culled workload
    without further adjustment.
    """

    config: Instant3DConfig
    scale: WorkloadScale
    steps: List[StepWorkload] = field(default_factory=list)
    keep_fraction: float = 1.0

    def by_step(self, step: str) -> List[StepWorkload]:
        return [s for s in self.steps if s.step == step]

    def branch_steps(self, branch: str) -> List[StepWorkload]:
        return [s for s in self.steps if s.branch == branch]

    def total(self, attribute: str, steps: Optional[List[str]] = None) -> float:
        """Sum an attribute over (a subset of) steps, weighted by update fraction."""
        selected = self.steps if steps is None else [s for s in self.steps if s.step in steps]
        return float(sum(s.effective(attribute) for s in selected))

    @property
    def grid_table_bytes(self) -> Dict[str, int]:
        """Hash-table storage footprint per branch.

        Uses the decomposed per-branch feature width (half the baseline
        feature budget per branch, see :func:`build_iteration_workload`), so
        the two branches of the 1:1 configuration together occupy the same
        storage as the coupled baseline grid.
        """
        features = max(1, self.config.grid.n_features_per_level // 2)
        return {
            "density": grid_table_entries(self.config.density_grid_config)
            * features * FEATURE_BYTES,
            "color": grid_table_entries(self.config.color_grid_config)
            * features * FEATURE_BYTES,
        }

    @property
    def points_per_iteration(self) -> int:
        """The dense ``rays x samples`` point-query product."""
        return self.scale.points_per_iteration

    @property
    def culled_points_per_iteration(self) -> int:
        """Point queries that actually reach the grids/MLPs after culling."""
        return int(round(self.scale.points_per_iteration * self.keep_fraction))

    @property
    def queries_saved_per_iteration(self) -> int:
        """Point queries skipped per iteration thanks to occupancy culling."""
        return self.points_per_iteration - self.culled_points_per_iteration


# ---------------------------------------------------------------------------
# Per-config count helpers (no table allocation needed).
# ---------------------------------------------------------------------------

def grid_table_entries(grid: HashGridConfig) -> int:
    """Total hash-table entries across levels (dense levels stored exactly)."""
    total = 0
    for level in range(grid.n_levels):
        resolution = grid.level_resolution(level)
        n_vertices = (resolution + 1) ** 3
        total += min(n_vertices, grid.max_table_entries)
    return total


def grid_storage_bytes(grid: HashGridConfig) -> int:
    """FP16 bytes of embedding storage for a grid config."""
    return grid_table_entries(grid) * grid.n_features_per_level * FEATURE_BYTES


def _mlp_flops(in_features: int, hidden_width: int, hidden_layers: int,
               out_features: int) -> int:
    """Forward FLOPs of one MLP head per input point (2 FLOPs per MAC)."""
    widths = [in_features] + [hidden_width] * hidden_layers + [out_features]
    return sum(2 * a * b + b for a, b in zip(widths[:-1], widths[1:]))


def build_iteration_workload(config: Instant3DConfig,
                             scale: Optional[WorkloadScale] = None,
                             n_iterations: int = 1024,
                             occupancy: Optional["OccupancyGrid"] = None,
                             keep_fraction: Optional[float] = None) -> IterationWorkload:
    """Derive the per-iteration operation counts of a training configuration.

    The decomposition convention follows DESIGN.md: the decoupled branches
    split the baseline grid's feature budget (each branch carries
    ``F / 2`` features per level when the baseline carries ``F``), so the
    1:1 / 1:1 configuration performs the same total embedding work as the
    coupled Instant-NGP grid it stands in for.

    Occupancy culling enters through ``occupancy`` (an
    :class:`~repro.nerf.occupancy.OccupancyGrid`, whose
    ``expected_queries_per_iteration`` supplies the kept fraction) or an
    explicit ``keep_fraction`` (e.g. the *measured*
    ``TrainingHistory.mean_keep_fraction`` of a real culled run).  Only the
    per-point steps scale with it — the grid interpolations/backwards and
    the MLP heads, which is exactly the work the compacting
    :class:`~repro.nerf.pipeline.RenderPipeline` skips.  Host-side steps
    (pixel sampling, ray setup, volume rendering over the dense planes,
    loss, parameter update) stay at the dense size.  This is how the paper's
    ">200,000 interpolations per iteration" figure arises: 4096 rays x 48
    samples already *net* of the occupancy grid's pruning.
    """
    if occupancy is not None and keep_fraction is not None:
        raise ValueError("pass either occupancy or keep_fraction, not both")
    if scale is None:
        scale = WorkloadScale.paper_scale(n_iterations=n_iterations)
    if occupancy is not None:
        keep_fraction = (occupancy.expected_queries_per_iteration(
            scale.batch_pixels, scale.samples_per_ray)
            / scale.points_per_iteration)
    if keep_fraction is None:
        keep_fraction = 1.0
    if not (0.0 <= keep_fraction <= 1.0):
        raise ValueError("keep_fraction must be in [0, 1]")
    points = scale.points_per_iteration * keep_fraction
    pixels = scale.batch_pixels
    samples = scale.samples_per_ray

    density_grid = config.density_grid_config
    color_grid = config.color_grid_config
    # Feature split between the decomposed branches (see DESIGN.md §1).
    branch_features = max(1, density_grid.n_features_per_level // 2)

    workload = IterationWorkload(config=config, scale=scale, steps=[],
                                 keep_fraction=float(keep_fraction))

    # Step ❶ / ❷ — host-side pixel sampling and ray setup.
    workload.steps.append(StepWorkload(
        step=PipelineStep.SAMPLE_PIXELS,
        flops=12.0 * pixels,
        other_bytes=16.0 * pixels,
    ))
    workload.steps.append(StepWorkload(
        step=PipelineStep.MAP_RAYS,
        flops=40.0 * pixels,
        other_bytes=24.0 * pixels,
    ))

    # Step ❸-① — embedding-grid interpolation, one entry per branch.
    for branch, grid, update_freq in (
        ("density", density_grid, config.density_update_freq),
        ("color", color_grid, config.color_update_freq),
    ):
        accesses = points * 8.0 * grid.n_levels
        bytes_per_access = branch_features * FEATURE_BYTES
        interp_flops = points * grid.n_levels * (8.0 * branch_features * 2.0 + 30.0)
        workload.steps.append(StepWorkload(
            step=PipelineStep.GRID_FORWARD,
            branch=branch,
            flops=interp_flops,
            grid_accesses=accesses,
            grid_bytes=accesses * bytes_per_access,
            update_fraction=1.0,          # forward always runs
        ))
        workload.steps.append(StepWorkload(
            step=PipelineStep.GRID_BACKWARD,
            branch=branch,
            flops=interp_flops,
            # Back-propagation touches each vertex twice — a gradient read
            # plus an update write — matching the backward-phase access
            # count (reads + writes) the grid-core simulator measures its
            # accesses-per-cycle rate against.  ``grid_bytes`` stays
            # per-direction: the energy model charges reads and writes
            # separately from it.
            grid_accesses=2.0 * accesses,
            grid_bytes=accesses * bytes_per_access,
            update_fraction=update_freq,  # backward skipped on non-update iterations
        ))

    # Step ❸-② — the two small MLP heads (forward) and their backward.
    density_in = density_grid.n_levels * branch_features
    color_in = color_grid.n_levels * branch_features + config.sh_degree ** 2
    mlp_forward_flops = points * (
        _mlp_flops(density_in, config.mlp_hidden_width, config.mlp_hidden_layers, 1)
        + _mlp_flops(color_in, config.mlp_hidden_width, config.mlp_hidden_layers, 3)
    )
    workload.steps.append(StepWorkload(
        step=PipelineStep.MLP_FORWARD,
        flops=mlp_forward_flops,
        other_bytes=points * 4.0 * (density_in + color_in),
    ))
    workload.steps.append(StepWorkload(
        step=PipelineStep.MLP_BACKWARD,
        flops=2.0 * mlp_forward_flops,
        other_bytes=points * 4.0 * (density_in + color_in),
    ))

    # Step ❹ / ❺ — volume rendering and loss on the host.
    workload.steps.append(StepWorkload(
        step=PipelineStep.VOLUME_RENDER,
        flops=pixels * samples * 18.0,
        other_bytes=pixels * samples * 16.0,
    ))
    workload.steps.append(StepWorkload(
        step=PipelineStep.LOSS,
        flops=pixels * 8.0,
        other_bytes=pixels * 12.0,
    ))

    # Optimiser update of the MLP weights (grid updates are accounted in
    # GRID_BACKWARD since they happen in the same scatter pass).
    mlp_params = (
        _mlp_flops(density_in, config.mlp_hidden_width, config.mlp_hidden_layers, 1) // 2
        + _mlp_flops(color_in, config.mlp_hidden_width, config.mlp_hidden_layers, 3) // 2
    )
    workload.steps.append(StepWorkload(
        step=PipelineStep.PARAM_UPDATE,
        flops=10.0 * mlp_params,
        other_bytes=8.0 * mlp_params,
    ))
    return workload


#: Alias matching the paper-facing name for per-iteration workload profiling.
profile_iteration = build_iteration_workload
