"""Multi-scene training orchestration with preemptible scheduling.

The paper evaluates per-scene training, but the production north star is a
service that keeps many scenes in flight at once (think one reconstruction
job per connected AR/VR user).  :class:`SceneFleet` trains and evaluates a
set of scenes under one shared configuration:

* **round-robin scheduling** (in-process): every scene owns an independent
  trainer and the fleet interleaves fixed-size slices of iterations across
  scenes, so progress is balanced and any scene's intermediate state can be
  inspected mid-run;
* **optional multiprocessing workers**: with ``n_workers > 1`` whole scenes
  are dispatched to a process pool instead.  Both schedules produce
  bit-identical :class:`~repro.training.trainer.TrainingResult`s to running
  :func:`~repro.training.trainer.train_scene` per scene with the same seed:
  the trainer's pixel/sample streams are derived from the scene name (so
  distinctly named scenes never share them — duplicate names are rejected),
  while model *initialisation* depends on the seed alone and is therefore
  common to all scenes of a fleet — exactly as it would be across solo
  ``train_scene(seed=s)`` calls.  If a pool cannot be spawned the fleet
  falls back to in-process execution.
* **preemption and resume**: with ``checkpoint_dir`` set, every scene's
  trainer is checkpointed to one ``.npz`` file (every ``checkpoint_every``
  iterations, on eviction, and at the end of the run).  A *new* fleet built
  over the same datasets/config/seed can then :meth:`resume` — restoring
  models, optimiser moments, occupancy grids, RNG streams and histories —
  and the finished run is **bit-identical** to one that was never
  interrupted (enforced by differential tests, the same discipline as the
  fused-engine and culled-pipeline reference paths).
* **scene eviction**: ``max_resident_scenes`` bounds how many trainers are
  resident in memory at once; idle scenes are checkpointed to disk and
  transparently reloaded when the round-robin scheduler returns to them.
  Eviction is most-recently-run-first, which for a cyclic schedule evicts
  the scene whose next slice is farthest away.

Results are aggregated into a :class:`FleetResult` with mean PSNRs and a
scenes-per-hour throughput figure used by ``benchmarks/bench_throughput.py``.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.config import Instant3DConfig
from repro.datasets.dataset import SceneDataset
from repro.io import CheckpointError
from repro.serving.residency import ResidencyManager, SceneSlot, validate_scene_name
from repro.training.trainer import TrainingResult, train_scene


@dataclass
class FleetResult:
    """Aggregated outcome of one fleet run."""

    scene_names: List[str]
    results: List[TrainingResult]
    wall_clock_s: float
    n_workers: int
    n_iterations: int
    schedule: str = "round_robin"           # "round_robin" or "process_pool"
    #: Trainers checkpointed to disk and dropped from memory during the run
    #: (0 unless ``max_resident_scenes`` forced evictions).
    evictions: int = 0
    #: High-water mark of simultaneously resident trainers during the run
    #: (0 for the process-pool schedule, which holds no in-process trainers).
    peak_resident_scenes: int = 0
    #: Wall time spent writing / reading scene checkpoints during the run.
    checkpoint_save_ms: float = 0.0
    checkpoint_load_ms: float = 0.0

    @property
    def n_scenes(self) -> int:
        return len(self.results)

    @property
    def mean_rgb_psnr(self) -> float:
        return sum(r.rgb_psnr for r in self.results) / max(self.n_scenes, 1)

    @property
    def mean_depth_psnr(self) -> float:
        return sum(r.depth_psnr for r in self.results) / max(self.n_scenes, 1)

    @property
    def scenes_per_hour(self) -> float:
        """End-to-end fleet throughput (train + eval), scenes per hour."""
        if self.wall_clock_s <= 0:
            return float("inf")
        return self.n_scenes * 3600.0 / self.wall_clock_s

    @property
    def mean_occupancy_fraction(self) -> float:
        """Mean end-of-run occupied-cell fraction across scenes (1.0 dense)."""
        return (sum(r.final_occupancy_fraction for r in self.results)
                / max(self.n_scenes, 1))

    @property
    def mean_keep_fraction(self) -> float:
        """Fleet-wide fraction of the dense sample product actually queried."""
        total = sum(r.queries_total for r in self.results)
        kept = sum(r.queries_kept for r in self.results)
        if total == 0:
            return 1.0
        return kept / total

    def result_for(self, scene_name: str) -> TrainingResult:
        return self.results[self.scene_names.index(scene_name)]

    # -- numerical-health ledger (zeros when guards were disabled) ---------
    @property
    def guard_trips(self) -> int:
        """Divergence-guard trips summed over every scene's run."""
        return int(sum(r.guard_trips for r in self.results))

    @property
    def rollbacks(self) -> int:
        """Snapshot rollbacks performed fleet-wide."""
        return int(sum(r.rollbacks for r in self.results))

    @property
    def lr_backoffs(self) -> int:
        """LR backoffs applied while recovering, fleet-wide."""
        return int(sum(r.lr_backoffs for r in self.results))

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by benchmark reports."""
        return {
            "n_scenes": float(self.n_scenes),
            "n_iterations": float(self.n_iterations),
            "mean_rgb_psnr": self.mean_rgb_psnr,
            "mean_depth_psnr": self.mean_depth_psnr,
            "wall_clock_s": self.wall_clock_s,
            "scenes_per_hour": self.scenes_per_hour,
            "mean_occupancy_fraction": self.mean_occupancy_fraction,
            "mean_keep_fraction": self.mean_keep_fraction,
            "evictions": float(self.evictions),
            "peak_resident_scenes": float(self.peak_resident_scenes),
            "checkpoint_save_ms": self.checkpoint_save_ms,
            "checkpoint_load_ms": self.checkpoint_load_ms,
            "guard_trips": float(self.guard_trips),
            "rollbacks": float(self.rollbacks),
            "lr_backoffs": float(self.lr_backoffs),
        }


@dataclass
class _SceneJob:
    """Picklable description of one scene's training run."""

    dataset: SceneDataset
    config: Instant3DConfig
    n_iterations: int
    seed: int
    eval_every: Optional[int]
    eval_views: int
    eval_samples: int


def _run_scene_job(job: _SceneJob) -> TrainingResult:
    """Train one scene to completion (used by the process-pool path)."""
    return train_scene(job.dataset, job.config, job.n_iterations, seed=job.seed,
                       eval_every=job.eval_every, eval_views=job.eval_views,
                       eval_samples=job.eval_samples)


@dataclass(eq=False)
class _SceneSlot(SceneSlot):
    """Round-robin bookkeeping for one scene.

    Extends the shared :class:`~repro.serving.residency.SceneSlot` (which
    carries the residency state — trainer, history, checkpoint bookkeeping)
    with the fleet scheduler's per-run progress fields.
    """

    remaining: Optional[int] = None
    done: bool = False


class SceneFleet:
    """Trains and evaluates many scenes under one shared configuration.

    Parameters
    ----------
    datasets:
        Scene datasets to train on (one independent model per scene).
        Scene names must be unique: per-scene RNG streams are derived from
        the name, so duplicates would silently train on identical
        pixel/sample streams (and ``FleetResult.result_for`` could only
        ever find the first).
    config:
        Shared training configuration.
    seed:
        Base seed.  Training RNG streams are derived per scene name (model
        initialisation is seed-only, shared across scenes), so results match
        :func:`~repro.training.trainer.train_scene` run per scene with this
        seed.
    n_workers:
        0 or 1 trains in-process with round-robin scheduling; larger values
        dispatch whole scenes to a ``multiprocessing`` pool of that size.
        Checkpointing and eviction are round-robin features: when
        ``checkpoint_dir`` is set the fleet always schedules in-process.
    slice_iterations:
        Round-robin slice width: how many consecutive iterations one scene
        runs before the scheduler moves to the next scene.
    checkpoint_every:
        Checkpoint each scene whenever it has accumulated this many
        iterations since its last checkpoint (requires ``checkpoint_dir``).
        Regardless of this knob, every scene is checkpointed at the end of
        the run and when evicted, so an interrupted ``train()`` can always
        be :meth:`resume`-d from its last completed run.
    checkpoint_dir:
        Directory for per-scene checkpoint files (``<scene>.ckpt.npz``),
        created on demand.  Enables :meth:`resume` and eviction.
    max_resident_scenes:
        Upper bound on simultaneously resident trainers (requires
        ``checkpoint_dir``).  Over-cap scenes are checkpointed to disk and
        reloaded on their next slice, bounding memory to
        ``max_resident_scenes`` models regardless of fleet size.
    keep_generations:
        Checkpoint generations retained per scene (``N > 1`` rotates the
        previous file to ``<scene>.ckpt.npz.g1`` etc., so a torn write can
        fall back to an older verified snapshot — see
        ``docs/reliability.md``).
    """

    def __init__(self, datasets: Sequence[SceneDataset], config: Instant3DConfig,
                 seed: int = 0, n_workers: int = 0, slice_iterations: int = 25,
                 checkpoint_every: Optional[int] = None,
                 checkpoint_dir: Optional[Union[str, Path]] = None,
                 max_resident_scenes: Optional[int] = None,
                 keep_generations: int = 1):
        if not datasets:
            raise ValueError("SceneFleet needs at least one dataset")
        if slice_iterations < 1:
            raise ValueError("slice_iterations must be >= 1")
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        names = [dataset.name for dataset in datasets]
        duplicates = sorted(name for name, count in Counter(names).items()
                            if count > 1)
        if duplicates:
            raise ValueError(
                f"duplicate scene names in fleet: {duplicates} — per-scene "
                "RNG streams are derived from the scene name, so duplicates "
                "would train on identical pixel/sample streams")
        for name in names:
            validate_scene_name(name)
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1 or None")
        if max_resident_scenes is not None and max_resident_scenes < 1:
            raise ValueError("max_resident_scenes must be >= 1 or None")
        if checkpoint_dir is None and (checkpoint_every is not None
                                       or max_resident_scenes is not None):
            raise ValueError(
                "checkpoint_every/max_resident_scenes require a checkpoint_dir")
        self.datasets = list(datasets)
        self.config = config
        self.seed = seed
        self.n_workers = n_workers
        self.slice_iterations = slice_iterations
        self.checkpoint_every = checkpoint_every
        self.checkpoint_dir = (Path(checkpoint_dir)
                               if checkpoint_dir is not None else None)
        self.max_resident_scenes = max_resident_scenes
        # The residency mechanics (trainer build/restore, staleness-aware
        # checkpoint saves, eviction accounting) are shared with the serving
        # layer; the fleet keeps only its cyclic victim policy on top.
        self._residency = ResidencyManager(
            config, seed=seed, checkpoint_dir=self.checkpoint_dir,
            max_resident_scenes=max_resident_scenes,
            keep_generations=keep_generations)

    @property
    def evictions(self) -> int:
        """Cumulative trainer evictions across this fleet's runs."""
        return self._residency.evictions

    @property
    def scene_names(self) -> List[str]:
        return [dataset.name for dataset in self.datasets]

    # -- checkpoint plumbing -------------------------------------------------
    def checkpoint_path(self, scene_name: str) -> Path:
        """Checkpoint file for one scene (requires ``checkpoint_dir``)."""
        if self.checkpoint_dir is None:
            raise ValueError("this fleet has no checkpoint_dir")
        return self.checkpoint_dir / f"{scene_name}.ckpt.npz"

    def _save_scene(self, slot: _SceneSlot) -> None:
        self._residency.save(slot)

    def _acquire(self, slot: _SceneSlot) -> None:
        """Make the slot's trainer resident (build fresh or restore)."""
        self._residency.acquire(slot)

    def _release(self, slot: _SceneSlot) -> None:
        """Drop a resident trainer whose state is already safe (or final)."""
        self._residency.release(slot)

    def _evict(self, slot: _SceneSlot) -> None:
        """Checkpoint a resident trainer to disk and drop it from memory.

        Routed through ``self._release`` so residency instrumentation that
        wraps acquire/release observes eviction drops too.
        """
        self._residency.evict(slot, release=self._release)

    def _make_room(self, slots: List[_SceneSlot], incoming: int) -> None:
        """Evict residents so acquiring ``incoming`` stays within the cap.

        Runs *before* the incoming trainer is built, so peak residency never
        exceeds ``max_resident_scenes`` — not even transiently during a
        slice.  Victims are chosen by distance to their next round-robin
        turn, farthest first (finished scenes count as farthest of all) —
        the cyclic-access analogue of the manager's default LRU policy.
        """
        n = len(slots)
        order = {id(slot): index for index, slot in enumerate(slots)}

        def turns_until_needed(slot: _SceneSlot) -> int:
            if slot.done:
                return n + 1
            return (order[id(slot)] - incoming) % n

        self._residency.make_room(
            slots[incoming], candidates=slots,
            victim_key=lambda slot: -turns_until_needed(slot),
            evict=self._evict)

    # -- scheduling strategies ----------------------------------------------
    def _jobs(self, n_iterations: int, eval_every: Optional[int],
              eval_views: int, eval_samples: int) -> List[_SceneJob]:
        return [
            _SceneJob(dataset=dataset, config=self.config,
                      n_iterations=n_iterations, seed=self.seed,
                      eval_every=eval_every, eval_views=eval_views,
                      eval_samples=eval_samples)
            for dataset in self.datasets
        ]

    def _train_round_robin(self, n_iterations: int, eval_every: Optional[int],
                           eval_views: int, eval_samples: int,
                           resume: bool = False) -> List[TrainingResult]:
        """Interleave slices of iterations across all scenes' trainers.

        With ``resume=True`` every scene whose checkpoint file exists is
        restored from it and trains only its remaining
        ``n_iterations - iteration`` iterations; the rest start fresh.
        """
        slots = [_SceneSlot(dataset=dataset) for dataset in self.datasets]
        if resume:
            for slot in slots:
                slot.on_disk = self.checkpoint_path(slot.dataset.name).exists()
        while not all(slot.done for slot in slots):
            for idx, slot in enumerate(slots):
                if slot.done:
                    continue
                self._make_room(slots, idx)
                self._acquire(slot)
                if slot.remaining is None:
                    completed = slot.trainer.iteration
                    if completed > n_iterations:
                        raise CheckpointError(
                            f"scene {slot.dataset.name!r} was checkpointed at "
                            f"iteration {completed}, beyond the requested "
                            f"{n_iterations}")
                    slot.remaining = n_iterations - completed
                if slot.remaining > 0:
                    steps = min(self.slice_iterations, slot.remaining)
                    slot.trainer.run_steps(steps, slot.history,
                                           eval_every=eval_every,
                                           eval_views=eval_views,
                                           eval_samples=eval_samples)
                    slot.remaining -= steps
                    if (self.checkpoint_every is not None
                            and slot.trainer.iteration - slot.last_checkpoint_iteration
                            >= self.checkpoint_every):
                        self._save_scene(slot)
                slot.done = slot.remaining == 0
        results = []
        for idx, slot in enumerate(slots):
            self._make_room(slots, idx)
            self._acquire(slot)
            if self.checkpoint_dir is not None and (
                    not slot.on_disk
                    or slot.trainer.iteration != slot.last_checkpoint_iteration):
                self._save_scene(slot)
            results.append(slot.trainer.finalize(slot.history,
                                                 eval_views=eval_views,
                                                 eval_samples=eval_samples))
            if self.max_resident_scenes is not None:
                # The result is captured; free the model without re-saving
                # (the final checkpoint above already holds this state).
                self._release(slot)
        return results

    def _train_process_pool(self, jobs: List[_SceneJob]) -> Optional[List[TrainingResult]]:
        """Run whole scenes in a worker pool; None if the pool is unavailable."""
        import multiprocessing

        try:
            pool = multiprocessing.Pool(processes=self.n_workers)
        except (OSError, PermissionError, ImportError):
            # Restricted environments (sandboxes, some CI runners) may not
            # allow semaphores/forking; the caller falls back to in-process.
            # Only pool *construction* is guarded — errors raised by the
            # training jobs themselves must propagate, not trigger a silent
            # retrain.
            return None
        with pool:
            return pool.map(_run_scene_job, jobs)

    # -- entry points --------------------------------------------------------
    def _run(self, n_iterations: int, eval_every: Optional[int],
             eval_views: int, eval_samples: int, resume: bool) -> FleetResult:
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        start = time.perf_counter()
        residency = self._residency
        evictions_before = residency.evictions
        save_s_before = residency.checkpoint_save_s
        load_s_before = residency.checkpoint_load_s
        # Each run builds a fresh slot list (and discards the previous one),
        # so the residency window — live count and peak — restarts at zero.
        residency.reset_window()
        schedule = "round_robin"
        results: Optional[List[TrainingResult]] = None
        if (not resume and self.checkpoint_dir is None
                and self.n_workers > 1 and len(self.datasets) > 1):
            results = self._train_process_pool(
                self._jobs(n_iterations, eval_every, eval_views, eval_samples))
            if results is not None:
                schedule = "process_pool"
        if results is None:
            results = self._train_round_robin(n_iterations, eval_every,
                                              eval_views, eval_samples,
                                              resume=resume)
        wall = time.perf_counter() - start
        return FleetResult(
            scene_names=self.scene_names,
            results=results,
            wall_clock_s=wall,
            n_workers=self.n_workers if schedule == "process_pool" else 0,
            n_iterations=n_iterations,
            schedule=schedule,
            evictions=residency.evictions - evictions_before,
            peak_resident_scenes=residency.peak_resident,
            checkpoint_save_ms=1e3 * (residency.checkpoint_save_s - save_s_before),
            checkpoint_load_ms=1e3 * (residency.checkpoint_load_s - load_s_before),
        )

    def train(self, n_iterations: int, eval_every: Optional[int] = None,
              eval_views: int = 1, eval_samples: int = 48) -> FleetResult:
        """Train every scene for ``n_iterations`` and aggregate the results.

        With a ``checkpoint_dir``, every scene's final state is on disk when
        this returns, so a later :meth:`resume` (possibly from a different
        process) can extend the run bit-identically.
        """
        return self._run(n_iterations, eval_every, eval_views, eval_samples,
                         resume=False)

    def resume(self, n_iterations: int, eval_every: Optional[int] = None,
               eval_views: int = 1, eval_samples: int = 48) -> FleetResult:
        """Restore the fleet from ``checkpoint_dir`` and train *to*
        ``n_iterations`` total per scene.

        Scenes with a checkpoint continue from their saved iteration; scenes
        without one start fresh.  The completed run is bit-identical (same
        losses, parameters and PSNRs) to an uninterrupted
        ``train(n_iterations)`` over the same fleet.
        """
        if self.checkpoint_dir is None:
            raise ValueError("resume() requires a fleet with a checkpoint_dir")
        return self._run(n_iterations, eval_every, eval_views, eval_samples,
                         resume=True)


def train_fleet(datasets: Sequence[SceneDataset], config: Instant3DConfig,
                n_iterations: int, seed: int = 0, n_workers: int = 0,
                eval_every: Optional[int] = None, eval_views: int = 1,
                eval_samples: int = 48) -> FleetResult:
    """Convenience helper mirroring :func:`~repro.training.trainer.train_scene`."""
    fleet = SceneFleet(datasets, config, seed=seed, n_workers=n_workers)
    return fleet.train(n_iterations, eval_every=eval_every,
                       eval_views=eval_views, eval_samples=eval_samples)
