"""Multi-scene training orchestration.

The paper evaluates per-scene training, but the production north star is a
service that keeps many scenes in flight at once (think one reconstruction
job per connected AR/VR user).  :class:`SceneFleet` trains and evaluates a
set of scenes under one shared configuration:

* **round-robin scheduling** (in-process): every scene owns an independent
  trainer and the fleet interleaves fixed-size slices of iterations across
  scenes, so progress is balanced and any scene's intermediate state can be
  inspected mid-run;
* **optional multiprocessing workers**: with ``n_workers > 1`` whole scenes
  are dispatched to a process pool instead.  Both schedules produce
  bit-identical :class:`~repro.training.trainer.TrainingResult`s to running
  :func:`~repro.training.trainer.train_scene` per scene with the same seed:
  the trainer's pixel/sample streams are derived from the scene name (so
  distinctly named scenes never share them), while model *initialisation*
  depends on the seed alone and is therefore common to all scenes of a
  fleet — exactly as it would be across solo ``train_scene(seed=s)`` calls.
  If a pool cannot be spawned the fleet falls back to in-process execution.

Results are aggregated into a :class:`FleetResult` with mean PSNRs and a
scenes-per-hour throughput figure used by ``benchmarks/bench_throughput.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets.dataset import SceneDataset
from repro.training.trainer import (
    Trainer,
    TrainingHistory,
    TrainingResult,
    train_scene,
)


@dataclass
class FleetResult:
    """Aggregated outcome of one fleet run."""

    scene_names: List[str]
    results: List[TrainingResult]
    wall_clock_s: float
    n_workers: int
    n_iterations: int
    schedule: str = "round_robin"           # "round_robin" or "process_pool"

    @property
    def n_scenes(self) -> int:
        return len(self.results)

    @property
    def mean_rgb_psnr(self) -> float:
        return sum(r.rgb_psnr for r in self.results) / max(self.n_scenes, 1)

    @property
    def mean_depth_psnr(self) -> float:
        return sum(r.depth_psnr for r in self.results) / max(self.n_scenes, 1)

    @property
    def scenes_per_hour(self) -> float:
        """End-to-end fleet throughput (train + eval), scenes per hour."""
        if self.wall_clock_s <= 0:
            return float("inf")
        return self.n_scenes * 3600.0 / self.wall_clock_s

    @property
    def mean_occupancy_fraction(self) -> float:
        """Mean end-of-run occupied-cell fraction across scenes (1.0 dense)."""
        return (sum(r.final_occupancy_fraction for r in self.results)
                / max(self.n_scenes, 1))

    @property
    def mean_keep_fraction(self) -> float:
        """Fleet-wide fraction of the dense sample product actually queried."""
        total = sum(r.queries_total for r in self.results)
        kept = sum(r.queries_kept for r in self.results)
        if total == 0:
            return 1.0
        return kept / total

    def result_for(self, scene_name: str) -> TrainingResult:
        return self.results[self.scene_names.index(scene_name)]

    def summary(self) -> Dict[str, float]:
        """Scalar summary used by benchmark reports."""
        return {
            "n_scenes": float(self.n_scenes),
            "n_iterations": float(self.n_iterations),
            "mean_rgb_psnr": self.mean_rgb_psnr,
            "mean_depth_psnr": self.mean_depth_psnr,
            "wall_clock_s": self.wall_clock_s,
            "scenes_per_hour": self.scenes_per_hour,
            "mean_occupancy_fraction": self.mean_occupancy_fraction,
            "mean_keep_fraction": self.mean_keep_fraction,
        }


@dataclass
class _SceneJob:
    """Picklable description of one scene's training run."""

    dataset: SceneDataset
    config: Instant3DConfig
    n_iterations: int
    seed: int
    eval_every: Optional[int]
    eval_views: int
    eval_samples: int


def _run_scene_job(job: _SceneJob) -> TrainingResult:
    """Train one scene to completion (used by the process-pool path)."""
    return train_scene(job.dataset, job.config, job.n_iterations, seed=job.seed,
                       eval_every=job.eval_every, eval_views=job.eval_views,
                       eval_samples=job.eval_samples)


class SceneFleet:
    """Trains and evaluates many scenes under one shared configuration.

    Parameters
    ----------
    datasets:
        Scene datasets to train on (one independent model per scene).
    config:
        Shared training configuration.
    seed:
        Base seed.  Training RNG streams are derived per scene name (model
        initialisation is seed-only, shared across scenes), so results match
        :func:`~repro.training.trainer.train_scene` run per scene with this
        seed.
    n_workers:
        0 or 1 trains in-process with round-robin scheduling; larger values
        dispatch whole scenes to a ``multiprocessing`` pool of that size.
    slice_iterations:
        Round-robin slice width: how many consecutive iterations one scene
        runs before the scheduler moves to the next scene.
    """

    def __init__(self, datasets: Sequence[SceneDataset], config: Instant3DConfig,
                 seed: int = 0, n_workers: int = 0, slice_iterations: int = 25):
        if not datasets:
            raise ValueError("SceneFleet needs at least one dataset")
        if slice_iterations < 1:
            raise ValueError("slice_iterations must be >= 1")
        if n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        self.datasets = list(datasets)
        self.config = config
        self.seed = seed
        self.n_workers = n_workers
        self.slice_iterations = slice_iterations

    @property
    def scene_names(self) -> List[str]:
        return [dataset.name for dataset in self.datasets]

    # -- scheduling strategies ----------------------------------------------
    def _jobs(self, n_iterations: int, eval_every: Optional[int],
              eval_views: int, eval_samples: int) -> List[_SceneJob]:
        return [
            _SceneJob(dataset=dataset, config=self.config,
                      n_iterations=n_iterations, seed=self.seed,
                      eval_every=eval_every, eval_views=eval_views,
                      eval_samples=eval_samples)
            for dataset in self.datasets
        ]

    def _train_round_robin(self, n_iterations: int, eval_every: Optional[int],
                           eval_views: int, eval_samples: int) -> List[TrainingResult]:
        """Interleave slices of iterations across all scenes' trainers."""
        trainers = [
            Trainer(DecoupledRadianceField(self.config, seed=self.seed),
                    dataset, config=self.config, seed=self.seed)
            for dataset in self.datasets
        ]
        histories = [TrainingHistory() for _ in trainers]
        remaining = [n_iterations] * len(trainers)
        while any(remaining):
            for idx, trainer in enumerate(trainers):
                if not remaining[idx]:
                    continue
                steps = min(self.slice_iterations, remaining[idx])
                trainer.run_steps(steps, histories[idx], eval_every=eval_every,
                                  eval_views=eval_views, eval_samples=eval_samples)
                remaining[idx] -= steps
        return [
            trainer.finalize(history, eval_views=eval_views,
                             eval_samples=eval_samples)
            for trainer, history in zip(trainers, histories)
        ]

    def _train_process_pool(self, jobs: List[_SceneJob]) -> Optional[List[TrainingResult]]:
        """Run whole scenes in a worker pool; None if the pool is unavailable."""
        import multiprocessing

        try:
            pool = multiprocessing.Pool(processes=self.n_workers)
        except (OSError, PermissionError, ImportError):
            # Restricted environments (sandboxes, some CI runners) may not
            # allow semaphores/forking; the caller falls back to in-process.
            # Only pool *construction* is guarded — errors raised by the
            # training jobs themselves must propagate, not trigger a silent
            # retrain.
            return None
        with pool:
            return pool.map(_run_scene_job, jobs)

    # -- entry point ---------------------------------------------------------
    def train(self, n_iterations: int, eval_every: Optional[int] = None,
              eval_views: int = 1, eval_samples: int = 48) -> FleetResult:
        """Train every scene for ``n_iterations`` and aggregate the results."""
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        start = time.perf_counter()
        schedule = "round_robin"
        results: Optional[List[TrainingResult]] = None
        if self.n_workers > 1 and len(self.datasets) > 1:
            results = self._train_process_pool(
                self._jobs(n_iterations, eval_every, eval_views, eval_samples))
            if results is not None:
                schedule = "process_pool"
        if results is None:
            results = self._train_round_robin(n_iterations, eval_every,
                                              eval_views, eval_samples)
        wall = time.perf_counter() - start
        return FleetResult(
            scene_names=self.scene_names,
            results=results,
            wall_clock_s=wall,
            n_workers=self.n_workers if schedule == "process_pool" else 0,
            n_iterations=n_iterations,
            schedule=schedule,
        )


def train_fleet(datasets: Sequence[SceneDataset], config: Instant3DConfig,
                n_iterations: int, seed: int = 0, n_workers: int = 0,
                eval_every: Optional[int] = None, eval_views: int = 1,
                eval_samples: int = 48) -> FleetResult:
    """Convenience helper mirroring :func:`~repro.training.trainer.train_scene`."""
    fleet = SceneFleet(datasets, config, seed=seed, n_workers=n_workers)
    return fleet.train(n_iterations, eval_every=eval_every,
                       eval_views=eval_views, eval_samples=eval_samples)
