"""The six-step NeRF training loop with per-branch update frequencies.

One call to :meth:`Trainer.train_step` executes the paper's pipeline:

❶ sample a pixel batch → ❷ map the pixels to rays and sample points along
them → ❸ query the decoupled radiance field → ❹ volume-render the predicted
pixel colors → ❺ compute the squared-error loss → ❻ back-propagate, where
the color branch's back-propagation and optimiser step are skipped on
iterations the ``F_C`` schedule marks as non-update iterations.

Steps ❷–❹ (and the per-sample half of ❻) are delegated to
:class:`~repro.nerf.pipeline.RenderPipeline`.  With
``Instant3DConfig(culling_enabled=True)`` the trainer additionally maintains
an :class:`~repro.nerf.occupancy.OccupancyGrid`, refreshed from the density
branch on the Instant-NGP schedule, and the pipeline compacts away samples
in known-empty cells before they reach the field — forward and backward.
The dense path (``culling_enabled=False``, the default) stays bit-identical
to the pre-pipeline trainer for differential testing.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.core.schedule import BranchSchedules
from repro.datasets.dataset import SceneDataset
from repro.nerf.losses import mse_loss, mse_to_psnr
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.pipeline import RenderPipeline
from repro.nerf.scheduling import make_scheduler
from repro.nn.optim import Adam
from repro.reliability.faults import fault_point, get_injector
from repro.reliability.health import (
    GuardTrip,
    HealthMonitor,
    NumericalFault,
    all_finite,
)
from repro.reliability.rollback import SnapshotRing
from repro.training.metrics import EvaluationResult, evaluate_model
from repro.training.profiler import PhaseTimer, TrainPhase
from repro.utils.seeding import derive_rng, derive_seed, get_rng_state, set_rng_state

#: Shared reusable no-op context for the detached-profiler fast path.
_NULL_PHASE = nullcontext()


@dataclass
class TrainingHistory:
    """Loss curve, query accounting and periodic evaluations of a run."""

    iterations: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    batch_psnrs: List[float] = field(default_factory=list)
    #: Per-iteration sample-query accounting: the dense ``rays x samples``
    #: product, the samples that actually reached the field after occupancy
    #: culling, and the occupancy grid's occupied-cell fraction (1.0 when
    #: culling is disabled).
    queries_total: List[int] = field(default_factory=list)
    queries_kept: List[int] = field(default_factory=list)
    occupancy_fractions: List[float] = field(default_factory=list)
    eval_iterations: List[int] = field(default_factory=list)
    eval_rgb_psnrs: List[float] = field(default_factory=list)
    eval_depth_psnrs: List[float] = field(default_factory=list)
    #: Numerical-health counters, mirrored from the trainer's
    #: :class:`~repro.reliability.health.HealthMonitor` (all zero when
    #: guards are disabled).  Living on the history keeps them visible
    #: through eviction: ``SceneService.stats()`` and fleet summaries read
    #: them here without re-materialising the trainer.
    guard_trips: int = 0
    rollbacks: int = 0
    lr_backoffs: int = 0
    batch_skips: int = 0

    def record_step(self, iteration: int, loss: float, batch_psnr: float,
                    queries_kept: Optional[int] = None,
                    queries_total: Optional[int] = None,
                    occupancy_fraction: float = 1.0) -> None:
        self.iterations.append(iteration)
        self.losses.append(loss)
        self.batch_psnrs.append(batch_psnr)
        if queries_total is not None:
            self.queries_total.append(int(queries_total))
            self.queries_kept.append(
                int(queries_kept if queries_kept is not None else queries_total))
            self.occupancy_fractions.append(float(occupancy_fraction))

    @property
    def total_queries_saved(self) -> int:
        """Point queries skipped by culling over the recorded iterations."""
        return int(sum(self.queries_total) - sum(self.queries_kept))

    def mean_keep_fraction(self, last_n: Optional[int] = None) -> float:
        """Mean kept-sample fraction, optionally over the last ``last_n`` steps."""
        if last_n is not None and last_n <= 0:
            return 1.0
        total = self.queries_total if last_n is None else self.queries_total[-last_n:]
        kept = self.queries_kept if last_n is None else self.queries_kept[-last_n:]
        if not total:
            return 1.0
        return float(sum(kept)) / float(max(sum(total), 1))

    def record_eval(self, iteration: int, result: EvaluationResult) -> None:
        self.eval_iterations.append(iteration)
        self.eval_rgb_psnrs.append(result.rgb_psnr)
        self.eval_depth_psnrs.append(result.depth_psnr)

    # -- serialisation -------------------------------------------------------
    _FIELDS = (
        ("iterations", np.int64), ("losses", np.float64),
        ("batch_psnrs", np.float64), ("queries_total", np.int64),
        ("queries_kept", np.int64), ("occupancy_fractions", np.float64),
        ("eval_iterations", np.int64), ("eval_rgb_psnrs", np.float64),
        ("eval_depth_psnrs", np.float64),
    )
    _COUNTERS = ("guard_trips", "rollbacks", "lr_backoffs", "batch_skips")

    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of every recorded series.

        Series are stored as int64/float64 arrays, which round-trip the
        Python ints/floats they were recorded as exactly — so a resumed
        run's loss history is bit-identical to an uninterrupted one's.
        """
        state = {name: np.asarray(getattr(self, name), dtype=dtype)
                 for name, dtype in self._FIELDS}
        state["health_counters"] = np.asarray(
            [getattr(self, name) for name in self._COUNTERS], dtype=np.int64)
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict`, replacing all recorded series."""
        for name, dtype in self._FIELDS:
            cast = int if np.issubdtype(dtype, np.integer) else float
            getattr(self, name)[:] = [cast(v) for v in state[name]]
        # Pre-health checkpoints carry no counters: all zero.
        counters = state.get("health_counters")
        for index, name in enumerate(self._COUNTERS):
            setattr(self, name,
                    int(counters[index]) if counters is not None else 0)


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    history: TrainingHistory
    final_eval: EvaluationResult
    n_iterations: int
    density_updates: int
    color_updates: int
    #: Occupied-cell fraction of the occupancy grid at the end of the run
    #: (1.0 when culling was disabled).
    final_occupancy_fraction: float = 1.0
    #: Density-branch points queried by occupancy-grid refreshes over the
    #: run — the overhead side of the culling ledger (0 when disabled).
    occupancy_refresh_points: int = 0
    #: Numerical-health ledger (zeros when guards were disabled): guard
    #: trips detected, rollbacks performed, LR backoffs and batch skips
    #: applied while recovering.
    guard_trips: int = 0
    rollbacks: int = 0
    lr_backoffs: int = 0
    batch_skips: int = 0

    @property
    def rgb_psnr(self) -> float:
        return self.final_eval.rgb_psnr

    @property
    def depth_psnr(self) -> float:
        return self.final_eval.depth_psnr

    @property
    def queries_total(self) -> int:
        """Dense sample-query product summed over the recorded iterations."""
        return int(sum(self.history.queries_total))

    @property
    def queries_kept(self) -> int:
        """Samples that actually reached the field over the recorded iterations."""
        return int(sum(self.history.queries_kept))


class Trainer:
    """Optimises a :class:`DecoupledRadianceField` on one scene dataset."""

    def __init__(self, model: DecoupledRadianceField, dataset: SceneDataset,
                 config: Optional[Instant3DConfig] = None, seed: int = 0):
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else model.config
        self.schedules = BranchSchedules.from_frequencies(
            self.config.density_update_freq, self.config.color_update_freq
        )
        self.occupancy: Optional[OccupancyGrid] = None
        if self.config.culling_enabled:
            self.occupancy = OccupancyGrid(
                resolution=self.config.occupancy_resolution,
                decay=self.config.occupancy_decay,
                occupancy_threshold=self.config.occupancy_threshold,
                seed=derive_seed(seed, f"{dataset.name}:occupancy"),
            )
        # One workspace arena per run: every per-iteration temporary — grid
        # query planes, MLP activations, renderer planes/gradients, optimiser
        # scratch — comes from named reusable buffers, so steady-state steps
        # perform no large allocations (misses only while shapes grow).
        # ``reuse_workspace=False`` restores fresh-allocation semantics.
        # The arena is backend-owned: its backing buffers come from the
        # config's array backend, so non-numpy backends keep arena-served
        # temporaries native.
        self.backend = self.config.array_backend
        self.arena = (self.backend.make_arena() if self.config.reuse_workspace
                      else None)
        self.policy = self.config.precision_policy
        model.set_arena(self.arena)
        self.pipeline = RenderPipeline(
            model, dataset.scene_bound,
            n_samples=self.config.n_samples_per_ray,
            white_background=self.config.white_background,
            occupancy=self.occupancy,
            culling_enabled=self.config.culling_enabled,
            early_termination_tau=self.config.early_termination_tau,
            policy=self.policy,
            arena=self.arena,
            backend=self.backend,
            address_sort=self.config.address_sort,
        )
        # Pixel-batch scheduler (Step ❶).  The default "uniform" schedule
        # consumes the pixel RNG stream exactly as the pre-scheduler trainer
        # did, so existing runs are bit-identical; the tiled schedules trade
        # that stream for locality-preserving draws (see
        # repro.nerf.scheduling).
        self.scheduler = make_scheduler(
            self.config.ray_schedule,
            dataset.train_cameras, dataset.train_images,
            self.config.batch_pixels,
            tile_size=self.config.tile_size,
            occupancy=self.occupancy,
            scene_bound=dataset.scene_bound,
        )
        self.density_optimizer = Adam(model.density_parameters(),
                                      lr=self.config.learning_rate,
                                      arena=self.arena,
                                      backend=self.backend)
        self.color_optimizer = Adam(model.color_parameters(),
                                    lr=self.config.learning_rate,
                                    arena=self.arena,
                                    backend=self.backend)
        self._pixel_rng = derive_rng(seed, f"{dataset.name}:pixels")
        self._sample_rng = derive_rng(seed, f"{dataset.name}:samples")
        self.iteration = 0
        self.density_updates = 0
        self.color_updates = 0
        self.occupancy_refresh_points = 0
        # Numerical-health watchdog (config.health=None disables it: the
        # loop below then runs the exact pre-health code path).
        self.health: Optional[HealthMonitor] = None
        self._snapshots: Optional[SnapshotRing] = None
        self._last_snapshot_iteration = -1
        self.last_guard_trip: Optional[GuardTrip] = None
        if self.config.health is not None:
            self.health = HealthMonitor(self.config.health)
            self._snapshots = SnapshotRing(self.config.health.snapshot_ring)
        #: Optional :class:`~repro.training.profiler.PhaseTimer` splitting
        #: every step's wall time into sampling / forward / loss /
        #: backward-scatter / optimiser-step phases (``None`` = no timing
        #: overhead).
        self.profiler: Optional[PhaseTimer] = None

    # -- occupancy maintenance -------------------------------------------------
    def _refresh_occupancy(self) -> None:
        """Refresh the occupancy grid from the density branch when scheduled.

        Follows the Instant-NGP cadence: every ``occupancy_update_every``
        iterations, starting at ``occupancy_warmup_iterations`` so the
        density branch has begun carving out empty space before its
        predictions are trusted for culling.  Runs *before* the iteration's
        query so the density branch's forward buffers are free to reuse.
        """
        config = self.config
        since_warmup = self.iteration - config.occupancy_warmup_iterations
        if since_warmup < 0 or since_warmup % config.occupancy_update_every != 0:
            return
        self.occupancy.update(self.model.query_density,
                              n_samples=config.occupancy_refresh_samples)
        self.occupancy_refresh_points += config.occupancy_refresh_samples

    # -- checkpointing ---------------------------------------------------------
    def state_dict(self, history: Optional[TrainingHistory] = None
                   ) -> Dict[str, Any]:
        """Serialisable snapshot of everything a resumed run needs.

        Captures the model parameters, both optimiser states (Adam moments
        and step counts), the occupancy grid (density planes, update/mark
        counters and probe-RNG state), the pixel/sample RNG streams and the
        iteration counters.  With ``history`` given, the recorded loss curve
        is included too.  Restoring this snapshot into a freshly built
        trainer (same config, dataset and seed) and continuing produces
        bit-identical iterations to a run that was never interrupted —
        checkpoints must be taken *between* ``train_step`` calls (forward
        caches are transient and deliberately not captured).

        Under ``sparse_updates=True`` the optimisers' deferred lazy-moment
        decay is *flushed* as part of the snapshot (see
        :mod:`repro.nn.optim`), which rebases the live optimisers too: the
        saving run's own continuation and a load-and-continue run remain
        bit-identical to **each other** (flushing is deterministic, so any
        two runs that snapshot at the same iterations agree exactly); a run
        that never snapshots can differ from a snapshotting one in the last
        ulp of the deferred-decay factorisation.  Dense-mode snapshots are
        side-effect free, exactly as before.
        """
        state: Dict[str, Any] = {
            "compute_dtype": self.config.compute_dtype,
            "sparse_updates": bool(self.config.sparse_updates),
            "iteration": int(self.iteration),
            "density_updates": int(self.density_updates),
            "color_updates": int(self.color_updates),
            "occupancy_refresh_points": int(self.occupancy_refresh_points),
            "pixel_rng": get_rng_state(self._pixel_rng),
            "sample_rng": get_rng_state(self._sample_rng),
            "model": self.model.state_dict(),
            "density_optimizer": self.density_optimizer.state_dict(),
            "color_optimizer": self.color_optimizer.state_dict(),
            "occupancy": (self.occupancy.state_dict()
                          if self.occupancy is not None else None),
        }
        if self.health is not None:
            # LR backoffs live on the optimizers' ``lr`` attribute, which
            # their own state_dicts deliberately exclude (lr is normally
            # config-owned) — persist the effective values here so a
            # resumed recovery replays with the backed-off step sizes.
            state["health"] = {
                "monitor": self.health.state_dict(),
                "density_lr": float(self.density_optimizer.lr),
                "color_lr": float(self.color_optimizer.lr),
            }
        if history is not None:
            state["history"] = history.state_dict()
        return state

    def load_state_dict(self, state: Dict[str, Any],
                        history: Optional[TrainingHistory] = None) -> None:
        """Restore :meth:`state_dict` into this (freshly built) trainer.

        When ``history`` is given it is filled from the snapshot's recorded
        series; a snapshot saved without a history then raises.
        """
        stored_dtype = state.get("compute_dtype")
        if stored_dtype is not None and stored_dtype != self.config.compute_dtype:
            raise ValueError(
                f"checkpoint was trained under compute_dtype="
                f"{stored_dtype!r} but this trainer uses "
                f"{self.config.compute_dtype!r}; resume is only bit-exact "
                f"within one precision policy")
        # Pre-sparse checkpoints carry no flag and were all dense-trained.
        stored_sparse = bool(state.get("sparse_updates", False))
        if stored_sparse != self.config.sparse_updates:
            raise ValueError(
                f"checkpoint was trained with sparse_updates={stored_sparse} "
                f"but this trainer uses "
                f"sparse_updates={self.config.sparse_updates}; the two modes' "
                f"update semantics differ, so resume would not continue the "
                f"same trajectory")
        if (state["occupancy"] is None) != (self.occupancy is None):
            raise ValueError(
                "checkpoint culling state does not match this trainer's "
                "configuration (culling_enabled mismatch)")
        self.model.load_state_dict(state["model"])
        self.density_optimizer.load_state_dict(state["density_optimizer"])
        self.color_optimizer.load_state_dict(state["color_optimizer"])
        if self.occupancy is not None:
            self.occupancy.load_state_dict(state["occupancy"])
        set_rng_state(self._pixel_rng, state["pixel_rng"])
        set_rng_state(self._sample_rng, state["sample_rng"])
        self.iteration = int(state["iteration"])
        self.density_updates = int(state["density_updates"])
        self.color_updates = int(state["color_updates"])
        self.occupancy_refresh_points = int(state["occupancy_refresh_points"])
        health_state = state.get("health")
        if health_state is not None:
            if self.health is None:
                raise ValueError(
                    "checkpoint carries numerical-health state but this "
                    "trainer has no HealthPolicy configured; a resumed "
                    "recovery would silently drop its LR backoffs")
            self.health.load_state_dict(health_state["monitor"])
            self.density_optimizer.lr = float(health_state["density_lr"])
            self.color_optimizer.lr = float(health_state["color_lr"])
        # (health-enabled trainer + pre-health checkpoint: monitor starts
        # fresh, LRs stay at the config values — nothing to restore.)
        if history is not None:
            if "history" not in state:
                raise ValueError(
                    "checkpoint was saved without a training history")
            history.load_state_dict(state["history"])

    # -- one iteration ---------------------------------------------------------
    def _phase(self, name: str):
        """Profiler section for ``name`` (a shared no-op when detached)."""
        if self.profiler is None:
            return _NULL_PHASE
        return self.profiler.phase(name)

    def train_step(self) -> Dict[str, float]:
        """Run one full training iteration and return its scalar metrics."""
        update_density, update_color = self.schedules.updates_at(self.iteration)
        if self.occupancy is not None:
            self._refresh_occupancy()

        with self._phase(TrainPhase.SAMPLING):
            # ❶ — pixel batch, drawn by the configured ray schedule.
            bundle, targets = self.scheduler.sample_batch(self._pixel_rng)

        with self._phase(TrainPhase.FORWARD):
            # ❷ / ❸ / ❹ — sampling, (culled) field query and volume rendering.
            out = self.pipeline.render_rays(bundle, rng=self._sample_rng)

        with self._phase(TrainPhase.LOSS):
            # ❺ — loss.
            loss, grad_colors = mse_loss(out.render.colors, targets,
                                         dtype=self.policy.dtype)

        # ❻ — back-propagation with per-branch update schedule, touching only
        # the samples that were queried.  A batch whose samples were all
        # culled has no gradients at all, so neither branch updates on it.
        self.model.zero_grad()
        update_density = update_density and out.n_queried > 0
        update_color = update_color and out.n_queried > 0
        rows_touched = 0
        if out.n_queried > 0:
            with self._phase(TrainPhase.BACKWARD_SCATTER):
                grad_sigmas, grad_rgbs = self.pipeline.backward_to_points(
                    grad_colors)
                self.model.backward(
                    grad_sigmas,
                    grad_rgbs,
                    update_density=update_density,
                    update_color=update_color,
                )
            if get_injector() is not None:      # chaos hook: poison grads
                fault_point("train.backward",
                            arrays=self._gradient_arrays(
                                update_density, update_color))
            # Unique hash-table rows carrying a gradient this step (the
            # software analogue of the entries the paper's BUM unit writes
            # back); stale branch counts are excluded via the update flags.
            encoder = self.model.encoder
            if update_density and encoder.density_grid.last_touched_rows is not None:
                rows_touched += encoder.density_grid.last_touched_rows
            if update_color and encoder.color_grid.last_touched_rows is not None:
                rows_touched += encoder.color_grid.last_touched_rows
            with self._phase(TrainPhase.OPTIMIZER_STEP):
                if update_density:
                    self.density_optimizer.step()
                    self.density_updates += 1
                if update_color:
                    self.color_optimizer.step()
                    self.color_updates += 1
            if get_injector() is not None:      # chaos hook: poison params
                fault_point("optimizer.step",
                            arrays=[param.data
                                    for param in self.model.parameters()])

        self.iteration += 1
        guard_checked = False
        if self.health is not None and self.health.check_due(self.iteration):
            guard_checked = True
            trip = self.health.check(self.iteration, float(loss),
                                     self.model.parameters())
            if trip is not None:
                self.last_guard_trip = trip
        return {
            "iteration": float(self.iteration),
            "loss": loss,
            "batch_psnr": mse_to_psnr(loss),
            "updated_density": float(update_density),
            "updated_color": float(update_color),
            "queries_total": float(out.n_total),
            "queries_kept": float(out.n_queried),
            "occupancy_fraction": float(out.occupancy_fraction),
            "grid_rows_touched": float(rows_touched),
            "guard_checked": float(guard_checked),
            "guard_tripped": float(self.last_guard_trip is not None),
        }

    def _gradient_arrays(self, update_density: bool,
                         update_color: bool) -> List[np.ndarray]:
        """Live gradient buffers of the branches updating this step.

        Only the updating branches' gradients are handed to the injector:
        a stale branch's buffer is never read by the optimizer, so
        corrupting it would make the injected fault silently vanish.
        """
        parameters: List[Any] = []
        if update_density:
            parameters.extend(self.model.density_parameters())
        if update_color:
            parameters.extend(self.model.color_parameters())
        arrays: List[np.ndarray] = []
        for param in parameters:
            if param.sparse_grad is not None:
                arrays.append(param.sparse_grad.values)
            elif param.grad is not None:
                arrays.append(param.grad)
        return arrays

    # -- full run ---------------------------------------------------------------
    def run_steps(self, n_steps: int, history: TrainingHistory,
                  eval_every: Optional[int] = None, eval_views: int = 1,
                  eval_samples: int = 48) -> None:
        """Run ``n_steps`` iterations, recording losses (and periodic
        evaluations) into ``history``.

        Used both by :meth:`train` and by the fleet orchestrator's
        round-robin scheduler, which interleaves slices of steps across
        scenes while keeping each scene's trajectory identical to a solo run.

        With a :class:`~repro.reliability.health.HealthPolicy` configured,
        a tripped guard rolls the trainer back to the last good snapshot
        and replays with seeded remediation (LR backoff / batch skip); the
        loop then keeps going until the *target* iteration is reached, so a
        recovered run delivers the same number of net steps.  Exhausting
        ``max_rollbacks`` raises
        :class:`~repro.reliability.health.NumericalFault`.
        """
        if self.health is None:
            # Guards off: the exact pre-health loop, kept verbatim so the
            # disabled path cannot drift from the frozen-oracle trainers.
            for _ in range(n_steps):
                metrics = self.train_step()
                history.record_step(
                    self.iteration, metrics["loss"], metrics["batch_psnr"],
                    queries_kept=int(metrics["queries_kept"]),
                    queries_total=int(metrics["queries_total"]),
                    occupancy_fraction=metrics["occupancy_fraction"],
                )
                if eval_every and self.iteration % eval_every == 0:
                    result = evaluate_model(
                        self.model, self.dataset, n_views=eval_views,
                        n_samples=eval_samples,
                        white_background=self.config.white_background,
                        occupancy=self.occupancy,
                        early_termination_tau=self.config.early_termination_tau,
                        policy=self.policy,
                    )
                    history.record_eval(self.iteration, result)
            return

        target = self.iteration + n_steps
        try:
            self._ensure_baseline_snapshot(history)
            while self.iteration < target:
                metrics = self.train_step()
                if self.last_guard_trip is not None:
                    # The just-finished step is poisoned: do not record it,
                    # rewind instead.  The while condition then replays the
                    # lost iterations.
                    self._recover(history)
                    continue
                history.record_step(
                    self.iteration, metrics["loss"], metrics["batch_psnr"],
                    queries_kept=int(metrics["queries_kept"]),
                    queries_total=int(metrics["queries_total"]),
                    occupancy_fraction=metrics["occupancy_fraction"],
                )
                if eval_every and self.iteration % eval_every == 0:
                    result = evaluate_model(
                        self.model, self.dataset, n_views=eval_views,
                        n_samples=eval_samples,
                        white_background=self.config.white_background,
                        occupancy=self.occupancy,
                        early_termination_tau=self.config.early_termination_tau,
                        policy=self.policy,
                    )
                    history.record_eval(self.iteration, result)
                if metrics["guard_checked"] > 0.0 and (
                        self.iteration - self._last_snapshot_iteration
                        >= self.health.policy.snapshot_every):
                    self._snapshots.push(self.iteration,
                                         self.state_dict(history))
                    self._last_snapshot_iteration = self.iteration
        finally:
            # Counters must reach the history even when NumericalFault
            # aborts the run: the serving stats report poisoned scenes'
            # trips from here.
            self._sync_health_counters(history)

    # -- divergence recovery -----------------------------------------------
    def _sync_health_counters(self, history: TrainingHistory) -> None:
        if self.health is None:
            return
        for name, value in self.health.counters().items():
            setattr(history, name, value)

    def _ensure_baseline_snapshot(self, history: TrainingHistory) -> None:
        """Seed the ring at loop entry so the first trip has a rewind target.

        Verifies the entry state is finite first: snapshotting an
        already-poisoned trainer would make every rollback restore the
        poison, so that is a :class:`NumericalFault` outright.
        """
        if len(self._snapshots) > 0:
            return
        if not all(all_finite(param.data)
                   for param in self.model.parameters()):
            raise NumericalFault(
                "trainer entered run_steps with non-finite parameters; "
                "nothing healthy to snapshot")
        self._snapshots.push(self.iteration, self.state_dict(history))
        self._last_snapshot_iteration = self.iteration

    def _recover(self, history: TrainingHistory) -> None:
        """Roll back to the newest good snapshot and arm the seeded replay.

        The remediation ladder is deterministic: restore (which rewinds
        model, optimizers, occupancy, RNG streams *and* the recorded
        history), then multiply both optimizers' LR by ``lr_backoff``
        (cumulative across consecutive rollbacks — the backoff survives
        restores because ``lr`` is deliberately outside the optimizer
        state_dict) and consume one pixel-scheduler draw so the replay sees
        a shifted batch sequence.  ``max_rollbacks`` consecutive rollbacks
        without a healthy check past the trip point raise
        :class:`NumericalFault`; the trainer is still restored first so its
        state stays finite (and checkpointable) for post-mortems.
        """
        monitor = self.health
        policy = monitor.policy
        trip = self.last_guard_trip
        self.last_guard_trip = None
        monitor.last_trip_iteration = max(monitor.last_trip_iteration,
                                          trip.iteration)
        entry = self._snapshots.restore_newest()
        if entry is None:       # unreachable: _ensure_baseline_snapshot ran
            raise NumericalFault(
                f"guard trip {trip.reason!r} at iteration {trip.iteration} "
                f"with an empty snapshot ring")
        self._load_snapshot(entry, history)
        monitor.rollback_attempts += 1
        if monitor.budget_exhausted():
            raise NumericalFault(
                f"guard trip {trip.reason!r} at iteration {trip.iteration} "
                f"({trip.detail}): rollback budget exhausted after "
                f"{policy.max_rollbacks} consecutive rollbacks to "
                f"iteration {entry['iteration']}")
        monitor.rollbacks += 1
        if policy.lr_backoff < 1.0:
            self.density_optimizer.lr *= policy.lr_backoff
            self.color_optimizer.lr *= policy.lr_backoff
            monitor.lr_backoffs += 1
        if policy.skip_batch:
            # Discard as many scheduler draws as there have been consecutive
            # rollbacks: the restore above rewound the pixel RNG to the
            # snapshot state, so a *fixed* skip would replay the identical
            # batch sequence on every attempt.  Escalating the skip count
            # deterministically shifts each successive replay.
            for _ in range(monitor.rollback_attempts):
                self.scheduler.sample_batch(self._pixel_rng)
            monitor.batch_skips += monitor.rollback_attempts

    def _load_snapshot(self, entry: Dict[str, Any],
                       history: TrainingHistory) -> None:
        """Restore a ring entry, preserving the monitor's recovery ledger.

        The snapshot's embedded health state describes the monitor *at
        capture time*; restoring it would erase the trips and rollbacks
        recorded since, so it is dropped and the live monitor carries on.
        """
        state = dict(entry["state"])
        state.pop("health", None)
        self.load_state_dict(state, history=history)

    def finalize(self, history: TrainingHistory, eval_views: int = 1,
                 eval_samples: int = 48) -> TrainingResult:
        """Run the final test-split evaluation and package the result."""
        final_eval = evaluate_model(
            self.model, self.dataset, n_views=eval_views, n_samples=eval_samples,
            white_background=self.config.white_background,
            occupancy=self.occupancy,
            early_termination_tau=self.config.early_termination_tau,
            policy=self.policy,
        )
        self._sync_health_counters(history)
        return TrainingResult(
            history=history,
            final_eval=final_eval,
            n_iterations=self.iteration,
            density_updates=self.density_updates,
            color_updates=self.color_updates,
            final_occupancy_fraction=self.pipeline.occupancy_fraction,
            occupancy_refresh_points=self.occupancy_refresh_points,
            guard_trips=history.guard_trips,
            rollbacks=history.rollbacks,
            lr_backoffs=history.lr_backoffs,
            batch_skips=history.batch_skips,
        )

    def train(self, n_iterations: int, eval_every: Optional[int] = None,
              eval_views: int = 1, eval_samples: int = 48) -> TrainingResult:
        """Train for ``n_iterations`` and evaluate on the test split.

        ``eval_every`` triggers intermediate evaluations (used by the Fig. 5
        color-vs-density learning-pace analysis); the final evaluation always
        runs.
        """
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        history = TrainingHistory()
        self.run_steps(n_iterations, history, eval_every=eval_every,
                       eval_views=eval_views, eval_samples=eval_samples)
        return self.finalize(history, eval_views=eval_views,
                             eval_samples=eval_samples)


def train_scene(dataset: SceneDataset, config: Instant3DConfig, n_iterations: int,
                seed: int = 0, eval_every: Optional[int] = None,
                eval_views: int = 1, eval_samples: int = 48) -> TrainingResult:
    """Convenience helper: build a model for ``config`` and train it on ``dataset``."""
    model = DecoupledRadianceField(config, seed=seed)
    trainer = Trainer(model, dataset, config=config, seed=seed)
    return trainer.train(n_iterations, eval_every=eval_every, eval_views=eval_views,
                         eval_samples=eval_samples)
