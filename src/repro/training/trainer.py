"""The six-step NeRF training loop with per-branch update frequencies.

One call to :meth:`Trainer.train_step` executes the paper's pipeline:

❶ sample a pixel batch → ❷ map the pixels to rays and sample points along
them → ❸ query the decoupled radiance field → ❹ volume-render the predicted
pixel colors → ❺ compute the squared-error loss → ❻ back-propagate, where
the color branch's back-propagation and optimiser step are skipped on
iterations the ``F_C`` schedule marks as non-update iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.core.schedule import BranchSchedules
from repro.datasets.dataset import SceneDataset
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.losses import mse_loss, mse_to_psnr
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.nerf.volume_rendering import VolumeRenderer
from repro.nn.optim import Adam
from repro.training.metrics import EvaluationResult, evaluate_model
from repro.utils.seeding import derive_rng


@dataclass
class TrainingHistory:
    """Loss curve and periodic evaluations recorded during training."""

    iterations: List[int] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    batch_psnrs: List[float] = field(default_factory=list)
    eval_iterations: List[int] = field(default_factory=list)
    eval_rgb_psnrs: List[float] = field(default_factory=list)
    eval_depth_psnrs: List[float] = field(default_factory=list)

    def record_step(self, iteration: int, loss: float, batch_psnr: float) -> None:
        self.iterations.append(iteration)
        self.losses.append(loss)
        self.batch_psnrs.append(batch_psnr)

    def record_eval(self, iteration: int, result: EvaluationResult) -> None:
        self.eval_iterations.append(iteration)
        self.eval_rgb_psnrs.append(result.rgb_psnr)
        self.eval_depth_psnrs.append(result.depth_psnr)


@dataclass
class TrainingResult:
    """Outcome of a training run."""

    history: TrainingHistory
    final_eval: EvaluationResult
    n_iterations: int
    density_updates: int
    color_updates: int

    @property
    def rgb_psnr(self) -> float:
        return self.final_eval.rgb_psnr

    @property
    def depth_psnr(self) -> float:
        return self.final_eval.depth_psnr


class Trainer:
    """Optimises a :class:`DecoupledRadianceField` on one scene dataset."""

    def __init__(self, model: DecoupledRadianceField, dataset: SceneDataset,
                 config: Optional[Instant3DConfig] = None, seed: int = 0):
        self.model = model
        self.dataset = dataset
        self.config = config if config is not None else model.config
        self.schedules = BranchSchedules.from_frequencies(
            self.config.density_update_freq, self.config.color_update_freq
        )
        self.renderer = VolumeRenderer(white_background=self.config.white_background)
        self.density_optimizer = Adam(model.density_parameters(),
                                      lr=self.config.learning_rate)
        self.color_optimizer = Adam(model.color_parameters(),
                                    lr=self.config.learning_rate)
        self._pixel_rng = derive_rng(seed, f"{dataset.name}:pixels")
        self._sample_rng = derive_rng(seed, f"{dataset.name}:samples")
        self.iteration = 0
        self.density_updates = 0
        self.color_updates = 0

    # -- one iteration ---------------------------------------------------------
    def train_step(self) -> Dict[str, float]:
        """Run one full training iteration and return its scalar metrics."""
        config = self.config
        update_density, update_color = self.schedules.updates_at(self.iteration)

        # ❶ / ❷ — pixel batch and rays.
        bundle, targets = sample_pixel_batch(
            self.dataset.train_cameras, self.dataset.train_images,
            config.batch_pixels, self._pixel_rng,
        )
        t_vals, deltas = stratified_samples(bundle, config.n_samples_per_ray,
                                            rng=self._sample_rng)
        points, dirs = ray_points(bundle, t_vals)
        points_unit = normalize_points_to_unit_cube(points, self.dataset.scene_bound)

        # ❸ — query the decoupled radiance field.
        sigma, rgb = self.model.query(points_unit, dirs)
        n_rays = bundle.n_rays
        n_samples = config.n_samples_per_ray
        sigma = sigma.reshape(n_rays, n_samples)
        rgb = rgb.reshape(n_rays, n_samples, 3)

        # ❹ / ❺ — volume rendering and loss.
        render = self.renderer.forward(sigma, rgb, deltas, t_vals)
        loss, grad_colors = mse_loss(render.colors, targets)

        # ❻ — back-propagation with per-branch update schedule.
        grad_sigmas, grad_rgbs = self.renderer.backward(grad_colors)
        self.model.zero_grad()
        self.model.backward(
            grad_sigmas.reshape(-1),
            grad_rgbs.reshape(-1, 3),
            update_density=update_density,
            update_color=update_color,
        )
        if update_density:
            self.density_optimizer.step()
            self.density_updates += 1
        if update_color:
            self.color_optimizer.step()
            self.color_updates += 1

        self.iteration += 1
        return {
            "iteration": float(self.iteration),
            "loss": loss,
            "batch_psnr": mse_to_psnr(loss),
            "updated_density": float(update_density),
            "updated_color": float(update_color),
        }

    # -- full run ---------------------------------------------------------------
    def run_steps(self, n_steps: int, history: TrainingHistory,
                  eval_every: Optional[int] = None, eval_views: int = 1,
                  eval_samples: int = 48) -> None:
        """Run ``n_steps`` iterations, recording losses (and periodic
        evaluations) into ``history``.

        Used both by :meth:`train` and by the fleet orchestrator's
        round-robin scheduler, which interleaves slices of steps across
        scenes while keeping each scene's trajectory identical to a solo run.
        """
        for _ in range(n_steps):
            metrics = self.train_step()
            history.record_step(self.iteration, metrics["loss"], metrics["batch_psnr"])
            if eval_every and self.iteration % eval_every == 0:
                result = evaluate_model(
                    self.model, self.dataset, n_views=eval_views,
                    n_samples=eval_samples,
                    white_background=self.config.white_background,
                )
                history.record_eval(self.iteration, result)

    def finalize(self, history: TrainingHistory, eval_views: int = 1,
                 eval_samples: int = 48) -> TrainingResult:
        """Run the final test-split evaluation and package the result."""
        final_eval = evaluate_model(
            self.model, self.dataset, n_views=eval_views, n_samples=eval_samples,
            white_background=self.config.white_background,
        )
        return TrainingResult(
            history=history,
            final_eval=final_eval,
            n_iterations=self.iteration,
            density_updates=self.density_updates,
            color_updates=self.color_updates,
        )

    def train(self, n_iterations: int, eval_every: Optional[int] = None,
              eval_views: int = 1, eval_samples: int = 48) -> TrainingResult:
        """Train for ``n_iterations`` and evaluate on the test split.

        ``eval_every`` triggers intermediate evaluations (used by the Fig. 5
        color-vs-density learning-pace analysis); the final evaluation always
        runs.
        """
        if n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        history = TrainingHistory()
        self.run_steps(n_iterations, history, eval_every=eval_every,
                       eval_views=eval_views, eval_samples=eval_samples)
        return self.finalize(history, eval_views=eval_views,
                             eval_samples=eval_samples)


def train_scene(dataset: SceneDataset, config: Instant3DConfig, n_iterations: int,
                seed: int = 0, eval_every: Optional[int] = None,
                eval_views: int = 1, eval_samples: int = 48) -> TrainingResult:
    """Convenience helper: build a model for ``config`` and train it on ``dataset``."""
    model = DecoupledRadianceField(config, seed=seed)
    trainer = Trainer(model, dataset, config=config, seed=seed)
    return trainer.train(n_iterations, eval_every=eval_every, eval_views=eval_views,
                         eval_samples=eval_samples)
