"""Test-view evaluation: render held-out views and score RGB / depth PSNR.

RGB PSNR is the paper's reconstruction-quality metric (Tables 1, 2 and 4).
Depth PSNR — computed from the expected ray-termination depth against the
analytic scene's ground-truth depth — is the proxy the paper uses for how
well the *density* field has been learned (Fig. 5); it is never trained on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.model import DecoupledRadianceField
from repro.datasets.dataset import SceneDataset
from repro.nerf.cameras import PinholeCamera, RayBundle
from repro.nerf.losses import mse_to_psnr, psnr
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.pipeline import RenderPipeline


@dataclass
class EvaluationResult:
    """Average and per-view PSNR of a model on a dataset's test split."""

    rgb_psnr: float
    depth_psnr: float
    per_view_rgb: List[float] = field(default_factory=list)
    per_view_depth: List[float] = field(default_factory=list)

    @property
    def n_views(self) -> int:
        return len(self.per_view_rgb)


def render_view(model: DecoupledRadianceField, camera: PinholeCamera,
                scene_bound: float, n_samples: int = 48,
                white_background: bool = True, chunk_rays: int = 2048,
                occupancy: Optional[OccupancyGrid] = None,
                early_termination_tau: Optional[float] = None,
                policy=None):
    """Render a full image and depth map from a trained model.

    Rays are streamed through a :class:`~repro.nerf.pipeline.RenderPipeline`
    in chunks of ``chunk_rays``.  An ``occupancy`` grid culls samples in
    known-empty cells, and ``early_termination_tau`` stops marching rays
    whose transmittance has dropped below the threshold — both default to
    off, which renders densely (bit-identical to the pre-pipeline renderer).
    ``policy`` selects the compositing precision (``None`` = the float64
    reference); the trainer forwards its config's policy here so evaluation
    renders use the same precision as training.

    Returns ``(rgb, depth)`` with shapes ``(H, W, 3)`` and ``(H, W)``.
    """
    bundle = camera.all_rays()
    pipeline = RenderPipeline(
        model, scene_bound, n_samples=n_samples,
        white_background=white_background, occupancy=occupancy,
        culling_enabled=occupancy is not None,
        early_termination_tau=early_termination_tau,
        policy=policy,
    )
    colors = np.empty((bundle.n_rays, 3))
    depths = np.empty(bundle.n_rays)
    for start in range(0, bundle.n_rays, chunk_rays):
        stop = min(start + chunk_rays, bundle.n_rays)
        chunk = RayBundle(
            origins=bundle.origins[start:stop],
            directions=bundle.directions[start:stop],
            near=bundle.near,
            far=bundle.far,
        )
        out = pipeline.render_rays(chunk, rng=None, allow_termination=True)
        colors[start:stop] = out.render.colors
        depths[start:stop] = out.render.depth
    rgb_image = np.clip(colors, 0.0, 1.0).reshape(camera.height, camera.width, 3)
    depth_image = depths.reshape(camera.height, camera.width)
    return rgb_image, depth_image


def _depth_psnr(pred_depth: np.ndarray, gt_depth: np.ndarray,
                near: float, far: float) -> float:
    """PSNR between normalised predicted and ground-truth depth maps.

    Background rays terminate at (or beyond) the far plane for both the
    prediction and the ground truth, which would dominate the score and hide
    how well the *geometry* has been learned.  The metric is therefore
    evaluated on foreground pixels (ground-truth depth meaningfully closer
    than the far plane); if a view has no foreground it falls back to the
    full image.
    """
    span = max(far - near, 1e-9)
    pred = np.clip((pred_depth - near) / span, 0.0, 1.0)
    gt = np.clip((gt_depth - near) / span, 0.0, 1.0)
    foreground = gt < 0.95
    if np.any(foreground):
        return mse_to_psnr(float(np.mean((pred[foreground] - gt[foreground]) ** 2)))
    return psnr(pred, gt)


def evaluate_model(model: DecoupledRadianceField, dataset: SceneDataset,
                   n_views: Optional[int] = None, n_samples: int = 48,
                   white_background: bool = True,
                   occupancy: Optional[OccupancyGrid] = None,
                   early_termination_tau: Optional[float] = None,
                   policy=None) -> EvaluationResult:
    """Render test views of ``dataset`` with ``model`` and average PSNR.

    ``occupancy``, ``early_termination_tau`` and ``policy`` are forwarded to
    :func:`render_view`, so evaluation renders benefit from the same sample
    culling and compute precision as training when the caller (e.g. the
    trainer) provides them.
    """
    views = dataset.test_views if n_views is None else dataset.test_views[:n_views]
    if not views:
        raise ValueError("dataset has no test views to evaluate")
    rgb_scores: List[float] = []
    depth_scores: List[float] = []
    for view in views:
        rgb, depth = render_view(
            model, view.camera, dataset.scene_bound,
            n_samples=n_samples, white_background=white_background,
            occupancy=occupancy, early_termination_tau=early_termination_tau,
            policy=policy,
        )
        rgb_scores.append(psnr(rgb, view.rgb))
        depth_scores.append(
            _depth_psnr(depth, view.depth, view.camera.near, view.camera.far)
        )
    return EvaluationResult(
        rgb_psnr=float(np.mean(rgb_scores)),
        depth_psnr=float(np.mean(depth_scores)),
        per_view_rgb=rgb_scores,
        per_view_depth=depth_scores,
    )
