"""Runtime-breakdown analysis (Figs. 4 and 7).

Turns a device-model step-time estimate into the category shares the paper
plots: the embedding-grid interpolation step (❸-①) plus its back-propagation,
the MLP step (❸-②) plus its back-propagation, and everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.accelerator.devices import DeviceRuntimeEstimate
from repro.training.profiler import PipelineStep

#: Display categories used by the paper's breakdown figures.
CATEGORY_GRID = "grid interpolation (step 3-1) + backprop"
CATEGORY_MLP = "MLP (step 3-2) + backprop"
CATEGORY_OTHER = "other pipeline steps"


@dataclass
class RuntimeBreakdown:
    """Per-category share of one device's per-iteration runtime."""

    device: str
    total_per_iteration_s: float
    category_seconds: Dict[str, float]

    def fraction(self, category: str) -> float:
        if self.total_per_iteration_s <= 0:
            return 0.0
        return self.category_seconds.get(category, 0.0) / self.total_per_iteration_s

    @property
    def grid_fraction(self) -> float:
        """Share of runtime spent in the paper's bottleneck step."""
        return self.fraction(CATEGORY_GRID)


def _categorise(step_label: str) -> str:
    step = step_label.split("[")[0]
    if step in PipelineStep.GRID_STEPS:
        return CATEGORY_GRID
    if step in (PipelineStep.MLP_FORWARD, PipelineStep.MLP_BACKWARD):
        return CATEGORY_MLP
    return CATEGORY_OTHER


def runtime_breakdown(estimate: DeviceRuntimeEstimate) -> RuntimeBreakdown:
    """Aggregate a device estimate's step times into the paper's categories."""
    categories: Dict[str, float] = {
        CATEGORY_GRID: 0.0,
        CATEGORY_MLP: 0.0,
        CATEGORY_OTHER: 0.0,
    }
    for label, seconds in estimate.step_seconds.items():
        categories[_categorise(label)] += seconds
    return RuntimeBreakdown(
        device=estimate.device,
        total_per_iteration_s=estimate.per_iteration_s,
        category_seconds=categories,
    )
