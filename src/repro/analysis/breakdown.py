"""Runtime-breakdown analysis (Figs. 4 and 7).

Turns a device-model step-time estimate into the category shares the paper
plots: the embedding-grid interpolation step (❸-①) plus its back-propagation,
the MLP step (❸-②) plus its back-propagation, and everything else.  When the
underlying :class:`~repro.training.profiler.IterationWorkload` is supplied,
the breakdown also carries the occupancy-culling accounting (dense vs culled
point queries per iteration) so reports can show *which* workload the shares
were priced against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.accelerator.devices import DeviceRuntimeEstimate
from repro.training.profiler import IterationWorkload, PipelineStep

#: Display categories used by the paper's breakdown figures.
CATEGORY_GRID = "grid interpolation (step 3-1) + backprop"
CATEGORY_MLP = "MLP (step 3-2) + backprop"
CATEGORY_OTHER = "other pipeline steps"


@dataclass
class RuntimeBreakdown:
    """Per-category share of one device's per-iteration runtime.

    The query-accounting fields describe the workload the estimate was
    priced against: ``keep_fraction`` is 1.0 for a dense workload and the
    occupancy-culled share otherwise, with ``points_per_iteration`` the
    dense product and ``culled_points_per_iteration`` what actually reached
    the grids/MLPs.
    """

    device: str
    total_per_iteration_s: float
    category_seconds: Dict[str, float]
    keep_fraction: float = 1.0
    points_per_iteration: int = 0
    culled_points_per_iteration: int = 0

    def fraction(self, category: str) -> float:
        if self.total_per_iteration_s <= 0:
            return 0.0
        return self.category_seconds.get(category, 0.0) / self.total_per_iteration_s

    @property
    def grid_fraction(self) -> float:
        """Share of runtime spent in the paper's bottleneck step."""
        return self.fraction(CATEGORY_GRID)

    @property
    def queries_saved_per_iteration(self) -> int:
        """Point queries per iteration pruned by occupancy culling."""
        return self.points_per_iteration - self.culled_points_per_iteration


def _categorise(step_label: str) -> str:
    step = step_label.split("[")[0]
    if step in PipelineStep.GRID_STEPS:
        return CATEGORY_GRID
    if step in (PipelineStep.MLP_FORWARD, PipelineStep.MLP_BACKWARD):
        return CATEGORY_MLP
    return CATEGORY_OTHER


def runtime_breakdown(estimate: DeviceRuntimeEstimate,
                      workload: Optional[IterationWorkload] = None) -> RuntimeBreakdown:
    """Aggregate a device estimate's step times into the paper's categories.

    Pass the ``workload`` the estimate was computed from to surface its
    occupancy-culling accounting (keep fraction, dense vs culled queries per
    iteration) alongside the category shares.
    """
    categories: Dict[str, float] = {
        CATEGORY_GRID: 0.0,
        CATEGORY_MLP: 0.0,
        CATEGORY_OTHER: 0.0,
    }
    for label, seconds in estimate.step_seconds.items():
        categories[_categorise(label)] += seconds
    return RuntimeBreakdown(
        device=estimate.device,
        total_per_iteration_s=estimate.per_iteration_s,
        category_seconds=categories,
        keep_fraction=workload.keep_fraction if workload is not None else 1.0,
        points_per_iteration=(workload.points_per_iteration
                              if workload is not None else 0),
        culled_points_per_iteration=(workload.culled_points_per_iteration
                                     if workload is not None else 0),
    )
