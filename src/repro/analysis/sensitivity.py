"""Color-vs-density learning-pace study (Sec. 3.1 / Fig. 5).

The paper's motivating observation: under the same number of training
iterations, the reconstructed RGB images (driven by the color features) are
closer to ground truth than the depth images (driven by the learned density),
i.e. color is learned at a faster pace and is therefore less sensitive to
compression.  :func:`learning_pace_study` reproduces the quantified version:
train a model while periodically evaluating both RGB PSNR and depth PSNR on
held-out views, then report the two trajectories and the iteration at which
each crosses a target quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets.dataset import SceneDataset
from repro.training.trainer import Trainer


@dataclass
class LearningPaceResult:
    """RGB and depth PSNR trajectories of one training run."""

    scene: str
    iterations: List[int] = field(default_factory=list)
    rgb_psnrs: List[float] = field(default_factory=list)
    depth_psnrs: List[float] = field(default_factory=list)

    def iterations_to_reach(self, target_psnr: float, metric: str = "rgb") -> Optional[int]:
        """First evaluated iteration at which the metric reaches ``target_psnr``."""
        values = self.rgb_psnrs if metric == "rgb" else self.depth_psnrs
        for iteration, value in zip(self.iterations, values):
            if value >= target_psnr:
                return iteration
        return None

    @property
    def final_rgb_psnr(self) -> float:
        return self.rgb_psnrs[-1] if self.rgb_psnrs else float("nan")

    @property
    def final_depth_psnr(self) -> float:
        return self.depth_psnrs[-1] if self.depth_psnrs else float("nan")

    @property
    def mean_rgb_lead(self) -> float:
        """Average PSNR lead of color over density along the trajectory."""
        if not self.iterations:
            return float("nan")
        return float(np.mean(np.asarray(self.rgb_psnrs) - np.asarray(self.depth_psnrs)))


def learning_pace_study(dataset: SceneDataset, config: Instant3DConfig,
                        n_iterations: int, eval_every: int,
                        seed: int = 0, eval_views: int = 1,
                        eval_samples: int = 48) -> LearningPaceResult:
    """Train on one scene and record RGB/depth PSNR over the trajectory."""
    if eval_every < 1:
        raise ValueError("eval_every must be >= 1")
    model = DecoupledRadianceField(config, seed=seed)
    trainer = Trainer(model, dataset, config=config, seed=seed)
    result = trainer.train(n_iterations, eval_every=eval_every,
                           eval_views=eval_views, eval_samples=eval_samples)
    history = result.history
    iterations = list(history.eval_iterations)
    rgb = list(history.eval_rgb_psnrs)
    depth = list(history.eval_depth_psnrs)
    # Always include the final evaluation as the last trajectory point.
    if not iterations or iterations[-1] != result.n_iterations:
        iterations.append(result.n_iterations)
        rgb.append(result.final_eval.rgb_psnr)
        depth.append(result.final_eval.depth_psnr)
    return LearningPaceResult(
        scene=dataset.name,
        iterations=iterations,
        rgb_psnrs=rgb,
        depth_psnrs=depth,
    )
