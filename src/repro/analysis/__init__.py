"""Analyses behind the paper's motivating figures.

* :mod:`repro.analysis.access_patterns` — clustering of the eight neighbour
  vertex addresses into four groups, intra/inter-group address distances
  (Figs. 8-9), and the sliding-window unique-address statistic (Fig. 10).
* :mod:`repro.analysis.breakdown` — per-step runtime breakdowns of a device
  estimate (Figs. 4 and 7).
* :mod:`repro.analysis.sensitivity` — the color-vs-density learning-pace
  study (Fig. 5).
"""

from repro.analysis.access_patterns import (
    AddressGroupStats,
    SlidingWindowStats,
    address_group_stats,
    forward_backward_window_comparison,
    group_vertex_addresses,
    intra_group_distances,
    inter_group_distances,
    intra_group_within_threshold,
    sliding_window_unique_addresses,
)
from repro.analysis.breakdown import RuntimeBreakdown, runtime_breakdown
from repro.analysis.sensitivity import LearningPaceResult, learning_pace_study

__all__ = [
    "AddressGroupStats",
    "SlidingWindowStats",
    "address_group_stats",
    "forward_backward_window_comparison",
    "group_vertex_addresses",
    "intra_group_distances",
    "inter_group_distances",
    "intra_group_within_threshold",
    "sliding_window_unique_addresses",
    "RuntimeBreakdown",
    "runtime_breakdown",
    "LearningPaceResult",
    "learning_pace_study",
]
