"""Memory-access-pattern analyses of the embedding-grid interpolation.

Sec. 4.2 of the paper makes three observations that motivate the FRM and BUM
units; this module measures all three on real address traces:

1. **Grouping (Fig. 8)** — the eight neighbouring vertex addresses of a
   queried point form four groups of two: the members of a group share their
   y and z coordinates and differ only along x, so (because ``pi1 = 1`` in
   the spatial hash) their addresses are close, while different groups are
   pushed far apart by the large y/z primes.
2. **Intra-group locality (Fig. 9)** — more than 90 % of intra-group address
   distances fall within [-5, 5], consistently across training iterations.
3. **Back-propagation sharing (Fig. 10)** — inside a sliding window of 1000
   consecutive accesses, feed-forward reads are almost all unique while
   back-propagation updates revisit a much smaller set of addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.grid.hash_encoding import GridAccessRecord

#: Corner indices per group: corners that share y and z and differ only in x.
#: With the corner order of :data:`repro.grid.interpolation.CORNER_OFFSETS`
#: (x is the least-significant bit) these are consecutive pairs.
GROUP_CORNER_PAIRS = ((0, 1), (2, 3), (4, 5), (6, 7))


@dataclass
class AddressGroupStats:
    """Distance statistics of the four address groups of one trace."""

    mean_intra_group_distance: float
    mean_inter_group_distance: float
    fraction_intra_within_threshold: float
    threshold: int
    n_points: int


@dataclass
class SlidingWindowStats:
    """Unique-address counts inside sliding windows (Fig. 10)."""

    window: int
    unique_counts: List[int]

    @property
    def mean_unique(self) -> float:
        return float(np.mean(self.unique_counts)) if self.unique_counts else 0.0

    @property
    def min_unique(self) -> int:
        return int(min(self.unique_counts)) if self.unique_counts else 0


def group_vertex_addresses(record: GridAccessRecord, level: int) -> np.ndarray:
    """Arrange one level's addresses as ``(N, 4 groups, 2 members)``."""
    addresses = record.addresses[level]
    grouped = np.empty((addresses.shape[0], 4, 2), dtype=np.int64)
    for group_idx, (a, b) in enumerate(GROUP_CORNER_PAIRS):
        grouped[:, group_idx, 0] = addresses[:, a]
        grouped[:, group_idx, 1] = addresses[:, b]
    return grouped


def intra_group_distances(record: GridAccessRecord, level: int) -> np.ndarray:
    """Signed address distances between the two members of each group."""
    grouped = group_vertex_addresses(record, level)
    return (grouped[:, :, 1] - grouped[:, :, 0]).reshape(-1)


def inter_group_distances(record: GridAccessRecord, level: int) -> np.ndarray:
    """Absolute address distances between the four group centroids of each point."""
    grouped = group_vertex_addresses(record, level)
    centroids = grouped.mean(axis=2)                   # (N, 4)
    diffs = []
    for i in range(4):
        for j in range(i + 1, 4):
            diffs.append(np.abs(centroids[:, i] - centroids[:, j]))
    return np.concatenate(diffs)


def intra_group_within_threshold(record: GridAccessRecord, level: int,
                                 threshold: int = 5) -> float:
    """Fraction of intra-group distances whose magnitude is <= ``threshold``."""
    distances = intra_group_distances(record, level)
    if distances.size == 0:
        return float("nan")
    return float(np.mean(np.abs(distances) <= threshold))


def address_group_stats(record: GridAccessRecord, level: int,
                        threshold: int = 5) -> AddressGroupStats:
    """Summary statistics reproducing the observations of Figs. 8 and 9."""
    intra = intra_group_distances(record, level)
    inter = inter_group_distances(record, level)
    return AddressGroupStats(
        mean_intra_group_distance=float(np.mean(np.abs(intra))) if intra.size else float("nan"),
        mean_inter_group_distance=float(np.mean(inter)) if inter.size else float("nan"),
        fraction_intra_within_threshold=intra_group_within_threshold(record, level, threshold),
        threshold=threshold,
        n_points=record.n_points,
    )


def sliding_window_unique_addresses(addresses: Sequence[int], window: int = 1000,
                                    stride: int = 1000) -> SlidingWindowStats:
    """Count unique addresses inside sliding windows of ``window`` accesses."""
    addresses = np.asarray(addresses, dtype=np.int64).reshape(-1)
    if window < 1 or stride < 1:
        raise ValueError("window and stride must be positive")
    counts: List[int] = []
    for start in range(0, max(addresses.size - window + 1, 1), stride):
        chunk = addresses[start:start + window]
        if chunk.size == 0:
            break
        counts.append(int(np.unique(chunk).size))
    return SlidingWindowStats(window=window, unique_counts=counts)


def forward_backward_window_comparison(read_addresses: np.ndarray,
                                       write_addresses: np.ndarray,
                                       window: int = 1000) -> Dict[str, SlidingWindowStats]:
    """The Fig. 10 comparison: unique addresses per window, forward vs backward."""
    return {
        "feed_forward": sliding_window_unique_addresses(read_addresses, window=window),
        "back_propagation": sliding_window_unique_addresses(write_addresses, window=window),
    }
