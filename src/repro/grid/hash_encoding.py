"""Multiresolution hash-grid embedding (Instant-NGP's "3D embedding grid").

A :class:`MultiResHashGrid` is a stack of :class:`HashGridLevel` objects of
geometrically increasing resolution.  Each level stores ``F`` features per
vertex in a 1-D table (dense for coarse levels, hashed for fine levels).
Querying a batch of 3-D points returns the concatenation of every level's
trilinearly interpolated features — exactly Step ❸-① of the paper's training
pipeline — and records the table addresses that were touched so that the
accelerator simulator and the access-pattern analyses (Figs. 8-10) can replay
them.

The Instant-3D algorithm instantiates two of these grids (a density grid and
a color grid) with different ``size_scale`` factors; see
:mod:`repro.core.decoupled_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.grid.hash_function import _MASK32, PI1, PI2, PI3, dense_index, spatial_hash
from repro.grid.interpolation import (
    CORNER_OFFSETS,
    interpolate,
    interpolate_backward,
    trilinear_weights,
)
from repro.nn.parameter import Parameter

#: Bytes per stored feature (FP16 in the accelerator and in Instant-NGP).
FEATURE_BYTES = 2


@dataclass(frozen=True)
class HashGridConfig:
    """Configuration of a multiresolution hash grid.

    Attributes
    ----------
    n_levels:
        Number of resolution levels ``L``.
    n_features_per_level:
        Features stored per vertex ``F`` (Instant-NGP default: 2).
    log2_hashmap_size:
        Log2 of the per-level hash-table entry count ``T`` before
        ``size_scale`` is applied.
    base_resolution:
        Resolution of the coarsest level.
    finest_resolution:
        Resolution of the finest level; the per-level growth factor is
        derived from this (Instant-NGP's ``b``).
    size_scale:
        Multiplier on the hash-table entry count, used to realise the
        paper's grid-size ratios ``S_D : S_C`` (e.g. 0.25 for the color
        grid when ``S_D : S_C = 1 : 0.25``).
    """

    n_levels: int = 8
    n_features_per_level: int = 2
    log2_hashmap_size: int = 14
    base_resolution: int = 16
    finest_resolution: int = 256
    size_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ValueError("n_levels must be >= 1")
        if self.n_features_per_level < 1:
            raise ValueError("n_features_per_level must be >= 1")
        if not (0.0 < self.size_scale <= 1.0):
            raise ValueError("size_scale must be in (0, 1]")
        if self.base_resolution < 2:
            raise ValueError("base_resolution must be >= 2")
        if self.finest_resolution < self.base_resolution:
            raise ValueError("finest_resolution must be >= base_resolution")

    @property
    def per_level_scale(self) -> float:
        """Geometric growth factor ``b`` between consecutive levels."""
        if self.n_levels == 1:
            return 1.0
        return float(
            np.exp(
                (np.log(self.finest_resolution) - np.log(self.base_resolution))
                / (self.n_levels - 1)
            )
        )

    @property
    def max_table_entries(self) -> int:
        """Per-level table entry budget after applying ``size_scale``."""
        return max(16, int(round((2 ** self.log2_hashmap_size) * self.size_scale)))

    @property
    def n_output_features(self) -> int:
        """Dimensionality of the concatenated embedding (``L * F``)."""
        return self.n_levels * self.n_features_per_level

    def level_resolution(self, level: int) -> int:
        """Grid resolution of ``level`` (0 = coarsest)."""
        return int(np.floor(self.base_resolution * self.per_level_scale ** level))

    def scaled(self, size_scale: float) -> "HashGridConfig":
        """Return a copy of this config with a different ``size_scale``."""
        return HashGridConfig(
            n_levels=self.n_levels,
            n_features_per_level=self.n_features_per_level,
            log2_hashmap_size=self.log2_hashmap_size,
            base_resolution=self.base_resolution,
            finest_resolution=self.finest_resolution,
            size_scale=size_scale,
        )


@dataclass
class GridAccessRecord:
    """Addresses and weights touched by one grid query (one batch of points).

    ``addresses`` and ``weights`` are lists with one ``(N, 8)`` array per
    level; ``level_offsets`` gives each level's base offset inside the
    concatenated 1-D storage so traces can use globally unique addresses.
    """

    addresses: List[np.ndarray] = field(default_factory=list)
    weights: List[np.ndarray] = field(default_factory=list)
    level_offsets: List[int] = field(default_factory=list)
    table_sizes: List[int] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return 0 if not self.addresses else int(self.addresses[0].shape[0])

    @property
    def n_levels(self) -> int:
        return len(self.addresses)

    def flat_addresses(self, level: Optional[int] = None) -> np.ndarray:
        """Global (level-offset) addresses, flattened in access order.

        Access order is point-major within a level: for each point its eight
        corner reads are issued consecutively, matching the grid-core
        pipeline of the accelerator.
        """
        if level is not None:
            return (self.addresses[level] + self.level_offsets[level]).reshape(-1)
        parts = [
            (addr + offset).reshape(-1)
            for addr, offset in zip(self.addresses, self.level_offsets)
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def total_accesses(self) -> int:
        """Total number of individual vertex-embedding reads."""
        return int(sum(a.size for a in self.addresses))


class _PlanesAccessRecord(GridAccessRecord):
    """Access record backed by the fused engine's corner planes.

    The fused engine stores *global* (level-offset) addresses in contiguous
    ``(8, N, L)`` corner planes; the per-level local ``(N, 8)`` address
    arrays of the :class:`GridAccessRecord` interface are materialised
    lazily on first access, keeping trace bookkeeping off the query hot
    path.  All derived views are value-identical to the per-level engine's
    record.
    """

    def __init__(self, global_planes: np.ndarray, weight_planes: np.ndarray,
                 level_offsets: List[int], table_sizes: List[int]):
        # Deliberately does not call the dataclass __init__: the address and
        # weight lists are exposed through lazy properties instead of fields.
        self._global_planes = global_planes
        self._weight_planes = weight_planes
        self._level_offsets = list(level_offsets)
        self._table_sizes = list(table_sizes)
        self._local_addresses: Optional[List[np.ndarray]] = None
        self._local_weights: Optional[List[np.ndarray]] = None

    @property
    def addresses(self) -> List[np.ndarray]:
        if self._local_addresses is None:
            self._local_addresses = [
                self._global_planes[:, :, level].T - offset
                for level, offset in enumerate(self._level_offsets)
            ]
        return self._local_addresses

    @property
    def weights(self) -> List[np.ndarray]:
        if self._local_weights is None:
            self._local_weights = [
                self._weight_planes[:, :, level].T
                for level in range(len(self._table_sizes))
            ]
        return self._local_weights

    @property
    def level_offsets(self) -> List[int]:
        return self._level_offsets

    @property
    def table_sizes(self) -> List[int]:
        return self._table_sizes

    @property
    def n_points(self) -> int:
        return int(self._global_planes.shape[1])

    @property
    def n_levels(self) -> int:
        return len(self._table_sizes)

    def flat_addresses(self, level: Optional[int] = None) -> np.ndarray:
        if level is not None:
            return np.ascontiguousarray(
                self._global_planes[:, :, level].T).reshape(-1)
        parts = [self.flat_addresses(level) for level in range(self.n_levels)]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def total_accesses(self) -> int:
        return int(self._global_planes.size)


class HashGridLevel:
    """A single resolution level of the multiresolution hash grid."""

    def __init__(self, resolution: int, max_entries: int, n_features: int,
                 rng: np.random.Generator, name: str = "level"):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.resolution = int(resolution)
        self.n_features = int(n_features)
        n_vertices = (self.resolution + 1) ** 3
        # Coarse levels that fit in the table are stored densely
        # (collision-free); finer levels fall back to the spatial hash.
        self.is_dense = n_vertices <= max_entries
        self.table_size = n_vertices if self.is_dense else int(max_entries)
        init = rng.uniform(-1e-4, 1e-4, size=(self.table_size, self.n_features))
        self.table = Parameter(init, name=f"{name}.table")

    # -- indexing -----------------------------------------------------------
    def vertex_addresses(self, vertex_coords: np.ndarray) -> np.ndarray:
        """Map integer vertex coordinates of shape (..., 3) to table indices."""
        if self.is_dense:
            return dense_index(vertex_coords, self.resolution)
        # Corners derive from points clipped to [0, 1]^3, so they are
        # structurally non-negative; skip the hash's validation scan.
        return spatial_hash(vertex_coords, self.table_size, validate=False)

    # -- forward / backward -------------------------------------------------
    def forward(self, points: np.ndarray):
        """Interpolate embeddings for ``points`` in ``[0, 1]^3``.

        Returns ``(embeddings, addresses, weights)`` where ``embeddings`` is
        ``(N, F)`` and the other two are ``(N, 8)`` caches reused by
        :meth:`backward` and exported for access tracing.
        """
        points = np.clip(np.asarray(points, dtype=np.float64), 0.0, 1.0)
        scaled = points * self.resolution
        base = np.floor(scaled).astype(np.int64)
        base = np.minimum(base, self.resolution - 1)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]   # (N, 8, 3)
        addresses = self.vertex_addresses(corners)                # (N, 8)
        weights = trilinear_weights(frac)                         # (N, 8)
        corner_values = self.table.data[addresses]                # (N, 8, F)
        embeddings = interpolate(corner_values, weights)
        return embeddings.astype(np.float32), addresses, weights

    def backward(self, grad_embeddings: np.ndarray, addresses: np.ndarray,
                 weights: np.ndarray) -> None:
        """Scatter-add the embedding gradient into the table gradient."""
        corner_grads = interpolate_backward(grad_embeddings, weights)  # (N, 8, F)
        flat_addr = addresses.reshape(-1)
        flat_grads = corner_grads.reshape(-1, self.n_features)
        grad_table = np.zeros_like(self.table.grad, dtype=np.float64)
        np.add.at(grad_table, flat_addr, flat_grads)
        self.table.accumulate_grad(grad_table.astype(np.float32))

    # -- bookkeeping ---------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        """Bytes of FP16 storage this level occupies in the hash table."""
        return self.table_size * self.n_features * FEATURE_BYTES

    def parameters(self) -> List[Parameter]:
        return [self.table]


class MultiResHashGrid:
    """Multiresolution hash-grid encoder with access tracing.

    Two query engines share one set of per-level tables:

    * the **fused engine** (default) computes corner addresses and trilinear
      weights for all ``L`` levels in one stacked ``(N, L, 8)`` pass, gathers
      from a single concatenated feature table, and back-propagates with a
      ``np.bincount``-based scatter over the touched addresses;
    * the **per-level loop** walks :class:`HashGridLevel` objects one at a
      time — the original reference path, kept switchable (``fused=False``)
      for differential testing and the throughput benchmark.

    Both engines produce the same embeddings and bit-identical
    :class:`GridAccessRecord` traces, so the accelerator simulator and the
    Figs. 8-10 analyses are unaffected by which engine ran.

    Parameters
    ----------
    config:
        Grid hyper-parameters.
    rng:
        Generator used to initialise the embedding tables.
    name:
        Prefix for parameter names (useful when two grids coexist, e.g. the
        Instant-3D density and color grids).
    fused:
        Select the fused stacked-kernel engine (default) or the per-level
        loop.  May be toggled at runtime via the ``fused`` attribute.
    max_chunk_points:
        When set, queries larger than this many points are processed in
        chunks of at most ``max_chunk_points``, bounding the engine's
        transient working set (per-axis lattices, hash products, gather and
        accumulation buffers) and keeping each chunk's planes inside the
        cache hierarchy.  The access-trace planes themselves (addresses and
        weights, the same footprint the per-level engine's record has)
        necessarily still scale with the batch size.  The concatenated
        outputs and access record are identical to the unchunked query.
    """

    def __init__(self, config: HashGridConfig, rng: np.random.Generator,
                 name: str = "grid", fused: bool = True,
                 max_chunk_points: Optional[int] = None):
        if max_chunk_points is not None and max_chunk_points < 1:
            raise ValueError("max_chunk_points must be >= 1 or None")
        self.config = config
        self.name = name
        self.fused = bool(fused)
        self.max_chunk_points = max_chunk_points
        self.levels: List[HashGridLevel] = []
        for level_idx in range(config.n_levels):
            self.levels.append(
                HashGridLevel(
                    resolution=config.level_resolution(level_idx),
                    max_entries=config.max_table_entries,
                    n_features=config.n_features_per_level,
                    rng=rng,
                    name=f"{name}.level{level_idx}",
                )
            )
        # Per-level constants of the fused engine, precomputed as arrays so a
        # query touches no Python-level per-level loop.
        self._resolutions = np.array([l.resolution for l in self.levels],
                                     dtype=np.float64)
        self._max_base = np.array([l.resolution - 1 for l in self.levels],
                                  dtype=np.int64)
        sizes = np.array([l.table_size for l in self.levels], dtype=np.int64)
        self._table_sizes_arr = sizes
        self._offsets_arr = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
        self._level_bounds = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        dense_mask = np.array([l.is_dense for l in self.levels], dtype=bool)
        self._dense_idx = np.flatnonzero(dense_mask)
        self._hash_idx = np.flatnonzero(~dense_mask)
        # Dense levels always form a prefix (level resolutions are
        # nondecreasing while the table budget is constant); the fused
        # engine's grouped level slices rely on that.
        if self._dense_idx.size and int(self._dense_idx[-1]) != self._dense_idx.size - 1:
            raise RuntimeError("dense levels must form a prefix of the level stack")
        self._dense_strides = np.array(
            [self.levels[i].resolution + 1 for i in self._dense_idx], dtype=np.int64)
        hash_sizes = sizes[self._hash_idx]
        self._hash_sizes_u64 = hash_sizes.astype(np.uint64)
        self._hash_all_pow2 = bool(
            ((hash_sizes & (hash_sizes - 1)) == 0).all()) if hash_sizes.size else True
        # Reused concatenated-table buffer (refreshed each forward, since the
        # optimiser mutates the per-level tables in place between queries).
        self._table_cat = np.empty((int(self._level_bounds[-1]),
                                    config.n_features_per_level), dtype=np.float32)
        self._last_access: Optional[GridAccessRecord] = None
        self._last_points: Optional[np.ndarray] = None
        self._last_addr_planes: Optional[np.ndarray] = None
        self._last_weight_planes: Optional[np.ndarray] = None

    # -- fused engine internals ---------------------------------------------
    #
    # The fused engine works in a corner-major "plane" layout: addresses and
    # weights live in contiguous ``(8, N, L)`` arrays, one plane per cube
    # corner.  Every arithmetic pass then streams over a flat ``(N, L)``
    # block — no ``(N, L, 8, 3)`` corner tensor is ever materialised — and
    # the per-corner hash/weight products are shared across the four corners
    # that reuse them (``h(x+dx) ^ h(y+dy)`` appears in two corners each).

    #: Corner build order: (xy-pair index, z index) per corner, consistent
    #: with :data:`~repro.grid.interpolation.CORNER_OFFSETS` (dx = bit 0,
    #: dy = bit 1, dz = bit 2).
    _CORNER_XY_Z = ((0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1), (2, 1), (3, 1))

    def _concat_table(self) -> np.ndarray:
        """Concatenate the per-level feature tables into one ``(T, F)`` array.

        The destination buffer is owned by the grid and reused across calls;
        only the copy (no allocation) happens per query.
        """
        np.concatenate([level.table.data for level in self.levels], axis=0,
                       out=self._table_cat)
        return self._table_cat

    def _fused_query_into(self, points: np.ndarray, table: np.ndarray,
                          addr_planes: np.ndarray, weight_planes: np.ndarray,
                          out: np.ndarray) -> None:
        """One stacked-kernel query: all levels of one point chunk at once.

        Writes into caller-provided views: ``out`` is ``(N, L*F)`` float32
        embeddings and the planes are ``(8, N, L)`` arrays holding, per cube
        corner, the *global* (level-offset) table address (int64) and
        trilinear weight (float64) of every (point, level) pair.  ``table``
        is the concatenated feature table from :meth:`_concat_table`.
        """
        n = points.shape[0]
        n_levels = len(self.levels)
        n_dense = self._dense_idx.size
        clipped = np.clip(points, 0.0, 1.0)
        # Per-axis voxel base coordinates and fractional positions, (N, L).
        base = []
        frac = []
        for axis in range(3):
            scaled = clipped[:, axis:axis + 1] * self._resolutions[None, :]
            # Truncation equals floor here because ``scaled >= 0``.
            b = scaled.astype(np.int64)
            np.minimum(b, self._max_base[None, :], out=b)
            base.append(b)
            frac.append(scaled - b)
        bx, by, bz = base
        fx, fy, fz = frac

        if n_dense:
            # Dense (collision-free) levels: linear index with x fastest;
            # the level's global table offset is folded into the z term.
            strides = self._dense_strides[None, :]
            x0 = bx[:, :n_dense]
            y0 = by[:, :n_dense] * strides
            z0 = (bz[:, :n_dense] * (strides * strides)
                  + self._offsets_arr[None, :n_dense])
            x1 = x0 + 1
            y1 = y0 + strides
            z1 = z0 + strides * strides
            xy = (x0 + y0, x1 + y0, x0 + y1, x1 + y1)
            zs = (z0, z1)
            for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
                np.add(xy[xy_idx], zs[z_idx], out=addr_planes[corner, :, :n_dense])
        if n_dense < n_levels:
            # Hashed levels: per-axis products are shared across corners.
            one = np.uint64(1)
            hash_offsets = self._offsets_arr[None, n_dense:]
            ux = bx[:, n_dense:].astype(np.uint64)
            uy = by[:, n_dense:].astype(np.uint64)
            uz = bz[:, n_dense:].astype(np.uint64)
            hx0 = (ux * PI1) & _MASK32
            hy0 = (uy * PI2) & _MASK32
            hz0 = (uz * PI3) & _MASK32
            hx1 = ((ux + one) * PI1) & _MASK32
            hy1 = ((uy + one) * PI2) & _MASK32
            hz1 = ((uz + one) * PI3) & _MASK32
            xy = (hx0 ^ hy0, hx1 ^ hy0, hx0 ^ hy1, hx1 ^ hy1)
            zs = (hz0, hz1)
            sizes = self._hash_sizes_u64
            h = np.empty((n, n_levels - n_dense), dtype=np.uint64)
            if self._hash_all_pow2:
                # ``& (T-1) == % T`` for power-of-two tables, and ``&``
                # distributes over ``^``: mask the six shared products once
                # instead of masking every corner's xor.
                pow2_mask = (sizes - one)[None, :]
                xy = tuple(v & pow2_mask for v in xy)
                zs = tuple(v & pow2_mask for v in zs)
                for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
                    np.bitwise_xor(xy[xy_idx], zs[z_idx], out=h)
                    np.add(h.view(np.int64), hash_offsets,
                           out=addr_planes[corner, :, n_dense:])
            else:
                for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
                    np.bitwise_xor(xy[xy_idx], zs[z_idx], out=h)
                    h %= sizes[None, :]
                    np.add(h.view(np.int64), hash_offsets,
                           out=addr_planes[corner, :, n_dense:])

        gx, gy, gz = 1.0 - fx, 1.0 - fy, 1.0 - fz
        wxy = (gx * gy, fx * gy, gx * fy, fx * fy)
        wzs = (gz, fz)
        for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
            np.multiply(wxy[xy_idx], wzs[z_idx], out=weight_planes[corner])

        if self.config.n_features_per_level == 2:
            # F == 2 fast path: each table row is one complex64, so a corner
            # gather is a single flat take and the weighted accumulation runs
            # on complex128 planes whose (real, imag) parts are the two
            # features.  Multiplying by a real weight scales both features
            # with the same float64 products as the generic path.
            flat = table.view(np.complex64).ravel()
            acc = np.empty((n, n_levels), dtype=np.complex128)
            tmp = np.empty((n, n_levels), dtype=np.complex128)
            gathered = np.empty((n, n_levels), dtype=np.complex64)
            for corner in range(8):
                # mode="clip" skips per-element bounds checks; addresses are
                # in range by construction (hash mod / dense index + offset).
                np.take(flat, addr_planes[corner], out=gathered, mode="clip")
                if corner == 0:
                    np.multiply(weight_planes[corner], gathered, out=acc)
                else:
                    np.multiply(weight_planes[corner], gathered, out=tmp)
                    acc += tmp
            out[...] = acc.view(np.float64).reshape(n, -1)
        else:
            acc = np.zeros((n, n_levels, self.config.n_features_per_level),
                           dtype=np.float64)
            for corner in range(8):
                corner_values = np.take(table, addr_planes[corner], axis=0,
                                        mode="clip")
                acc += weight_planes[corner][:, :, None] * corner_values
            out[...] = acc.reshape(n, -1)

    def _record_from_planes(self, addr_planes: np.ndarray,
                            weight_planes: np.ndarray) -> GridAccessRecord:
        """Lazy access record over the global-address corner planes."""
        return _PlanesAccessRecord(
            addr_planes, weight_planes,
            [int(offset) for offset in self._offsets_arr],
            [int(size) for size in self._table_sizes_arr],
        )

    # -- forward / backward -------------------------------------------------
    def forward(self, points: np.ndarray) -> np.ndarray:
        """Encode ``(N, 3)`` points in ``[0, 1]^3`` into ``(N, L*F)`` features."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must have shape (N, 3), got {points.shape}")
        if not self.fused:
            return self._forward_loop(points)
        n = points.shape[0]
        n_levels = len(self.levels)
        out = np.empty((n, self.config.n_output_features), dtype=np.float32)
        addr_planes = np.empty((8, n, n_levels), dtype=np.int64)
        weight_planes = np.empty((8, n, n_levels), dtype=np.float64)
        table = self._concat_table()
        chunk = self.max_chunk_points if self.max_chunk_points is not None else max(n, 1)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            self._fused_query_into(points[start:stop], table,
                                   addr_planes[:, start:stop],
                                   weight_planes[:, start:stop],
                                   out[start:stop])
        self._last_addr_planes = addr_planes
        self._last_weight_planes = weight_planes
        self._last_access = self._record_from_planes(addr_planes, weight_planes)
        self._last_points = points
        return out

    def _forward_loop(self, points: np.ndarray) -> np.ndarray:
        """Reference per-level query loop (the pre-fusion engine)."""
        record = GridAccessRecord()
        outputs = []
        offset = 0
        for level in self.levels:
            emb, addresses, weights = level.forward(points)
            outputs.append(emb)
            record.addresses.append(addresses)
            record.weights.append(weights)
            record.level_offsets.append(offset)
            record.table_sizes.append(level.table_size)
            offset += level.table_size
        self._last_addr_planes = None
        self._last_weight_planes = None
        self._last_access = record
        self._last_points = points
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_embeddings: np.ndarray) -> None:
        """Back-propagate the concatenated embedding gradient into the tables.

        Must be called after :meth:`forward`; uses the cached addresses and
        weights from the most recent query.
        """
        if self._last_access is None:
            raise RuntimeError("backward called before forward")
        grad_embeddings = np.asarray(grad_embeddings, dtype=np.float64)
        expected = (self._last_access.n_points, self.config.n_output_features)
        if grad_embeddings.shape != expected:
            raise ValueError(
                f"grad_embeddings shape {grad_embeddings.shape} does not match {expected}"
            )
        if self.fused:
            self._backward_fused(grad_embeddings)
            return
        f = self.config.n_features_per_level
        for idx, level in enumerate(self.levels):
            grad_slice = grad_embeddings[:, idx * f:(idx + 1) * f]
            level.backward(
                grad_slice,
                self._last_access.addresses[idx],
                self._last_access.weights[idx],
            )

    def _backward_fused(self, grad_embeddings: np.ndarray) -> None:
        """Fused scatter of embedding gradients into every level's table.

        Per-corner gradients of all levels are accumulated with
        ``np.bincount`` over global (level-offset) addresses — replacing the
        per-level dense-zeros + ``np.add.at`` scatter — and only the touched
        table rows receive float32 updates.  Chunks accumulate into one
        float64 buffer, so chunked and unchunked backward passes agree.
        """
        addr_planes = self._last_addr_planes
        weight_planes = self._last_weight_planes
        if addr_planes is None or weight_planes is None:
            # Forward ran on the per-level engine; rebuild the (global-
            # address) corner planes from its record.
            local = np.stack(self._last_access.addresses, axis=1)   # (N, L, 8)
            addr_planes = np.ascontiguousarray(
                np.moveaxis(local + np.asarray(self._last_access.level_offsets
                                               )[None, :, None], 2, 0))
            weight_planes = np.ascontiguousarray(
                np.moveaxis(np.stack(self._last_access.weights, axis=1), 2, 0))
        n = grad_embeddings.shape[0]
        n_levels = len(self.levels)
        f = self.config.n_features_per_level
        total = int(self._level_bounds[-1])
        grad3 = grad_embeddings.reshape(n, n_levels, f)
        # The working set per corner is one (N, L) plane, so no chunking is
        # needed here even for very large batches.
        feature_grads = [np.ascontiguousarray(grad3[:, :, j]) for j in range(f)]
        acc = np.zeros((f, total), dtype=np.float64)
        contrib = np.empty((n, n_levels), dtype=np.float64)
        for corner in range(8):
            flat_addr = addr_planes[corner].ravel()
            corner_weight = weight_planes[corner]
            for j in range(f):
                np.multiply(corner_weight, feature_grads[j], out=contrib)
                acc[j] += np.bincount(flat_addr, weights=contrib.ravel(),
                                      minlength=total)
        acc = acc.T
        touched = np.flatnonzero(np.any(acc != 0.0, axis=1))
        bounds = np.searchsorted(touched, self._level_bounds)
        for idx, level in enumerate(self.levels):
            lo, hi = bounds[idx], bounds[idx + 1]
            if lo == hi:
                continue
            rows = touched[lo:hi] - self._offsets_arr[idx]
            level.table.grad[rows] += acc[touched[lo:hi]].astype(np.float32)

    # -- tracing / bookkeeping ------------------------------------------------
    @property
    def last_access(self) -> Optional[GridAccessRecord]:
        """Access record of the most recent :meth:`forward` call."""
        return self._last_access

    @property
    def n_output_features(self) -> int:
        return self.config.n_output_features

    @property
    def total_table_entries(self) -> int:
        return sum(level.table_size for level in self.levels)

    @property
    def storage_bytes(self) -> int:
        """Total FP16 bytes of embedding storage across all levels."""
        return sum(level.storage_bytes for level in self.levels)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for level in self.levels:
            params.extend(level.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of every level's feature table."""
        return {"tables": [level.table.state_dict() for level in self.levels]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into an identically configured grid."""
        tables = state["tables"]
        if len(tables) != len(self.levels):
            raise ValueError(
                f"checkpoint has {len(tables)} levels, grid has "
                f"{len(self.levels)}")
        for level, entry in zip(self.levels, tables):
            level.table.load_state_dict(entry)

    def accesses_per_point(self) -> int:
        """Vertex reads needed to encode one point (8 per level)."""
        return 8 * self.config.n_levels
