"""Multiresolution hash-grid embedding (Instant-NGP's "3D embedding grid").

A :class:`MultiResHashGrid` is a stack of :class:`HashGridLevel` objects of
geometrically increasing resolution.  Each level stores ``F`` features per
vertex in a 1-D table (dense for coarse levels, hashed for fine levels).
Querying a batch of 3-D points returns the concatenation of every level's
trilinearly interpolated features — exactly Step ❸-① of the paper's training
pipeline — and records the table addresses that were touched so that the
accelerator simulator and the access-pattern analyses (Figs. 8-10) can replay
them.

The Instant-3D algorithm instantiates two of these grids (a density grid and
a color grid) with different ``size_scale`` factors; see
:mod:`repro.core.decoupled_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.grid.hash_function import dense_index, spatial_hash
from repro.grid.interpolation import (
    CORNER_OFFSETS,
    interpolate,
    interpolate_backward,
    trilinear_weights,
)
from repro.nn.parameter import Parameter

#: Bytes per stored feature (FP16 in the accelerator and in Instant-NGP).
FEATURE_BYTES = 2


@dataclass(frozen=True)
class HashGridConfig:
    """Configuration of a multiresolution hash grid.

    Attributes
    ----------
    n_levels:
        Number of resolution levels ``L``.
    n_features_per_level:
        Features stored per vertex ``F`` (Instant-NGP default: 2).
    log2_hashmap_size:
        Log2 of the per-level hash-table entry count ``T`` before
        ``size_scale`` is applied.
    base_resolution:
        Resolution of the coarsest level.
    finest_resolution:
        Resolution of the finest level; the per-level growth factor is
        derived from this (Instant-NGP's ``b``).
    size_scale:
        Multiplier on the hash-table entry count, used to realise the
        paper's grid-size ratios ``S_D : S_C`` (e.g. 0.25 for the color
        grid when ``S_D : S_C = 1 : 0.25``).
    """

    n_levels: int = 8
    n_features_per_level: int = 2
    log2_hashmap_size: int = 14
    base_resolution: int = 16
    finest_resolution: int = 256
    size_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ValueError("n_levels must be >= 1")
        if self.n_features_per_level < 1:
            raise ValueError("n_features_per_level must be >= 1")
        if not (0.0 < self.size_scale <= 1.0):
            raise ValueError("size_scale must be in (0, 1]")
        if self.base_resolution < 2:
            raise ValueError("base_resolution must be >= 2")
        if self.finest_resolution < self.base_resolution:
            raise ValueError("finest_resolution must be >= base_resolution")

    @property
    def per_level_scale(self) -> float:
        """Geometric growth factor ``b`` between consecutive levels."""
        if self.n_levels == 1:
            return 1.0
        return float(
            np.exp(
                (np.log(self.finest_resolution) - np.log(self.base_resolution))
                / (self.n_levels - 1)
            )
        )

    @property
    def max_table_entries(self) -> int:
        """Per-level table entry budget after applying ``size_scale``."""
        return max(16, int(round((2 ** self.log2_hashmap_size) * self.size_scale)))

    @property
    def n_output_features(self) -> int:
        """Dimensionality of the concatenated embedding (``L * F``)."""
        return self.n_levels * self.n_features_per_level

    def level_resolution(self, level: int) -> int:
        """Grid resolution of ``level`` (0 = coarsest)."""
        return int(np.floor(self.base_resolution * self.per_level_scale ** level))

    def scaled(self, size_scale: float) -> "HashGridConfig":
        """Return a copy of this config with a different ``size_scale``."""
        return HashGridConfig(
            n_levels=self.n_levels,
            n_features_per_level=self.n_features_per_level,
            log2_hashmap_size=self.log2_hashmap_size,
            base_resolution=self.base_resolution,
            finest_resolution=self.finest_resolution,
            size_scale=size_scale,
        )


@dataclass
class GridAccessRecord:
    """Addresses and weights touched by one grid query (one batch of points).

    ``addresses`` and ``weights`` are lists with one ``(N, 8)`` array per
    level; ``level_offsets`` gives each level's base offset inside the
    concatenated 1-D storage so traces can use globally unique addresses.
    """

    addresses: List[np.ndarray] = field(default_factory=list)
    weights: List[np.ndarray] = field(default_factory=list)
    level_offsets: List[int] = field(default_factory=list)
    table_sizes: List[int] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return 0 if not self.addresses else int(self.addresses[0].shape[0])

    @property
    def n_levels(self) -> int:
        return len(self.addresses)

    def flat_addresses(self, level: Optional[int] = None) -> np.ndarray:
        """Global (level-offset) addresses, flattened in access order.

        Access order is point-major within a level: for each point its eight
        corner reads are issued consecutively, matching the grid-core
        pipeline of the accelerator.
        """
        if level is not None:
            return (self.addresses[level] + self.level_offsets[level]).reshape(-1)
        parts = [
            (addr + offset).reshape(-1)
            for addr, offset in zip(self.addresses, self.level_offsets)
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def total_accesses(self) -> int:
        """Total number of individual vertex-embedding reads."""
        return int(sum(a.size for a in self.addresses))


class HashGridLevel:
    """A single resolution level of the multiresolution hash grid."""

    def __init__(self, resolution: int, max_entries: int, n_features: int,
                 rng: np.random.Generator, name: str = "level"):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.resolution = int(resolution)
        self.n_features = int(n_features)
        n_vertices = (self.resolution + 1) ** 3
        # Coarse levels that fit in the table are stored densely
        # (collision-free); finer levels fall back to the spatial hash.
        self.is_dense = n_vertices <= max_entries
        self.table_size = n_vertices if self.is_dense else int(max_entries)
        init = rng.uniform(-1e-4, 1e-4, size=(self.table_size, self.n_features))
        self.table = Parameter(init, name=f"{name}.table")

    # -- indexing -----------------------------------------------------------
    def vertex_addresses(self, vertex_coords: np.ndarray) -> np.ndarray:
        """Map integer vertex coordinates of shape (..., 3) to table indices."""
        if self.is_dense:
            return dense_index(vertex_coords, self.resolution)
        return spatial_hash(vertex_coords, self.table_size)

    # -- forward / backward -------------------------------------------------
    def forward(self, points: np.ndarray):
        """Interpolate embeddings for ``points`` in ``[0, 1]^3``.

        Returns ``(embeddings, addresses, weights)`` where ``embeddings`` is
        ``(N, F)`` and the other two are ``(N, 8)`` caches reused by
        :meth:`backward` and exported for access tracing.
        """
        points = np.clip(np.asarray(points, dtype=np.float64), 0.0, 1.0)
        scaled = points * self.resolution
        base = np.floor(scaled).astype(np.int64)
        base = np.minimum(base, self.resolution - 1)
        frac = scaled - base
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]   # (N, 8, 3)
        addresses = self.vertex_addresses(corners)                # (N, 8)
        weights = trilinear_weights(frac)                         # (N, 8)
        corner_values = self.table.data[addresses]                # (N, 8, F)
        embeddings = interpolate(corner_values, weights)
        return embeddings.astype(np.float32), addresses, weights

    def backward(self, grad_embeddings: np.ndarray, addresses: np.ndarray,
                 weights: np.ndarray) -> None:
        """Scatter-add the embedding gradient into the table gradient."""
        corner_grads = interpolate_backward(grad_embeddings, weights)  # (N, 8, F)
        flat_addr = addresses.reshape(-1)
        flat_grads = corner_grads.reshape(-1, self.n_features)
        grad_table = np.zeros_like(self.table.grad, dtype=np.float64)
        np.add.at(grad_table, flat_addr, flat_grads)
        self.table.accumulate_grad(grad_table.astype(np.float32))

    # -- bookkeeping ---------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        """Bytes of FP16 storage this level occupies in the hash table."""
        return self.table_size * self.n_features * FEATURE_BYTES

    def parameters(self) -> List[Parameter]:
        return [self.table]


class MultiResHashGrid:
    """Multiresolution hash-grid encoder with access tracing.

    Parameters
    ----------
    config:
        Grid hyper-parameters.
    rng:
        Generator used to initialise the embedding tables.
    name:
        Prefix for parameter names (useful when two grids coexist, e.g. the
        Instant-3D density and color grids).
    """

    def __init__(self, config: HashGridConfig, rng: np.random.Generator,
                 name: str = "grid"):
        self.config = config
        self.name = name
        self.levels: List[HashGridLevel] = []
        for level_idx in range(config.n_levels):
            self.levels.append(
                HashGridLevel(
                    resolution=config.level_resolution(level_idx),
                    max_entries=config.max_table_entries,
                    n_features=config.n_features_per_level,
                    rng=rng,
                    name=f"{name}.level{level_idx}",
                )
            )
        self._last_access: Optional[GridAccessRecord] = None
        self._last_points: Optional[np.ndarray] = None

    # -- forward / backward -------------------------------------------------
    def forward(self, points: np.ndarray) -> np.ndarray:
        """Encode ``(N, 3)`` points in ``[0, 1]^3`` into ``(N, L*F)`` features."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must have shape (N, 3), got {points.shape}")
        record = GridAccessRecord()
        outputs = []
        offset = 0
        for level in self.levels:
            emb, addresses, weights = level.forward(points)
            outputs.append(emb)
            record.addresses.append(addresses)
            record.weights.append(weights)
            record.level_offsets.append(offset)
            record.table_sizes.append(level.table_size)
            offset += level.table_size
        self._last_access = record
        self._last_points = points
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_embeddings: np.ndarray) -> None:
        """Back-propagate the concatenated embedding gradient into the tables.

        Must be called after :meth:`forward`; uses the cached addresses and
        weights from the most recent query.
        """
        if self._last_access is None:
            raise RuntimeError("backward called before forward")
        grad_embeddings = np.asarray(grad_embeddings, dtype=np.float64)
        expected = (self._last_access.n_points, self.config.n_output_features)
        if grad_embeddings.shape != expected:
            raise ValueError(
                f"grad_embeddings shape {grad_embeddings.shape} does not match {expected}"
            )
        f = self.config.n_features_per_level
        for idx, level in enumerate(self.levels):
            grad_slice = grad_embeddings[:, idx * f:(idx + 1) * f]
            level.backward(
                grad_slice,
                self._last_access.addresses[idx],
                self._last_access.weights[idx],
            )

    # -- tracing / bookkeeping ------------------------------------------------
    @property
    def last_access(self) -> Optional[GridAccessRecord]:
        """Access record of the most recent :meth:`forward` call."""
        return self._last_access

    @property
    def n_output_features(self) -> int:
        return self.config.n_output_features

    @property
    def total_table_entries(self) -> int:
        return sum(level.table_size for level in self.levels)

    @property
    def storage_bytes(self) -> int:
        """Total FP16 bytes of embedding storage across all levels."""
        return sum(level.storage_bytes for level in self.levels)

    def parameters(self) -> List[Parameter]:
        params: List[Parameter] = []
        for level in self.levels:
            params.extend(level.parameters())
        return params

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def accesses_per_point(self) -> int:
        """Vertex reads needed to encode one point (8 per level)."""
        return 8 * self.config.n_levels
