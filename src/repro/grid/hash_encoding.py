"""Multiresolution hash-grid embedding (Instant-NGP's "3D embedding grid").

A :class:`MultiResHashGrid` is a stack of :class:`HashGridLevel` objects of
geometrically increasing resolution.  Each level stores ``F`` features per
vertex in a 1-D table (dense for coarse levels, hashed for fine levels).
Querying a batch of 3-D points returns the concatenation of every level's
trilinearly interpolated features — exactly Step ❸-① of the paper's training
pipeline — and records the table addresses that were touched so that the
accelerator simulator and the access-pattern analyses (Figs. 8-10) can replay
them.

The Instant-3D algorithm instantiates two of these grids (a density grid and
a color grid) with different ``size_scale`` factors; see
:mod:`repro.core.decoupled_grid`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.grid.hash_function import _MASK32, PI1, PI2, PI3, dense_index, spatial_hash
from repro.grid.interpolation import (
    CORNER_OFFSETS,
    interpolate,
    interpolate_backward,
    trilinear_weights,
)
from repro.nn.parameter import Parameter
from repro.utils.morton import morton_encode_3d
from repro.utils.precision import PrecisionPolicy, resolve_policy
from repro.utils.workspace import WorkspaceArena, arena_buffer, arena_zeros

#: Bytes per stored feature (FP16 in the accelerator and in Instant-NGP).
FEATURE_BYTES = 2


@dataclass(frozen=True)
class HashGridConfig:
    """Configuration of a multiresolution hash grid.

    Attributes
    ----------
    n_levels:
        Number of resolution levels ``L``.
    n_features_per_level:
        Features stored per vertex ``F`` (Instant-NGP default: 2).
    log2_hashmap_size:
        Log2 of the per-level hash-table entry count ``T`` before
        ``size_scale`` is applied.
    base_resolution:
        Resolution of the coarsest level.
    finest_resolution:
        Resolution of the finest level; the per-level growth factor is
        derived from this (Instant-NGP's ``b``).
    size_scale:
        Multiplier on the hash-table entry count, used to realise the
        paper's grid-size ratios ``S_D : S_C`` (e.g. 0.25 for the color
        grid when ``S_D : S_C = 1 : 0.25``).
    """

    n_levels: int = 8
    n_features_per_level: int = 2
    log2_hashmap_size: int = 14
    base_resolution: int = 16
    finest_resolution: int = 256
    size_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ValueError("n_levels must be >= 1")
        if self.n_features_per_level < 1:
            raise ValueError("n_features_per_level must be >= 1")
        if not (0.0 < self.size_scale <= 1.0):
            raise ValueError("size_scale must be in (0, 1]")
        if self.base_resolution < 2:
            raise ValueError("base_resolution must be >= 2")
        if self.finest_resolution < self.base_resolution:
            raise ValueError("finest_resolution must be >= base_resolution")

    @property
    def per_level_scale(self) -> float:
        """Geometric growth factor ``b`` between consecutive levels."""
        if self.n_levels == 1:
            return 1.0
        return float(
            np.exp(
                (np.log(self.finest_resolution) - np.log(self.base_resolution))
                / (self.n_levels - 1)
            )
        )

    @property
    def max_table_entries(self) -> int:
        """Per-level table entry budget after applying ``size_scale``."""
        return max(16, int(round((2 ** self.log2_hashmap_size) * self.size_scale)))

    @property
    def n_output_features(self) -> int:
        """Dimensionality of the concatenated embedding (``L * F``)."""
        return self.n_levels * self.n_features_per_level

    def level_resolution(self, level: int) -> int:
        """Grid resolution of ``level`` (0 = coarsest)."""
        return int(np.floor(self.base_resolution * self.per_level_scale ** level))

    def scaled(self, size_scale: float) -> "HashGridConfig":
        """Return a copy of this config with a different ``size_scale``."""
        return HashGridConfig(
            n_levels=self.n_levels,
            n_features_per_level=self.n_features_per_level,
            log2_hashmap_size=self.log2_hashmap_size,
            base_resolution=self.base_resolution,
            finest_resolution=self.finest_resolution,
            size_scale=size_scale,
        )


@dataclass
class GridAccessRecord:
    """Addresses and weights touched by one grid query (one batch of points).

    ``addresses`` and ``weights`` are lists with one ``(N, 8)`` array per
    level; ``level_offsets`` gives each level's base offset inside the
    concatenated 1-D storage so traces can use globally unique addresses.
    """

    addresses: List[np.ndarray] = field(default_factory=list)
    weights: List[np.ndarray] = field(default_factory=list)
    level_offsets: List[int] = field(default_factory=list)
    table_sizes: List[int] = field(default_factory=list)

    @property
    def n_points(self) -> int:
        return 0 if not self.addresses else int(self.addresses[0].shape[0])

    @property
    def n_levels(self) -> int:
        return len(self.addresses)

    def flat_addresses(self, level: Optional[int] = None) -> np.ndarray:
        """Global (level-offset) addresses, flattened in access order.

        Access order is point-major within a level: for each point its eight
        corner reads are issued consecutively, matching the grid-core
        pipeline of the accelerator.
        """
        if level is not None:
            return (self.addresses[level] + self.level_offsets[level]).reshape(-1)
        parts = [
            (addr + offset).reshape(-1)
            for addr, offset in zip(self.addresses, self.level_offsets)
        ]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def total_accesses(self) -> int:
        """Total number of individual vertex-embedding reads."""
        return int(sum(a.size for a in self.addresses))


class _PlanesAccessRecord(GridAccessRecord):
    """Access record backed by the fused engine's corner planes.

    The fused engine stores *global* (level-offset) addresses in contiguous
    level-major ``(8, L, N)`` corner planes (one contiguous ``(N,)`` row per
    corner and level, so every engine pass streams full cache lines); the
    per-level local ``(N, 8)`` address arrays of the
    :class:`GridAccessRecord` interface are materialised lazily on first
    access, keeping trace bookkeeping off the query hot path.  All derived
    views are value-identical to the per-level engine's record.
    """

    def __init__(self, global_planes: np.ndarray, weight_planes: np.ndarray,
                 level_offsets: List[int], table_sizes: List[int]):
        # Deliberately does not call the dataclass __init__: the address and
        # weight lists are exposed through lazy properties instead of fields.
        self._global_planes = global_planes
        self._weight_planes = weight_planes
        self._level_offsets = list(level_offsets)
        self._table_sizes = list(table_sizes)
        self._local_addresses: Optional[List[np.ndarray]] = None
        self._local_weights: Optional[List[np.ndarray]] = None

    @property
    def addresses(self) -> List[np.ndarray]:
        if self._local_addresses is None:
            self._local_addresses = [
                self._global_planes[:, level, :].T - offset
                for level, offset in enumerate(self._level_offsets)
            ]
        return self._local_addresses

    @property
    def weights(self) -> List[np.ndarray]:
        if self._local_weights is None:
            self._local_weights = [
                self._weight_planes[:, level, :].T
                for level in range(len(self._table_sizes))
            ]
        return self._local_weights

    @property
    def level_offsets(self) -> List[int]:
        return self._level_offsets

    @property
    def table_sizes(self) -> List[int]:
        return self._table_sizes

    @property
    def n_points(self) -> int:
        return int(self._global_planes.shape[2])

    @property
    def n_levels(self) -> int:
        return len(self._table_sizes)

    def flat_addresses(self, level: Optional[int] = None) -> np.ndarray:
        if level is not None:
            return np.ascontiguousarray(
                self._global_planes[:, level, :].T).reshape(-1).astype(
                    np.int64, copy=False)
        parts = [self.flat_addresses(level) for level in range(self.n_levels)]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def total_accesses(self) -> int:
        return int(self._global_planes.size)


class HashGridLevel:
    """A single resolution level of the multiresolution hash grid."""

    def __init__(self, resolution: int, max_entries: int, n_features: int,
                 rng: np.random.Generator, name: str = "level",
                 backend: BackendLike = None):
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        self.resolution = int(resolution)
        self.n_features = int(n_features)
        self.backend = resolve_backend(backend)
        n_vertices = (self.resolution + 1) ** 3
        # Coarse levels that fit in the table are stored densely
        # (collision-free); finer levels fall back to the spatial hash.
        self.is_dense = n_vertices <= max_entries
        self.table_size = n_vertices if self.is_dense else int(max_entries)
        init = rng.uniform(-1e-4, 1e-4, size=(self.table_size, self.n_features))
        self.table = Parameter(init, name=f"{name}.table",
                               backend=self.backend)

    # -- indexing -----------------------------------------------------------
    def vertex_addresses(self, vertex_coords: np.ndarray) -> np.ndarray:
        """Map integer vertex coordinates of shape (..., 3) to table indices."""
        if self.is_dense:
            return dense_index(vertex_coords, self.resolution)
        # Corners derive from points clipped to [0, 1]^3, so they are
        # structurally non-negative; skip the hash's validation scan.
        return spatial_hash(vertex_coords, self.table_size, validate=False)

    # -- forward / backward -------------------------------------------------
    def forward(self, points: np.ndarray, dtype=np.float64):
        """Interpolate embeddings for ``points`` in ``[0, 1]^3``.

        Returns ``(embeddings, addresses, weights)`` where ``embeddings`` is
        ``(N, F)`` and the other two are ``(N, 8)`` caches reused by
        :meth:`backward` and exported for access tracing.  ``dtype`` is the
        compute precision of the weights and accumulation (float64 is the
        bit-exact reference path).
        """
        points = np.clip(np.asarray(points, dtype=dtype), 0.0, 1.0)
        scaled = points * np.asarray(self.resolution, dtype=dtype)
        base = np.floor(scaled).astype(np.int64)
        base = np.minimum(base, self.resolution - 1)
        frac = (scaled - base).astype(dtype)
        corners = base[:, None, :] + CORNER_OFFSETS[None, :, :]   # (N, 8, 3)
        addresses = self.vertex_addresses(corners)                # (N, 8)
        weights = trilinear_weights(frac, dtype=dtype)            # (N, 8)
        corner_values = self.backend.gather(self.table.data,
                                            addresses)            # (N, 8, F)
        embeddings = interpolate(corner_values, weights, dtype=dtype,
                                 backend=self.backend)
        return embeddings.astype(np.float32), addresses, weights

    def backward(self, grad_embeddings: np.ndarray, addresses: np.ndarray,
                 weights: np.ndarray, dtype=np.float64) -> None:
        """Scatter-add the embedding gradient into the table gradient."""
        corner_grads = interpolate_backward(grad_embeddings, weights,
                                            dtype=dtype,
                                            backend=self.backend)  # (N, 8, F)
        flat_addr = addresses.reshape(-1)
        flat_grads = corner_grads.reshape(-1, self.n_features)
        grad_table = self.backend.zeros(self.table.grad.shape, np.float64)
        self.backend.scatter_add(grad_table, flat_addr, flat_grads)
        self.table.accumulate_grad(grad_table.astype(np.float32))

    # -- bookkeeping ---------------------------------------------------------
    @property
    def storage_bytes(self) -> int:
        """Bytes of FP16 storage this level occupies in the hash table."""
        return self.table_size * self.n_features * FEATURE_BYTES

    def parameters(self) -> List[Parameter]:
        return [self.table]


class MultiResHashGrid:
    """Multiresolution hash-grid encoder with access tracing.

    Two query engines share one set of per-level tables:

    * the **fused engine** (default) computes corner addresses and trilinear
      weights for all ``L`` levels in one stacked ``(N, L, 8)`` pass, gathers
      from a single concatenated feature table, and back-propagates with a
      ``np.bincount``-based scatter over the touched addresses;
    * the **per-level loop** walks :class:`HashGridLevel` objects one at a
      time — the original reference path, kept switchable (``fused=False``)
      for differential testing and the throughput benchmark.

    Both engines produce the same embeddings and bit-identical
    :class:`GridAccessRecord` traces, so the accelerator simulator and the
    Figs. 8-10 analyses are unaffected by which engine ran.

    Parameters
    ----------
    config:
        Grid hyper-parameters.
    rng:
        Generator used to initialise the embedding tables.
    name:
        Prefix for parameter names (useful when two grids coexist, e.g. the
        Instant-3D density and color grids).
    fused:
        Select the fused stacked-kernel engine (default) or the per-level
        loop.  May be toggled at runtime via the ``fused`` attribute.
    max_chunk_points:
        When set, queries larger than this many points are processed in
        chunks of at most ``max_chunk_points``, bounding the engine's
        transient working set (per-axis lattices, hash products, gather and
        accumulation buffers) and keeping each chunk's planes inside the
        cache hierarchy.  The access-trace planes themselves (addresses and
        weights, the same footprint the per-level engine's record has)
        necessarily still scale with the batch size.  The concatenated
        outputs and access record are identical to the unchunked query.
    policy:
        Compute-precision policy (``None`` resolves to the float64
        reference, which is bit-identical to the pre-policy engine; float32
        halves the weight-plane and accumulation traffic).  Embedding
        storage and outputs are float32 under both, and the bincount
        backward scatter always accumulates in float64 (the only dtype
        ``np.bincount`` reduces in) before the float32 table update.
    arena:
        Optional :class:`~repro.utils.workspace.WorkspaceArena` supplying
        reusable buffers for the query planes and every engine temporary;
        ``None`` allocates fresh arrays per call (the original semantics).
        With an arena attached, the returned embeddings and the access
        record of a query are only valid until the next ``forward`` call.
    sparse_mode:
        Gradient representation of the backward pass.  ``None`` (default)
        keeps the dense gradient table.  ``"coo"`` makes :meth:`backward`
        emit one compacted ``(unique_addresses, accumulated_grads)`` COO
        pair (:class:`~repro.nn.parameter.SparseGrad`) over the grid's
        backing table instead of expanding to dense zeros — the scatter
        trace is deduplicated with a sort + segment-sum whose per-row sums
        are **bit-identical** to the dense ``np.bincount`` scatter — and
        flags the table for the optimiser's touched-rows-only lazy update.
        ``"oracle"`` keeps the dense gradient representation (this exact
        backward) while still flagging the table for lazy updates: the
        bit-exact dense-representation oracle the COO path is
        differentially tested against.  In ``"coo"`` mode the emitted
        arrays live in the arena (valid for one optimiser step) and the
        dense ``grad`` table is never written nor cleared.
    backend:
        :class:`~repro.backend.base.ArrayBackend` (or registered name)
        executing every gather/scatter/segment-sum/compaction primitive of
        both engines.  ``None`` resolves to the process default (the
        bit-exact numpy reference unless ``REPRO_BACKEND`` selects
        another).
    """

    def __init__(self, config: HashGridConfig, rng: np.random.Generator,
                 name: str = "grid", fused: bool = True,
                 max_chunk_points: Optional[int] = None,
                 policy: Optional[PrecisionPolicy] = None,
                 arena: Optional[WorkspaceArena] = None,
                 sparse_mode: Optional[str] = None,
                 backend: BackendLike = None):
        if max_chunk_points is not None and max_chunk_points < 1:
            raise ValueError("max_chunk_points must be >= 1 or None")
        # sparse_mode is validated by set_sparse_mode (called below).
        self.config = config
        self.name = name
        self.fused = bool(fused)
        self.max_chunk_points = max_chunk_points
        self.policy = resolve_policy(policy)
        self.arena = arena
        self.backend = resolve_backend(backend)
        self.levels: List[HashGridLevel] = []
        for level_idx in range(config.n_levels):
            self.levels.append(
                HashGridLevel(
                    resolution=config.level_resolution(level_idx),
                    max_entries=config.max_table_entries,
                    n_features=config.n_features_per_level,
                    rng=rng,
                    name=f"{name}.level{level_idx}",
                    backend=self.backend,
                )
            )
        # Per-level constants of the fused engine, precomputed as arrays so a
        # query touches no Python-level per-level loop.  Resolutions live in
        # the compute dtype so the scale multiply stays in-policy; the planes
        # are level-major, so per-level constants are kept as (L, 1) columns.
        self._resolutions = np.array([l.resolution for l in self.levels],
                                     dtype=self.policy.dtype)
        self._max_base = np.array([l.resolution - 1 for l in self.levels],
                                  dtype=np.int64)
        sizes = np.array([l.table_size for l in self.levels], dtype=np.int64)
        self._table_sizes_arr = sizes
        self._offsets_arr = np.concatenate(([0], np.cumsum(sizes)[:-1])).astype(np.int64)
        self._level_bounds = np.concatenate(([0], np.cumsum(sizes))).astype(np.int64)
        dense_mask = np.array([l.is_dense for l in self.levels], dtype=bool)
        self._dense_idx = np.flatnonzero(dense_mask)
        self._hash_idx = np.flatnonzero(~dense_mask)
        # Dense levels always form a prefix (level resolutions are
        # nondecreasing while the table budget is constant); the fused
        # engine's grouped level slices rely on that.
        if self._dense_idx.size and int(self._dense_idx[-1]) != self._dense_idx.size - 1:
            raise RuntimeError("dense levels must form a prefix of the level stack")
        self._dense_strides = np.array(
            [self.levels[i].resolution + 1 for i in self._dense_idx], dtype=np.int64)
        hash_sizes = sizes[self._hash_idx]
        self._hash_sizes_u64 = hash_sizes.astype(np.uint64)
        self._hash_all_pow2 = bool(
            ((hash_sizes & (hash_sizes - 1)) == 0).all()) if hash_sizes.size else True
        # One backing Parameter holds every level's rows contiguously — "the
        # hash table" of this grid.  The per-level Parameters are rebound to
        # views into it, so the fused engine gathers from the backing
        # directly (no per-forward concatenation copy) and the optimiser
        # sees the whole grid as a single table: one gather/scatter set per
        # (sparse) update instead of one per level.  Level-local reads and
        # in-place writes (per-level loop engine, checkpoints, tests) keep
        # working through the views.
        backing = np.concatenate([level.table.data for level in self.levels],
                                 axis=0)
        self.table = Parameter(backing, name=f"{name}.tables",
                               backend=self.backend)
        offset = 0
        for level in self.levels:
            level.table.data = self.table.data[offset:offset + level.table_size]
            level.table.grad = self.table.grad[offset:offset + level.table_size]
            offset += level.table_size
        # Voxel-lattice integer dtype: base coordinates and dense-level index
        # arithmetic run in int32 whenever every value fits (they are bounded
        # by the per-level table size) — the float->int32 cast vectorises
        # where float->int64 does not, and the traffic halves.  Integer
        # arithmetic is exact, so this is value-identical to the int64
        # original under both precision policies.
        self._base_dtype = (
            np.int32 if (int(self._level_bounds[-1]) < 2 ** 31
                         and config.finest_resolution < 2 ** 24)
            else np.int64)
        bdt = self._base_dtype
        self._max_base_col = self._max_base.astype(bdt)[:, None]
        self._res_col = self._resolutions[:, None]
        n_dense = self._dense_idx.size
        self._dense_strides_col = self._dense_strides.astype(bdt)[:, None]
        self._dense_offsets_col = (
            self._offsets_arr[:n_dense].astype(bdt)[:, None])
        self._hash_offsets_col = self._offsets_arr[n_dense:][:, None]
        # The spatial hash is arithmetic mod 2**32, so when the lattice fits
        # int32 it runs natively in uint32 — the wrapping multiply IS the
        # ``& _MASK32`` of the uint64 original (bit-exact), at half the
        # traffic and without the explicit masking passes.
        self._hash_dtype = (np.uint32 if self._base_dtype == np.int32
                            else np.uint64)
        self._pi_consts = tuple(self._hash_dtype(int(pi))
                                for pi in (PI1, PI2, PI3))
        self._hash_sizes_col = self._hash_sizes_u64.astype(
            self._hash_dtype)[:, None]
        self._last_access: Optional[GridAccessRecord] = None
        self._last_points: Optional[np.ndarray] = None
        self._last_addr_planes: Optional[np.ndarray] = None
        self._last_weight_planes: Optional[np.ndarray] = None
        # The trainable surface is the single backing table.
        self._params: List[Parameter] = [self.table]
        self.sparse_mode: Optional[str] = None
        #: Sparsity statistics of the most recent fused backward: touched
        #: (unique, non-zero) table rows across all levels, and the raw
        #: scatter-update count (8 corner updates per (level, point) pair).
        #: ``None`` until a fused backward has run.
        self.last_touched_rows: Optional[int] = None
        self.last_scatter_updates: Optional[int] = None
        self.set_sparse_mode(sparse_mode)

    def set_sparse_mode(self, sparse_mode: Optional[str]) -> None:
        """Select the backward gradient representation (see class docs).

        Flags every level table for the optimiser: both sparse modes mark
        the tables for touched-rows-only lazy updates; ``"coo"``
        additionally routes gradients through the COO slot so the dense
        tables are never written (nor cleared per step).
        """
        if sparse_mode not in (None, "coo", "oracle"):
            raise ValueError(
                f"sparse_mode must be None, 'coo' or 'oracle', got {sparse_mode!r}")
        self.sparse_mode = sparse_mode
        for param in [self.table] + [level.table for level in self.levels]:
            param.sparse = sparse_mode is not None
            param.coo_grads = sparse_mode == "coo"
            param.sparse_grad = None
        # Clear unconditionally: entering COO mode with a stale dense
        # gradient would otherwise violate the all-zero dense-grad
        # invariant permanently (zero_grad skips the dense clear in COO
        # mode), and the oracle/dense modes expect a clean accumulator.
        self.table.grad.fill(0.0)

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        """Attach (or detach) a workspace arena for query-plane reuse."""
        self.arena = arena

    def set_backend(self, backend: BackendLike) -> None:
        """Re-point both engines (and every level) at another backend."""
        self.backend = resolve_backend(backend)
        for level in self.levels:
            level.backend = self.backend

    def _buf(self, key: str, shape, dtype) -> np.ndarray:
        """Engine scratch buffer, namespaced by this grid's name."""
        return arena_buffer(self.arena, f"{self.name}/{key}", shape, dtype,
                            backend=self.backend)

    # -- fused engine internals ---------------------------------------------
    #
    # The fused engine works in a corner-major, level-major "plane" layout:
    # addresses and weights live in contiguous ``(8, L, N)`` arrays, one
    # plane per cube corner with one contiguous row per level.  Every
    # arithmetic pass then streams over a flat ``(L, N)`` block — no
    # ``(N, L, 8, 3)`` corner tensor is ever materialised, and the dense- and
    # hashed-level groups write whole rows instead of read-modify-writing
    # interleaved columns — and the per-corner hash/weight products are
    # shared across the four corners that reuse them (``h(x+dx) ^ h(y+dy)``
    # appears in two corners each).

    #: Corner build order: (xy-pair index, z index) per corner, consistent
    #: with :data:`~repro.grid.interpolation.CORNER_OFFSETS` (dx = bit 0,
    #: dy = bit 1, dz = bit 2).
    _CORNER_XY_Z = ((0, 0), (1, 0), (2, 0), (3, 0), (0, 1), (1, 1), (2, 1), (3, 1))

    def _concat_table(self) -> np.ndarray:
        """The concatenated ``(T, F)`` feature table of all levels.

        Since the per-level tables are views into the single backing
        Parameter, this is the backing's data itself — no per-query copy.
        """
        return self.table.data

    def _fused_query_into(self, points: np.ndarray, table: np.ndarray,
                          addr_planes: np.ndarray, weight_planes: np.ndarray,
                          out: np.ndarray) -> None:
        """One stacked-kernel query: all levels of one point chunk at once.

        Writes into caller-provided views: ``out`` is ``(N, L*F)`` float32
        embeddings and the planes are level-major ``(8, L, N)`` arrays
        holding, per cube corner, the *global* (level-offset) table address
        (int64) and trilinear weight (compute-dtype) of every
        (level, point) pair.  ``table`` is the concatenated feature table
        from :meth:`_concat_table`.  Every temporary comes from the
        workspace arena when one is attached, so steady-state queries
        allocate nothing.
        """
        n = points.shape[0]
        n_levels = len(self.levels)
        n_dense = self._dense_idx.size
        dt = self.policy.dtype
        bdt = self._base_dtype
        clipped = self._buf("q/clipped", (n, 3), dt)
        np.clip(points, 0.0, 1.0, out=clipped)
        # Per-axis voxel base coordinates and fractional positions, (L, N);
        # the frac overwrites its scaled buffer once the base is extracted.
        base = []
        frac = []
        for axis in range(3):
            scaled = self._buf(f"q/scaled{axis}", (n_levels, n), dt)
            np.multiply(self._res_col, clipped[None, :, axis], out=scaled)
            # Truncation equals floor here because ``scaled >= 0``.
            b = self._buf(f"q/base{axis}", (n_levels, n), bdt)
            np.copyto(b, scaled, casting="unsafe")
            np.minimum(b, self._max_base_col, out=b)
            base.append(b)
            if self.policy.is_reference:
                np.subtract(scaled, b, out=scaled)
            else:
                # Force the float32 loop (int32 operand would promote to
                # float64); base values are < 2**24, so the cast is exact.
                np.subtract(scaled, b, out=scaled, dtype=np.float32,
                            casting="unsafe")
            frac.append(scaled)
        bx, by, bz = base
        fx, fy, fz = frac

        if n_dense:
            # Dense (collision-free) levels: linear index with x fastest;
            # the level's global table offset is folded into the z term.
            # All values are bounded by the level's table size, so the
            # arithmetic fits the lattice dtype by construction.
            strides = self._dense_strides_col
            x0 = bx[:n_dense]
            y0 = self._buf("q/y0", (n_dense, n), bdt)
            np.multiply(by[:n_dense], strides, out=y0)
            z0 = self._buf("q/z0", (n_dense, n), bdt)
            np.multiply(bz[:n_dense], strides * strides, out=z0)
            z0 += self._dense_offsets_col
            x1 = self._buf("q/x1", (n_dense, n), bdt)
            np.add(x0, 1, out=x1)
            y1 = self._buf("q/y1", (n_dense, n), bdt)
            np.add(y0, strides, out=y1)
            z1 = self._buf("q/z1", (n_dense, n), bdt)
            np.add(z0, strides * strides, out=z1)
            xy = tuple(self._buf(f"q/dxy{i}", (n_dense, n), bdt)
                       for i in range(4))
            np.add(x0, y0, out=xy[0])
            np.add(x1, y0, out=xy[1])
            np.add(x0, y1, out=xy[2])
            np.add(x1, y1, out=xy[3])
            zs = (z0, z1)
            for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
                np.add(xy[xy_idx], zs[z_idx],
                       out=addr_planes[corner, :n_dense])
        if n_dense < n_levels:
            # Hashed levels: per-axis products are shared across corners.
            hdt = self._hash_dtype
            narrow = hdt == np.uint32       # wrapping multiply == & _MASK32
            one = hdt(1)
            n_hash = n_levels - n_dense
            hash_offsets = self._hash_offsets_col
            hashes = []
            for key, b, pi in zip("xyz", (bx, by, bz), self._pi_consts):
                u = self._buf(f"q/u{key}", (n_hash, n), hdt)
                np.copyto(u, b[n_dense:], casting="unsafe")
                h0 = self._buf(f"q/h{key}0", (n_hash, n), hdt)
                np.multiply(u, pi, out=h0)
                if not narrow:
                    np.bitwise_and(h0, _MASK32, out=h0)
                np.add(u, one, out=u)                 # u holds coord + 1 now
                h1 = u                                # hash of it, in place
                np.multiply(u, pi, out=h1)
                if not narrow:
                    np.bitwise_and(h1, _MASK32, out=h1)
                hashes.append((h0, h1))
            (hx0, hx1), (hy0, hy1), (hz0, hz1) = hashes
            xy = tuple(self._buf(f"q/hxy{i}", (n_hash, n), hdt)
                       for i in range(4))
            np.bitwise_xor(hx0, hy0, out=xy[0])
            np.bitwise_xor(hx1, hy0, out=xy[1])
            np.bitwise_xor(hx0, hy1, out=xy[2])
            np.bitwise_xor(hx1, hy1, out=xy[3])
            zs = (hz0, hz1)
            h = self._buf("q/h", (n_hash, n), hdt)
            # uint64 + int64 would promote to float64; route through a
            # signed view (wide) or rely on uint32 -> int64 promotion.
            h_for_add = h if narrow else h.view(np.int64)
            if self._hash_all_pow2:
                # ``& (T-1) == % T`` for power-of-two tables, and ``&``
                # distributes over ``^``: mask the six shared products once
                # instead of masking every corner's xor.
                pow2_mask = self._hash_sizes_col - one
                for v in xy + zs:
                    np.bitwise_and(v, pow2_mask, out=v)
                for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
                    np.bitwise_xor(xy[xy_idx], zs[z_idx], out=h)
                    np.add(h_for_add, hash_offsets,
                           out=addr_planes[corner, n_dense:])
            else:
                for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
                    np.bitwise_xor(xy[xy_idx], zs[z_idx], out=h)
                    h %= self._hash_sizes_col
                    np.add(h_for_add, hash_offsets,
                           out=addr_planes[corner, n_dense:])

        gx = self._buf("q/gx", (n_levels, n), dt)
        gy = self._buf("q/gy", (n_levels, n), dt)
        gz = self._buf("q/gz", (n_levels, n), dt)
        np.subtract(1.0, fx, out=gx)
        np.subtract(1.0, fy, out=gy)
        np.subtract(1.0, fz, out=gz)
        wxy = tuple(self._buf(f"q/wxy{i}", (n_levels, n), dt) for i in range(4))
        np.multiply(gx, gy, out=wxy[0])
        np.multiply(fx, gy, out=wxy[1])
        np.multiply(gx, fy, out=wxy[2])
        np.multiply(fx, fy, out=wxy[3])
        wzs = (gz, fz)
        for corner, (xy_idx, z_idx) in enumerate(self._CORNER_XY_Z):
            np.multiply(wxy[xy_idx], wzs[z_idx], out=weight_planes[corner])

        # F == 2 fast path: each table row is one complex64 (the backend's
        # flat_pair_view capability), so a corner gather is a single flat
        # take and the weighted accumulation runs on complex planes whose
        # (real, imag) parts are the two features — complex128 under the
        # float64 reference policy, complex64 under float32.  Multiplying
        # by a real weight scales both features with the same compute-dtype
        # products as the generic path.
        flat = (self.backend.flat_pair_view(table)
                if self.config.n_features_per_level == 2 else None)
        if flat is not None:
            cdt = self.policy.complex_dtype
            acc = self._buf("q/acc", (n_levels, n), cdt)
            tmp = self._buf("q/tmp", (n_levels, n), cdt)
            gathered = self._buf("q/gathered", (n_levels, n), np.complex64)
            for corner in range(8):
                # Addresses are in range by construction (hash mod / dense
                # index + offset), so the gather skips bounds checks.
                self.backend.take_out(flat, addr_planes[corner], gathered)
                if corner == 0:
                    np.multiply(weight_planes[corner], gathered, out=acc)
                else:
                    np.multiply(weight_planes[corner], gathered, out=tmp)
                    acc += tmp
            # (L, N) complex planes -> (N, L*F) float32 embeddings.
            out.reshape(n, n_levels, 2)[...] = (
                acc.view(dt).reshape(n_levels, n, 2).transpose(1, 0, 2))
        else:
            f = self.config.n_features_per_level
            acc = self._buf("q/accf", (n_levels, n, f), dt)
            acc.fill(0.0)
            corner_values = self._buf("q/cv", (n_levels, n, f), np.float32)
            tmp = self._buf("q/cvw", (n_levels, n, f), dt)
            for corner in range(8):
                self.backend.gather(table, addr_planes[corner],
                                    out=corner_values)
                np.multiply(weight_planes[corner][:, :, None], corner_values,
                            out=tmp)
                acc += tmp
            out.reshape(n, n_levels, f)[...] = acc.transpose(1, 0, 2)

    def _record_from_planes(self, addr_planes: np.ndarray,
                            weight_planes: np.ndarray) -> GridAccessRecord:
        """Lazy access record over the global-address corner planes."""
        return _PlanesAccessRecord(
            addr_planes, weight_planes,
            [int(offset) for offset in self._offsets_arr],
            [int(size) for size in self._table_sizes_arr],
        )

    def point_sort_keys(self, points_unit: np.ndarray) -> np.ndarray:
        """Morton code of each point's finest-level voxel (locality sort key).

        Sorting a batch by these keys makes consecutive points spatial
        neighbours at *every* level of the grid — same-voxel points repeat
        all eight corner addresses back-to-back, and coarse-level addresses
        form long constant runs — which is what the accelerator's
        backward-update merger needs to see addresses recur within its small
        matching window.  The keys are pure metadata: computing them records
        nothing and touches no table.
        """
        points_unit = np.asarray(points_unit, dtype=np.float64)
        if points_unit.ndim != 2 or points_unit.shape[1] != 3:
            raise ValueError(
                f"points must have shape (N, 3), got {points_unit.shape}")
        res = self.levels[-1].resolution
        base = (np.clip(points_unit, 0.0, 1.0) * res).astype(np.int64)
        np.minimum(base, res - 1, out=base)
        return morton_encode_3d(base[:, 0], base[:, 1], base[:, 2])

    # -- forward / backward -------------------------------------------------
    def forward(self, points: np.ndarray) -> np.ndarray:
        """Encode ``(N, 3)`` points in ``[0, 1]^3`` into ``(N, L*F)`` features."""
        points = self.backend.asarray(points, dtype=self.policy.dtype)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must have shape (N, 3), got {points.shape}")
        if not self.fused:
            return self._forward_loop(points)
        n = points.shape[0]
        n_levels = len(self.levels)
        out = self._buf("out", (n, self.config.n_output_features), np.float32)
        addr_planes = self._buf("addr_planes", (8, n_levels, n), np.int64)
        weight_planes = self._buf("weight_planes", (8, n_levels, n),
                                  self.policy.dtype)
        table = self._concat_table()
        chunk = self.max_chunk_points if self.max_chunk_points is not None else max(n, 1)
        for start in range(0, n, chunk):
            stop = min(start + chunk, n)
            self._fused_query_into(points[start:stop], table,
                                   addr_planes[:, :, start:stop],
                                   weight_planes[:, :, start:stop],
                                   out[start:stop])
        self._last_addr_planes = addr_planes
        self._last_weight_planes = weight_planes
        self._last_access = self._record_from_planes(addr_planes, weight_planes)
        self._last_points = points
        return out

    def _forward_loop(self, points: np.ndarray) -> np.ndarray:
        """Reference per-level query loop (the pre-fusion engine)."""
        record = GridAccessRecord()
        outputs = []
        offset = 0
        for level in self.levels:
            emb, addresses, weights = level.forward(points,
                                                    dtype=self.policy.dtype)
            outputs.append(emb)
            record.addresses.append(addresses)
            record.weights.append(weights)
            record.level_offsets.append(offset)
            record.table_sizes.append(level.table_size)
            offset += level.table_size
        self._last_addr_planes = None
        self._last_weight_planes = None
        self._last_access = record
        self._last_points = points
        return np.concatenate(outputs, axis=1)

    def backward(self, grad_embeddings: np.ndarray) -> None:
        """Back-propagate the concatenated embedding gradient into the tables.

        Must be called after :meth:`forward`; uses the cached addresses and
        weights from the most recent query.
        """
        if self._last_access is None:
            raise RuntimeError("backward called before forward")
        grad_embeddings = np.asarray(grad_embeddings, dtype=self.policy.dtype)
        expected = (self._last_access.n_points, self.config.n_output_features)
        if grad_embeddings.shape != expected:
            raise ValueError(
                f"grad_embeddings shape {grad_embeddings.shape} does not match {expected}"
            )
        if self.fused or self.sparse_mode == "coo":
            # COO emission always runs through the fused scatter (it can
            # rebuild the corner planes from a per-level-engine record).
            self._backward_fused(grad_embeddings)
            return
        f = self.config.n_features_per_level
        for idx, level in enumerate(self.levels):
            grad_slice = grad_embeddings[:, idx * f:(idx + 1) * f]
            level.backward(
                grad_slice,
                self._last_access.addresses[idx],
                self._last_access.weights[idx],
                dtype=self.policy.dtype,
            )

    def _backward_fused(self, grad_embeddings: np.ndarray) -> None:
        """Fused scatter of embedding gradients into every level's table.

        Per-corner gradients of all levels are accumulated with
        ``np.bincount`` over global (level-offset) addresses — replacing the
        per-level dense-zeros + ``np.add.at`` scatter — and only the touched
        table rows receive float32 updates.  Chunks accumulate into one
        float64 buffer, so chunked and unchunked backward passes agree.
        """
        addr_planes = self._last_addr_planes
        weight_planes = self._last_weight_planes
        if addr_planes is None or weight_planes is None:
            # Forward ran on the per-level engine; rebuild the (global-
            # address, level-major) corner planes from its record.
            local = np.stack(self._last_access.addresses, axis=1)   # (N, L, 8)
            addr_planes = np.ascontiguousarray(np.transpose(
                local + np.asarray(self._last_access.level_offsets
                                   )[None, :, None], (2, 1, 0)))
            weight_planes = np.ascontiguousarray(np.transpose(
                np.stack(self._last_access.weights, axis=1), (2, 1, 0)))
        n = grad_embeddings.shape[0]
        n_levels = len(self.levels)
        f = self.config.n_features_per_level
        total = int(self._level_bounds[-1])
        grad3 = grad_embeddings.reshape(n, n_levels, f)
        # The working set per corner is one (L, N) plane, so no chunking is
        # needed here even for very large batches.  The bincount reduction
        # always accumulates in float64 — the only weight dtype bincount
        # sums — which keeps the scatter dtype-stable under both policies
        # (float32 contributions are upcast in the multiply, not inside
        # bincount).
        feature_grads = []
        for j in range(f):
            fg = self._buf(f"bwd/fg{j}", (n_levels, n), grad_embeddings.dtype)
            fg[...] = grad3[:, :, j].T
            feature_grads.append(fg)
        if self.sparse_mode == "coo":
            self._scatter_sparse(addr_planes, weight_planes, feature_grads,
                                 n, f)
            return
        acc = self._buf("bwd/acc", (f, total), np.float64)
        acc.fill(0.0)
        contrib = self._buf("bwd/contrib", (n_levels, n), np.float64)
        for corner in range(8):
            flat_addr = addr_planes[corner].ravel()
            corner_weight = weight_planes[corner]
            for j in range(f):
                np.multiply(corner_weight, feature_grads[j], out=contrib)
                self.backend.bincount_add(acc[j], flat_addr, contrib.ravel(),
                                          total)
        acc = acc.T
        touched = self.backend.flatnonzero(np.any(acc != 0.0, axis=1))
        self.last_touched_rows = int(touched.size)
        self.last_scatter_updates = int(addr_planes.size)
        # Sized at the table bound (not the batch-dependent touched count)
        # so the steady-state arena never regrows it.
        acc_touched = self._buf("bwd/acc_touched", (total, f),
                                np.float64)[:touched.size]
        self.backend.gather(acc, touched, out=acc_touched)
        self.backend.scatter_add(self.table.grad, touched,
                                 acc_touched.astype(np.float32), unique=True)

    def _scatter_sparse(self, addr_planes: np.ndarray,
                        weight_planes: np.ndarray,
                        feature_grads: List[np.ndarray],
                        n: int, f: int) -> None:
        """Deduplicated COO scatter: sort + segment-sum, no dense tables.

        The flat scatter trace (``8 * L * N`` global addresses) is sorted
        once; a rank pass compacts it to the unique touched addresses and
        every corner's contributions are segment-summed with ``np.bincount``
        over the *rank* indices.  Because bincount accumulates duplicate
        buckets in scan order, each touched row's float64 sum is
        **bit-identical** to the dense scatter's value for that row, and the
        float32 cast afterwards matches the dense path's cast — the COO
        pair is the dense gradient table minus its zeros.  Rows whose
        float32 gradient rounds to all-zero are dropped so the touched set
        equals the nonzero-row set the dense-oracle optimiser derives.

        Cost scales with the trace and touched-row sizes — never with the
        table size.  All buffers come from the workspace arena (when
        attached) except ``np.argsort``'s result and the per-corner bincount
        outputs (both bounded by trace/touched size; NumPy offers no ``out=``
        for either).  The COO pair handed to the backing table's
        :meth:`Parameter.add_sparse_grad` holds arena views, valid until the
        next backward — exactly one optimiser step.
        """
        n_levels = len(self.levels)
        m = int(addr_planes.size)
        if m == 0:
            self.last_touched_rows = 0
            self.last_scatter_updates = 0
            return
        flat_all = addr_planes.reshape(-1)
        order = self.backend.argsort(flat_all)
        sorted_addr = self._buf("bwds/sorted", m, np.int64)
        self.backend.take_out(flat_all, order, sorted_addr)
        flags = self._buf("bwds/flags", m, bool)
        flags[0] = True
        np.not_equal(sorted_addr[1:], sorted_addr[:-1], out=flags[1:])
        rank = self._buf("bwds/rank", m, np.int64)
        self.backend.cumsum(flags, out=rank)
        rank -= 1                                 # unique-id of each sorted slot
        n_unique = int(rank[-1]) + 1
        unique_addr = self._buf("bwds/unique", n_unique, np.int64)
        self.backend.scatter_rows(unique_addr, rank, sorted_addr)
        inverse = self._buf("bwds/inverse", m, np.int64)
        self.backend.scatter_rows(inverse, order, rank)
        inv_planes = inverse.reshape(8, n_levels, n)
        acc = self._buf("bwds/acc", (f, n_unique), np.float64)
        acc.fill(0.0)
        contrib = self._buf("bwd/contrib", (n_levels, n), np.float64)
        for corner in range(8):
            inv_flat = inv_planes[corner].reshape(-1)
            corner_weight = weight_planes[corner]
            for j in range(f):
                np.multiply(corner_weight, feature_grads[j], out=contrib)
                self.backend.bincount_add(acc[j], inv_flat, contrib.ravel(),
                                          n_unique)
        vals32 = self._buf("bwds/vals32", (n_unique, f), np.float32)
        np.copyto(vals32, acc.T, casting="unsafe")
        nz = self._buf("bwds/nz", (n_unique, f), bool)
        np.not_equal(vals32, 0.0, out=nz)
        keep = self._buf("bwds/keep", n_unique, bool)
        np.any(nz, axis=1, out=keep)
        kept = self.backend.flatnonzero(keep)
        rows = self._buf("bwds/rows", kept.size, np.int64)
        self.backend.take_out(unique_addr, kept, rows)
        vals = self._buf("bwds/vals", (kept.size, f), np.float32)
        self.backend.gather(vals32, kept, out=vals)
        self.last_touched_rows = int(kept.size)
        self.last_scatter_updates = m
        if kept.size:
            self.table.add_sparse_grad(rows, vals)

    # -- tracing / bookkeeping ------------------------------------------------
    @property
    def last_access(self) -> Optional[GridAccessRecord]:
        """Access record of the most recent :meth:`forward` call."""
        return self._last_access

    @property
    def n_output_features(self) -> int:
        return self.config.n_output_features

    @property
    def total_table_entries(self) -> int:
        return sum(level.table_size for level in self.levels)

    @property
    def storage_bytes(self) -> int:
        """Total FP16 bytes of embedding storage across all levels."""
        return sum(level.storage_bytes for level in self.levels)

    def parameters(self) -> List[Parameter]:
        """The single backing table Parameter (cached list — do not mutate).

        The per-level tables are views into it; exposing one Parameter per
        grid is what lets the optimiser update (or lazily skip) the whole
        grid with a single gather/scatter set.
        """
        return self._params

    def zero_grad(self) -> None:
        for param in self._params:
            param.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of every level's feature table."""
        return {"tables": [level.table.state_dict() for level in self.levels]}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into an identically configured grid."""
        tables = state["tables"]
        if len(tables) != len(self.levels):
            raise ValueError(
                f"checkpoint has {len(tables)} levels, grid has "
                f"{len(self.levels)}")
        for level, entry in zip(self.levels, tables):
            level.table.load_state_dict(entry)

    def accesses_per_point(self) -> int:
        """Vertex reads needed to encode one point (8 per level)."""
        return 8 * self.config.n_levels
