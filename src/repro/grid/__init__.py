"""Multiresolution hash-grid encoding (the Instant-NGP "3D embedding grid").

This package implements the data structure at the centre of the paper's
bottleneck analysis: a multiresolution voxel grid whose vertex embeddings are
stored in compact 1-D hash tables and queried by trilinear interpolation
(Step ❸-① in the paper's pipeline).

* :mod:`repro.grid.hash_function` — the spatial hash of Eq. 3 with
  ``pi1 = 1``, ``pi2 = 2654435761`` and ``pi3 = 805459861``.
* :mod:`repro.grid.interpolation` — corner enumeration and trilinear weights
  with their backward pass.
* :mod:`repro.grid.hash_encoding` — per-level tables,
  :class:`~repro.grid.hash_encoding.MultiResHashGrid`, and the access-trace
  export consumed by the accelerator simulator and by the memory-access
  analyses of Figs. 8-10.
"""

from repro.grid.hash_function import PI1, PI2, PI3, spatial_hash, dense_index
from repro.grid.interpolation import CORNER_OFFSETS, trilinear_weights
from repro.grid.hash_encoding import (
    HashGridConfig,
    HashGridLevel,
    MultiResHashGrid,
    GridAccessRecord,
)

__all__ = [
    "PI1",
    "PI2",
    "PI3",
    "spatial_hash",
    "dense_index",
    "CORNER_OFFSETS",
    "trilinear_weights",
    "HashGridConfig",
    "HashGridLevel",
    "MultiResHashGrid",
    "GridAccessRecord",
]
