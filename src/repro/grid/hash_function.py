"""The spatial hash function of Instant-NGP (Eq. 3 in the paper).

The hash maps an integer grid-vertex coordinate ``(x, y, z)`` to an index in
a 1-D hash table of size ``T``:

    h(x, y, z) = (pi1 * x  XOR  pi2 * y  XOR  pi3 * z)  mod  T

with ``pi1 = 1``, ``pi2 = 2654435761`` and ``pi3 = 805459861`` (the constants
from Teschner et al.'s optimised spatial hashing, also used by Instant-NGP).

The choice ``pi1 = 1`` is what creates the memory-access *locality* the
Instant-3D accelerator exploits: two vertices that differ only along the
x axis map to addresses that differ by exactly their x difference (mod T),
while differences along y or z are amplified by the large primes
("remoteness").  See Sec. 4.2 of the paper and
:mod:`repro.analysis.access_patterns`.
"""

from __future__ import annotations

import numpy as np

PI1 = np.uint64(1)
PI2 = np.uint64(2654435761)
PI3 = np.uint64(805459861)

_MASK32 = np.uint64(0xFFFFFFFF)


def spatial_hash(coords: np.ndarray, table_size: int,
                 validate: bool = True) -> np.ndarray:
    """Hash integer vertex coordinates into ``[0, table_size)``.

    Parameters
    ----------
    coords:
        Integer array of shape ``(..., 3)`` holding non-negative vertex
        coordinates ``(x, y, z)``.  Negative coordinates are rejected: the
        ``uint64`` cast would silently wrap them to huge positive values,
        producing valid-looking but wrong table addresses.
    table_size:
        Number of entries ``T`` in the 1-D hash table.
    validate:
        Check for negative coordinates (default).  Callers that guarantee
        non-negative inputs structurally (the grid engine clamps points to
        the unit cube before deriving corners) may skip the scan.

    Returns
    -------
    Array of shape ``coords.shape[:-1]`` with dtype ``int64`` containing the
    hash-table indices.  Arithmetic follows the reference CUDA kernel: 32-bit
    unsigned multiplication (overflow wraps) followed by XOR and modulo.
    """
    if table_size <= 0:
        raise ValueError("table_size must be positive")
    coords = np.asarray(coords)
    if coords.shape[-1] != 3:
        raise ValueError(f"coords must have a trailing dimension of 3, got {coords.shape}")
    if validate and coords.size \
            and not np.issubdtype(coords.dtype, np.unsignedinteger) \
            and coords.min() < 0:
        raise ValueError(
            "spatial_hash requires non-negative vertex coordinates; negative "
            "values would wrap through the uint64 cast to wrong addresses"
        )
    c = coords.astype(np.uint64)
    x = (c[..., 0] * PI1) & _MASK32
    y = (c[..., 1] * PI2) & _MASK32
    z = (c[..., 2] * PI3) & _MASK32
    h = (x ^ y ^ z) % np.uint64(table_size)
    return h.astype(np.int64)


def dense_index(coords: np.ndarray, resolution: int) -> np.ndarray:
    """Direct (collision-free) indexing for coarse levels.

    When a level's vertex count ``(resolution + 1)^3`` fits inside the hash
    table, Instant-NGP stores the level densely instead of hashing it.  The
    linear index uses x as the fastest-varying axis, which preserves the same
    x-locality the hashed levels have.
    """
    coords = np.asarray(coords)
    if coords.shape[-1] != 3:
        raise ValueError(f"coords must have a trailing dimension of 3, got {coords.shape}")
    stride = resolution + 1
    idx = (coords[..., 0].astype(np.int64)
           + coords[..., 1].astype(np.int64) * stride
           + coords[..., 2].astype(np.int64) * stride * stride)
    return idx
