"""Trilinear interpolation over the eight nearest grid vertices.

Step ❸-① of the pipeline fetches the embeddings of the eight vertices that
surround a queried 3-D point and blends them with trilinear weights.  The
corner enumeration order matters for the paper's Fig. 8 analysis: corners are
indexed ``000, 001, ..., 111`` where the bits are ``(dz, dy, dx)`` — i.e. the
x offset is the least-significant bit — so that corner pairs ``(2k, 2k+1)``
share the same y and z coordinate and form the paper's four address groups.
"""

from __future__ import annotations

import numpy as np

from repro.backend.registry import resolve_backend

# (8, 3) integer offsets of the cube corners, ordered so that consecutive
# pairs differ only in x (dx is the least-significant bit of the corner id).
CORNER_OFFSETS = np.array(
    [
        [0, 0, 0],
        [1, 0, 0],
        [0, 1, 0],
        [1, 1, 0],
        [0, 0, 1],
        [1, 0, 1],
        [0, 1, 1],
        [1, 1, 1],
    ],
    dtype=np.int64,
)


def trilinear_weights(frac: np.ndarray, dtype=np.float64) -> np.ndarray:
    """Interpolation weights for the eight corners.

    Parameters
    ----------
    frac:
        ``(N, 3)`` array with the fractional position of each query point
        inside its voxel, each component in ``[0, 1]``.
    dtype:
        Compute dtype of the weights (the grid's precision policy; float64
        is the bit-exact reference).

    Returns
    -------
    ``(N, 8)`` array of non-negative weights that sum to one per row, ordered
    consistently with :data:`CORNER_OFFSETS`.
    """
    frac = np.asarray(frac, dtype=dtype)
    if frac.ndim != 2 or frac.shape[1] != 3:
        raise ValueError(f"frac must have shape (N, 3), got {frac.shape}")
    fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]
    wx = np.stack([1.0 - fx, fx], axis=1)          # (N, 2)
    wy = np.stack([1.0 - fy, fy], axis=1)
    wz = np.stack([1.0 - fz, fz], axis=1)
    weights = np.empty((frac.shape[0], 8), dtype=dtype)
    for corner, (dx, dy, dz) in enumerate(CORNER_OFFSETS):
        weights[:, corner] = wx[:, dx] * wy[:, dy] * wz[:, dz]
    return weights


def interpolate(corner_values: np.ndarray, weights: np.ndarray,
                dtype=np.float64, backend=None) -> np.ndarray:
    """Blend per-corner embeddings with trilinear weights.

    ``corner_values`` has shape ``(N, 8, F)`` and ``weights`` has shape
    ``(N, 8)``; the result has shape ``(N, F)``.  ``dtype`` selects the
    accumulation precision (float64 is the bit-exact reference);
    ``backend`` the :class:`~repro.backend.base.ArrayBackend` running the
    contraction (``None`` resolves to the process default).
    """
    backend = resolve_backend(backend)
    corner_values = backend.asarray(corner_values, dtype=dtype)
    weights = backend.asarray(weights, dtype=dtype)
    return backend.einsum("ncf,nc->nf", corner_values, weights)


def interpolate_backward(grad_out: np.ndarray, weights: np.ndarray,
                         dtype=np.float64, backend=None) -> np.ndarray:
    """Gradient of :func:`interpolate` with respect to the corner embeddings.

    Returns an ``(N, 8, F)`` array: the output gradient broadcast to each
    corner scaled by its interpolation weight.  (Positions are not trained,
    so no gradient with respect to the weights is needed.)
    """
    backend = resolve_backend(backend)
    grad_out = backend.asarray(grad_out, dtype=dtype)
    weights = backend.asarray(weights, dtype=dtype)
    return backend.einsum("nf,nc->ncf", grad_out, weights)
