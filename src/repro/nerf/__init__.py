"""NeRF training substrate: cameras, rays, sampling, volume rendering, losses.

This package implements Steps ❶, ❷, ❹ and ❺ of the six-step NeRF training
pipeline described in Sec. 2.1 of the paper (Step ❸ — querying point features
— lives in :mod:`repro.core` for the hash-grid models and in
:mod:`repro.nerf.vanilla` for the vanilla-NeRF baseline):

❶ sample pixels      → :class:`~repro.nerf.cameras.PinholeCamera` /
                        :func:`~repro.nerf.cameras.sample_pixel_batch`
❷ pixels → rays      → :meth:`PinholeCamera.rays_for_pixels`
   point sampling    → :func:`~repro.nerf.sampling.stratified_samples`
❹ volume rendering   → :class:`~repro.nerf.volume_rendering.VolumeRenderer` (Eq. 1)
❺ reconstruction loss→ :func:`~repro.nerf.losses.mse_loss` (Eq. 2),
                        :func:`~repro.nerf.losses.psnr`

:class:`~repro.nerf.pipeline.RenderPipeline` composes ❷–❹ into the
occupancy-culled ray lifecycle (sample compaction via
:class:`~repro.nerf.occupancy.OccupancyGrid`, optional early ray
termination) that the trainer, evaluators and fleet route through.
:mod:`repro.nerf.scheduling` supplies the Step-❶ schedulers — uniform
(the bit-identical default), Morton-tiled and occupancy-aware — that trade
pixel-draw randomness for grid-address locality.
"""

from repro.nerf.cameras import PinholeCamera, RayBundle, sample_pixel_batch
from repro.nerf.sampling import stratified_samples, ray_points, ray_probe_points
from repro.nerf.volume_rendering import VolumeRenderer, RenderOutput
from repro.nerf.losses import mse_loss, psnr, mse_to_psnr
from repro.nerf.encoding import positional_encoding, spherical_harmonics_encoding
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.pipeline import PipelineRender, RenderPipeline
from repro.nerf.scheduling import (
    RAY_SCHEDULES,
    MortonTileScheduler,
    OccupancyTileScheduler,
    RayScheduler,
    UniformScheduler,
    make_scheduler,
)
from repro.nerf.vanilla import VanillaNeRF, VanillaNeRFConfig

__all__ = [
    "PinholeCamera",
    "RayBundle",
    "sample_pixel_batch",
    "stratified_samples",
    "ray_points",
    "ray_probe_points",
    "RAY_SCHEDULES",
    "RayScheduler",
    "UniformScheduler",
    "MortonTileScheduler",
    "OccupancyTileScheduler",
    "make_scheduler",
    "VolumeRenderer",
    "RenderOutput",
    "mse_loss",
    "psnr",
    "mse_to_psnr",
    "positional_encoding",
    "spherical_harmonics_encoding",
    "OccupancyGrid",
    "RenderPipeline",
    "PipelineRender",
    "VanillaNeRF",
    "VanillaNeRFConfig",
]
