"""Reconstruction loss (Eq. 2) and PSNR metric."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def mse_loss(pred: np.ndarray, target: np.ndarray,
             dtype=np.float64) -> Tuple[float, np.ndarray]:
    """Mean-squared-error loss and its gradient with respect to ``pred``.

    The paper's Eq. 2 sums squared errors over the ray batch; we use the mean
    so the learning rate is independent of batch size (the gradient direction
    is identical up to a constant factor).  ``dtype`` is the compute
    precision of the residual and gradient (the float64 default is the
    bit-exact reference; the loss scalar is a Python float either way).
    """
    pred = np.asarray(pred, dtype=dtype)
    target = np.asarray(target, dtype=dtype)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    diff = pred - target
    loss = float(np.mean(diff ** 2))
    grad = (2.0 / diff.size) * diff
    return loss, grad


def mse_to_psnr(mse: float, max_value: float = 1.0) -> float:
    """Convert an MSE value to peak signal-to-noise ratio in dB."""
    mse = max(float(mse), 1e-12)
    return float(10.0 * np.log10((max_value ** 2) / mse))


def psnr(pred: np.ndarray, target: np.ndarray, max_value: float = 1.0) -> float:
    """PSNR between a predicted and a ground-truth image (both in [0, 1])."""
    pred = np.asarray(pred, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
    return mse_to_psnr(float(np.mean((pred - target) ** 2)), max_value=max_value)
