"""Classical volume rendering (Eq. 1 of the paper) with a hand-derived backward.

Given per-sample densities ``sigma_k`` and colors ``c_k`` along a ray, the
pixel color is

    C = sum_k  T_k * (1 - exp(-sigma_k * delta_k)) * c_k,
    T_k = exp(-sum_{j<k} sigma_j * delta_j)

The backward pass propagates ``dL/dC`` to both ``dL/dc_k`` (trivially
``w_k * dL/dC``) and ``dL/dsigma_k`` using

    dL/dsigma_k = delta_k * [ g_k * (T_k - w_k) - sum_{j>k} g_j * w_j ]

with ``g_j = <dL/dC, c_j>`` — the standard closed form also implemented by
Instant-NGP's CUDA composite kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.utils.precision import PrecisionPolicy, resolve_policy
from repro.utils.workspace import WorkspaceArena, arena_buffer


@dataclass
class RenderOutput:
    """Outputs of one volume-rendering pass over a batch of rays."""

    colors: np.ndarray          # (n_rays, 3) composited pixel colors
    depth: np.ndarray           # (n_rays,) expected termination depth
    accumulation: np.ndarray    # (n_rays,) sum of weights (opacity)
    weights: np.ndarray         # (n_rays, n_samples) per-sample weights
    transmittance: np.ndarray   # (n_rays, n_samples) T_k per sample


class VolumeRenderer:
    """Differentiable volume compositor (Step ❹ of the training pipeline).

    ``white_background`` composites unaccumulated transmittance onto white,
    matching the NeRF-Synthetic evaluation protocol.  ``policy`` selects the
    compositing precision (the float64 default is bit-identical to the
    pre-policy renderer, including its defensive upcast of every input
    plane; float32 keeps policy-dtype inputs copy-free).  With an ``arena``
    every per-batch plane — opacities, transmittance, weights, gradients —
    comes from named reusable buffers, valid until the next pass.
    """

    def __init__(self, white_background: bool = True,
                 policy: Optional[PrecisionPolicy] = None,
                 arena: Optional[WorkspaceArena] = None,
                 backend: BackendLike = None):
        self.white_background = bool(white_background)
        self.policy = resolve_policy(policy)
        self.arena = arena
        self.backend = resolve_backend(backend)
        self._cache: Optional[dict] = None

    def _buf(self, key: str, shape) -> np.ndarray:
        return arena_buffer(self.arena, f"vr/{key}", shape, self.policy.dtype,
                            backend=self.backend)

    # -- forward ----------------------------------------------------------------
    def forward(self, sigmas: np.ndarray, rgbs: np.ndarray, deltas: np.ndarray,
                t_vals: np.ndarray) -> RenderOutput:
        """Composite per-sample features into per-ray pixel values.

        Parameters
        ----------
        sigmas: ``(n_rays, n_samples)`` non-negative densities.
        rgbs:   ``(n_rays, n_samples, 3)`` colors in ``[0, 1]``.
        deltas: ``(n_rays, n_samples)`` sample spacings.
        t_vals: ``(n_rays, n_samples)`` sample distances (for depth output).
        """
        dt = self.policy.dtype
        sigmas = self.backend.asarray(sigmas, dtype=dt)
        rgbs = self.backend.asarray(rgbs, dtype=dt)
        deltas = self.backend.asarray(deltas, dtype=dt)
        t_vals = self.backend.asarray(t_vals, dtype=dt)
        if sigmas.shape != deltas.shape or sigmas.shape != t_vals.shape:
            raise ValueError("sigmas, deltas and t_vals must share shape (n_rays, n_samples)")
        if rgbs.shape != sigmas.shape + (3,):
            raise ValueError("rgbs must have shape (n_rays, n_samples, 3)")

        shape = sigmas.shape
        n_rays = shape[0]
        optical_depth = self._buf("optical_depth", shape)     # sigma_k * delta_k
        np.multiply(sigmas, deltas, out=optical_depth)
        alphas = self._buf("alphas", shape)                   # 1 - exp(-od)
        np.negative(optical_depth, out=alphas)
        np.exp(alphas, out=alphas)
        np.subtract(1.0, alphas, out=alphas)
        # T_k = exp(-sum_{j<k} sigma_j delta_j): exclusive cumulative sum.
        transmittance = self._buf("transmittance", shape)
        self.backend.cumsum(optical_depth, axis=1, out=transmittance)
        np.subtract(transmittance, optical_depth, out=transmittance)
        np.negative(transmittance, out=transmittance)
        np.exp(transmittance, out=transmittance)
        weights = self._buf("weights", shape)
        np.multiply(transmittance, alphas, out=weights)
        colors = self._buf("colors", (n_rays, 3))
        self.backend.einsum("ns,nsc->nc", weights, rgbs, out=colors)
        depth = self._buf("depth", (n_rays,))
        self.backend.einsum("ns,ns->n", weights, t_vals, out=depth)
        accumulation = self._buf("accumulation", (n_rays,))
        np.sum(weights, axis=1, out=accumulation)
        if self.white_background:
            background = self._buf("background", (n_rays,))
            np.subtract(1.0, accumulation, out=background)
            colors += background[:, None]
        self._cache = {
            "sigmas": sigmas,
            "rgbs": rgbs,
            "deltas": deltas,
            "t_vals": t_vals,
            "weights": weights,
            "transmittance": transmittance,
            "alphas": alphas,
        }
        return RenderOutput(
            colors=colors,
            depth=depth,
            accumulation=accumulation,
            weights=weights,
            transmittance=transmittance,
        )

    # -- backward ---------------------------------------------------------------
    def backward(self, grad_colors: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate ``dL/dC`` back to per-sample densities and colors.

        Returns ``(grad_sigmas, grad_rgbs)`` with the shapes of the forward
        inputs.  Handles the white-background term (its gradient flows into
        the weights through the accumulation).
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        grad_colors = self.backend.asarray(grad_colors, dtype=self.policy.dtype)
        rgbs = cache["rgbs"]
        weights = cache["weights"]
        transmittance = cache["transmittance"]
        deltas = cache["deltas"]
        shape = weights.shape

        # dL/dc_k = w_k * dL/dC
        grad_rgbs = self._buf("grad_rgbs", shape + (3,))
        np.multiply(weights[:, :, None], grad_colors[:, None, :], out=grad_rgbs)

        # g_k = dL/dw_k = <dL/dC, c_k>  (minus the white-background term,
        # because C += (1 - sum_k w_k) * 1 when compositing onto white).
        g = self._buf("g", shape)
        self.backend.einsum("nc,nsc->ns", grad_colors, rgbs, out=g)
        if self.white_background:
            channel_sum = self._buf("channel_sum", (shape[0],))
            np.sum(grad_colors, axis=1, out=channel_sum)
            g -= channel_sum[:, None]

        gw = self._buf("gw", shape)
        np.multiply(g, weights, out=gw)
        # suffix_k = sum_{j>k} g_j w_j  (exclusive reverse cumulative sum)
        suffix = self._buf("suffix", shape)
        self.backend.cumsum(gw[:, ::-1], axis=1, out=suffix)
        grad_sigmas = self._buf("grad_sigmas", shape)
        np.subtract(suffix[:, ::-1], gw, out=grad_sigmas)     # suffix sums
        np.subtract(transmittance, weights, out=suffix)       # reuse as T - w
        suffix *= g
        np.subtract(suffix, grad_sigmas, out=grad_sigmas)
        grad_sigmas *= deltas
        return grad_sigmas, grad_rgbs

    # -- utility ------------------------------------------------------------------
    @staticmethod
    def render_depth_normalized(render: RenderOutput, near: float, far: float) -> np.ndarray:
        """Normalise depth to ``[0, 1]`` for depth-image PSNR (Fig. 5 analysis)."""
        depth = np.clip(render.depth, near, far)
        return (depth - near) / max(far - near, 1e-9)
