"""Classical volume rendering (Eq. 1 of the paper) with a hand-derived backward.

Given per-sample densities ``sigma_k`` and colors ``c_k`` along a ray, the
pixel color is

    C = sum_k  T_k * (1 - exp(-sigma_k * delta_k)) * c_k,
    T_k = exp(-sum_{j<k} sigma_j * delta_j)

The backward pass propagates ``dL/dC`` to both ``dL/dc_k`` (trivially
``w_k * dL/dC``) and ``dL/dsigma_k`` using

    dL/dsigma_k = delta_k * [ g_k * (T_k - w_k) - sum_{j>k} g_j * w_j ]

with ``g_j = <dL/dC, c_j>`` — the standard closed form also implemented by
Instant-NGP's CUDA composite kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


@dataclass
class RenderOutput:
    """Outputs of one volume-rendering pass over a batch of rays."""

    colors: np.ndarray          # (n_rays, 3) composited pixel colors
    depth: np.ndarray           # (n_rays,) expected termination depth
    accumulation: np.ndarray    # (n_rays,) sum of weights (opacity)
    weights: np.ndarray         # (n_rays, n_samples) per-sample weights
    transmittance: np.ndarray   # (n_rays, n_samples) T_k per sample


class VolumeRenderer:
    """Differentiable volume compositor (Step ❹ of the training pipeline).

    ``white_background`` composites unaccumulated transmittance onto white,
    matching the NeRF-Synthetic evaluation protocol.
    """

    def __init__(self, white_background: bool = True):
        self.white_background = bool(white_background)
        self._cache: Optional[dict] = None

    # -- forward ----------------------------------------------------------------
    def forward(self, sigmas: np.ndarray, rgbs: np.ndarray, deltas: np.ndarray,
                t_vals: np.ndarray) -> RenderOutput:
        """Composite per-sample features into per-ray pixel values.

        Parameters
        ----------
        sigmas: ``(n_rays, n_samples)`` non-negative densities.
        rgbs:   ``(n_rays, n_samples, 3)`` colors in ``[0, 1]``.
        deltas: ``(n_rays, n_samples)`` sample spacings.
        t_vals: ``(n_rays, n_samples)`` sample distances (for depth output).
        """
        sigmas = np.asarray(sigmas, dtype=np.float64)
        rgbs = np.asarray(rgbs, dtype=np.float64)
        deltas = np.asarray(deltas, dtype=np.float64)
        t_vals = np.asarray(t_vals, dtype=np.float64)
        if sigmas.shape != deltas.shape or sigmas.shape != t_vals.shape:
            raise ValueError("sigmas, deltas and t_vals must share shape (n_rays, n_samples)")
        if rgbs.shape != sigmas.shape + (3,):
            raise ValueError("rgbs must have shape (n_rays, n_samples, 3)")

        optical_depth = sigmas * deltas                       # sigma_k * delta_k
        alphas = 1.0 - np.exp(-optical_depth)                 # per-sample opacity
        # T_k = exp(-sum_{j<k} sigma_j delta_j): exclusive cumulative sum.
        accumulated = np.cumsum(optical_depth, axis=1)
        transmittance = np.exp(-(accumulated - optical_depth))
        weights = transmittance * alphas
        colors = np.einsum("ns,nsc->nc", weights, rgbs)
        depth = np.einsum("ns,ns->n", weights, t_vals)
        accumulation = weights.sum(axis=1)
        if self.white_background:
            colors = colors + (1.0 - accumulation)[:, None]
        self._cache = {
            "sigmas": sigmas,
            "rgbs": rgbs,
            "deltas": deltas,
            "t_vals": t_vals,
            "weights": weights,
            "transmittance": transmittance,
            "alphas": alphas,
        }
        return RenderOutput(
            colors=colors,
            depth=depth,
            accumulation=accumulation,
            weights=weights,
            transmittance=transmittance,
        )

    # -- backward ---------------------------------------------------------------
    def backward(self, grad_colors: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate ``dL/dC`` back to per-sample densities and colors.

        Returns ``(grad_sigmas, grad_rgbs)`` with the shapes of the forward
        inputs.  Handles the white-background term (its gradient flows into
        the weights through the accumulation).
        """
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        cache = self._cache
        grad_colors = np.asarray(grad_colors, dtype=np.float64)
        rgbs = cache["rgbs"]
        weights = cache["weights"]
        transmittance = cache["transmittance"]
        deltas = cache["deltas"]

        # dL/dc_k = w_k * dL/dC
        grad_rgbs = weights[:, :, None] * grad_colors[:, None, :]

        # g_k = dL/dw_k = <dL/dC, c_k>  (minus the white-background term,
        # because C += (1 - sum_k w_k) * 1 when compositing onto white).
        g = np.einsum("nc,nsc->ns", grad_colors, rgbs)
        if self.white_background:
            g = g - grad_colors.sum(axis=1)[:, None]

        gw = g * weights
        # suffix_k = sum_{j>k} g_j w_j  (exclusive reverse cumulative sum)
        suffix = np.cumsum(gw[:, ::-1], axis=1)[:, ::-1] - gw
        grad_sigmas = deltas * (g * (transmittance - weights) - suffix)
        return grad_sigmas, grad_rgbs

    # -- utility ------------------------------------------------------------------
    @staticmethod
    def render_depth_normalized(render: RenderOutput, near: float, far: float) -> np.ndarray:
        """Normalise depth to ``[0, 1]`` for depth-image PSNR (Fig. 5 analysis)."""
        depth = np.clip(render.depth, near, far)
        return (depth - near) / max(far - near, 1e-9)
