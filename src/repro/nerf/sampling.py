"""Point sampling along rays (the per-ray part of Step ❸)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nerf.cameras import RayBundle


def stratified_samples(ray_bundle: RayBundle, n_samples: int,
                       rng: Optional[np.random.Generator] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``n_samples`` distances per ray between ``near`` and ``far``.

    The ``[near, far]`` interval is split into ``n_samples`` equal bins; with
    an ``rng`` each sample is drawn uniformly inside its bin (stratified
    sampling, used during training), otherwise bin midpoints are used
    (deterministic, used for evaluation rendering).

    Returns
    -------
    ``(t_vals, deltas)`` — both of shape ``(n_rays, n_samples)``.  ``deltas``
    are the inter-sample spacings ``t_{k+1} - t_k`` used by the volume
    renderer, with the final delta closing the interval at ``far``.  Every
    delta (not just the last) is floored at ``1e-6``: jitter landing exactly
    on adjacent bin edges can otherwise produce zero-width intervals, which
    zero out the volume renderer's extinction terms.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    n_rays = ray_bundle.n_rays
    near, far = ray_bundle.near, ray_bundle.far
    edges = np.linspace(near, far, n_samples + 1)
    lower = np.broadcast_to(edges[:-1], (n_rays, n_samples))
    width = (far - near) / n_samples
    if rng is not None:
        jitter = rng.uniform(0.0, 1.0, size=(n_rays, n_samples))
    else:
        jitter = np.full((n_rays, n_samples), 0.5)
    t_vals = lower + jitter * width
    deltas = np.diff(t_vals, axis=1)
    last_delta = far - t_vals[:, -1:]
    deltas = np.maximum(np.concatenate([deltas, last_delta], axis=1), 1e-6)
    return t_vals, deltas


def ray_points(ray_bundle: RayBundle, t_vals: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate ``o + t * d`` for every sample of every ray.

    Returns ``(points, dirs)`` where ``points`` is ``(n_rays * n_samples, 3)``
    flattened in ray-major order and ``dirs`` repeats each ray direction for
    each of its samples (the per-point view direction fed to the color head).
    """
    t_vals = np.asarray(t_vals, dtype=np.float64)
    if t_vals.shape[0] != ray_bundle.n_rays:
        raise ValueError("t_vals row count must equal the number of rays")
    points = (
        ray_bundle.origins[:, None, :]
        + t_vals[:, :, None] * ray_bundle.directions[:, None, :]
    )
    n_samples = t_vals.shape[1]
    dirs = np.repeat(ray_bundle.directions, n_samples, axis=0)
    return points.reshape(-1, 3), dirs


def normalize_points_to_unit_cube(points: np.ndarray, scene_bound: float) -> np.ndarray:
    """Map world-space points in ``[-scene_bound, scene_bound]^3`` to ``[0, 1]^3``.

    The hash grid is defined over the unit cube; points outside the scene
    bound are clamped to the cube surface (they land in empty space anyway).
    """
    if scene_bound <= 0:
        raise ValueError("scene_bound must be positive")
    unit = (np.asarray(points, dtype=np.float64) + scene_bound) / (2.0 * scene_bound)
    return np.clip(unit, 0.0, 1.0)
