"""Point sampling along rays (the per-ray part of Step ❸).

All three helpers take the training stack's compute ``dtype`` (the precision
policy) and an optional :class:`~repro.utils.workspace.WorkspaceArena`; the
float64 defaults are bit-identical to the pre-policy implementation.  Jitter
is always *drawn* as float64 — ``Generator.random(out=...)`` produces the
exact draws ``Generator.uniform(0, 1, size)`` did — and cast to the compute
dtype afterwards, so a float32 run consumes the same RNG stream as its
float64 twin and differs only by arithmetic precision.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend.registry import resolve_backend
from repro.nerf.cameras import RayBundle
from repro.utils.workspace import WorkspaceArena, arena_buffer


def stratified_samples(ray_bundle: RayBundle, n_samples: int,
                       rng: Optional[np.random.Generator] = None,
                       dtype=np.float64,
                       arena: Optional[WorkspaceArena] = None,
                       backend=None) -> Tuple[np.ndarray, np.ndarray]:
    """Draw ``n_samples`` distances per ray between ``near`` and ``far``.

    The ``[near, far]`` interval is split into ``n_samples`` equal bins; with
    an ``rng`` each sample is drawn uniformly inside its bin (stratified
    sampling, used during training), otherwise bin midpoints are used
    (deterministic, used for evaluation rendering).

    Returns
    -------
    ``(t_vals, deltas)`` — both of shape ``(n_rays, n_samples)``.  ``deltas``
    are the inter-sample spacings ``t_{k+1} - t_k`` used by the volume
    renderer, with the final delta closing the interval at ``far``.  Every
    delta (not just the last) is floored at ``1e-6``: jitter landing exactly
    on adjacent bin edges can otherwise produce zero-width intervals, which
    zero out the volume renderer's extinction terms.
    """
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    backend = resolve_backend(backend)
    n_rays = ray_bundle.n_rays
    near, far = ray_bundle.near, ray_bundle.far
    edges = np.linspace(near, far, n_samples + 1, dtype=dtype)
    lower = np.broadcast_to(edges[:-1], (n_rays, n_samples))
    width = (far - near) / n_samples
    shape = (n_rays, n_samples)
    if rng is not None:
        # Drawn as float64 under both policies (the reference draws), then
        # cast — identical streams across precision policies.  The backend's
        # RNG-stream hook consumes the generator exactly as
        # ``Generator.uniform(0, 1, size)`` would, so runs differ across
        # backends/policies only by arithmetic, never by stream divergence.
        draws = arena_buffer(arena, "samples/jitter64", shape, np.float64,
                             backend=backend)
        backend.draw_uniform(rng, draws)
        if np.dtype(dtype) == np.float64:
            jitter = draws
        else:
            jitter = arena_buffer(arena, "samples/jitter", shape, dtype,
                                  backend=backend)
            np.copyto(jitter, draws, casting="same_kind")
    else:
        jitter = arena_buffer(arena, "samples/jitter_mid", shape, dtype,
                              backend=backend)
        jitter.fill(0.5)
    t_vals = arena_buffer(arena, "samples/t_vals", shape, dtype,
                          backend=backend)
    np.multiply(jitter, width, out=t_vals)
    t_vals += lower
    deltas = arena_buffer(arena, "samples/deltas", shape, dtype,
                          backend=backend)
    if n_samples > 1:
        np.subtract(t_vals[:, 1:], t_vals[:, :-1], out=deltas[:, :-1])
    np.subtract(far, t_vals[:, -1], out=deltas[:, -1])
    np.maximum(deltas, 1e-6, out=deltas)
    return t_vals, deltas


def ray_points(ray_bundle: RayBundle, t_vals: np.ndarray,
               dtype=np.float64,
               arena: Optional[WorkspaceArena] = None,
               backend=None) -> Tuple[np.ndarray, np.ndarray]:
    """Evaluate ``o + t * d`` for every sample of every ray.

    Returns ``(points, dirs)`` where ``points`` is ``(n_rays * n_samples, 3)``
    flattened in ray-major order and ``dirs`` repeats each ray direction for
    each of its samples (the per-point view direction fed to the color head).
    """
    backend = resolve_backend(backend)
    t_vals = backend.asarray(t_vals, dtype=dtype)
    if t_vals.shape[0] != ray_bundle.n_rays:
        raise ValueError("t_vals row count must equal the number of rays")
    n_rays, n_samples = t_vals.shape
    origins = ray_bundle.origins
    directions = ray_bundle.directions
    if origins.dtype != np.dtype(dtype):
        cast = arena_buffer(arena, "rays/origins", origins.shape, dtype,
                            backend=backend)
        np.copyto(cast, origins, casting="same_kind")
        origins = cast
    if directions.dtype != np.dtype(dtype):
        cast = arena_buffer(arena, "rays/directions", directions.shape, dtype,
                            backend=backend)
        np.copyto(cast, directions, casting="same_kind")
        directions = cast
    points = arena_buffer(arena, "rays/points", (n_rays, n_samples, 3), dtype,
                          backend=backend)
    np.multiply(t_vals[:, :, None], directions[:, None, :], out=points)
    points += origins[:, None, :]
    dirs = arena_buffer(arena, "rays/dirs", (n_rays, n_samples, 3), dtype,
                        backend=backend)
    dirs[...] = directions[:, None, :]
    return points.reshape(-1, 3), dirs.reshape(-1, 3)


def ray_probe_points(ray_bundle: RayBundle, n_probes: int) -> np.ndarray:
    """Deterministic probe points at bin midpoints along each ray.

    A cheap, jitter-free cousin of :func:`stratified_samples` +
    :func:`ray_points` used by the occupancy-aware scheduler to ask "which
    grid cells does this ray march through?" without touching any RNG stream
    (reordering a batch must never perturb the trainer's sample draws).

    Returns ``(n_rays * n_probes, 3)`` world-space points, ray-major.
    """
    if n_probes < 1:
        raise ValueError("n_probes must be >= 1")
    near, far = ray_bundle.near, ray_bundle.far
    t_vals = near + (far - near) * \
        (np.arange(n_probes, dtype=np.float64) + 0.5) / n_probes
    points = (ray_bundle.origins[:, None, :]
              + t_vals[None, :, None] * ray_bundle.directions[:, None, :])
    return points.reshape(-1, 3)


def normalize_points_to_unit_cube(points: np.ndarray, scene_bound: float,
                                  dtype=np.float64,
                                  arena: Optional[WorkspaceArena] = None,
                                  backend=None) -> np.ndarray:
    """Map world-space points in ``[-scene_bound, scene_bound]^3`` to ``[0, 1]^3``.

    The hash grid is defined over the unit cube; points outside the scene
    bound are clamped to the cube surface (they land in empty space anyway).
    """
    if scene_bound <= 0:
        raise ValueError("scene_bound must be positive")
    backend = resolve_backend(backend)
    points = backend.asarray(points, dtype=dtype)
    unit = arena_buffer(arena, "rays/unit", points.shape, dtype,
                        backend=backend)
    np.add(points, scene_bound, out=unit)
    unit /= 2.0 * scene_bound
    np.clip(unit, 0.0, 1.0, out=unit)
    return unit
