"""Vanilla NeRF baseline: a large MLP queried directly on encoded positions.

This is the model the paper's background section costs out at ~1 MFLOP per
point query and >1 day of training on a V100.  It exists in the reproduction
for two purposes: (1) as a correctness reference for the radiance-field
interface shared with the hash-grid models, and (2) to let the cost analysis
of Sec. 2.1 (vanilla NeRF vs Instant-NGP FLOPs per query) be regenerated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.nerf.encoding import (
    positional_encoding,
    positional_encoding_dim,
)
from repro.nn.activations import Sigmoid, TruncatedExp
from repro.nn.mlp import MLP
from repro.nn.parameter import Parameter


@dataclass(frozen=True)
class VanillaNeRFConfig:
    """Hyper-parameters of the vanilla-NeRF MLP.

    The paper's reference uses 10 layers of 256 hidden units; the defaults
    here are a scaled-down version that keeps unit tests fast while the
    ``paper_scale`` constructor reproduces the published cost numbers.
    """

    n_position_frequencies: int = 6
    n_direction_frequencies: int = 2
    trunk_layers: int = 4
    trunk_width: int = 64
    geo_feature_dim: int = 15
    color_width: int = 32

    @staticmethod
    def paper_scale() -> "VanillaNeRFConfig":
        """Configuration matching the 10x256 MLP costed in the paper."""
        return VanillaNeRFConfig(
            n_position_frequencies=10,
            n_direction_frequencies=4,
            trunk_layers=8,
            trunk_width=256,
            geo_feature_dim=255,
            color_width=128,
        )


class VanillaNeRF:
    """Positional-encoding + big-MLP radiance field with manual backward.

    ``query`` maps world-space points (already normalised to ``[0, 1]^3``) and
    unit view directions to ``(sigma, rgb)``; ``backward`` propagates the
    gradients coming out of the volume renderer into the MLP parameters.
    """

    def __init__(self, config: VanillaNeRFConfig, rng: np.random.Generator):
        self.config = config
        pos_dim = positional_encoding_dim(3, config.n_position_frequencies)
        dir_dim = positional_encoding_dim(3, config.n_direction_frequencies)
        trunk_hidden = [config.trunk_width] * config.trunk_layers
        self.trunk = MLP(
            in_features=pos_dim,
            hidden_features=trunk_hidden,
            out_features=1 + config.geo_feature_dim,
            rng=rng,
            name="vanilla.trunk",
        )
        self.color_head = MLP(
            in_features=config.geo_feature_dim + dir_dim,
            hidden_features=[config.color_width],
            out_features=3,
            rng=rng,
            name="vanilla.color",
        )
        self.density_activation = TruncatedExp()
        self.color_activation = Sigmoid()
        self._dir_dim = dir_dim

    # -- query / backward -----------------------------------------------------
    def query(self, points: np.ndarray, dirs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate density and color for each point (Step ❸ of vanilla NeRF)."""
        points = np.asarray(points, dtype=np.float64)
        dirs = np.asarray(dirs, dtype=np.float64)
        if points.shape != dirs.shape or points.shape[-1] != 3:
            raise ValueError("points and dirs must both have shape (N, 3)")
        pos_enc = positional_encoding(points, self.config.n_position_frequencies)
        dir_enc = positional_encoding(dirs, self.config.n_direction_frequencies)
        trunk_out = self.trunk.forward(pos_enc)
        raw_sigma = trunk_out[:, :1]
        geo_features = trunk_out[:, 1:]
        sigma = self.density_activation.forward(raw_sigma)[:, 0]
        color_in = np.concatenate([geo_features, dir_enc], axis=1)
        raw_rgb = self.color_head.forward(color_in)
        rgb = self.color_activation.forward(raw_rgb)
        return sigma, rgb

    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray) -> None:
        """Accumulate parameter gradients from per-point output gradients."""
        grad_raw_rgb = self.color_activation.backward(grad_rgb)
        grad_color_in = self.color_head.backward(grad_raw_rgb)
        grad_geo = grad_color_in[:, : self.config.geo_feature_dim]
        grad_raw_sigma = self.density_activation.backward(
            np.asarray(grad_sigma, dtype=np.float32)[:, None]
        )
        grad_trunk_out = np.concatenate([grad_raw_sigma, grad_geo], axis=1)
        self.trunk.backward(grad_trunk_out)

    # -- bookkeeping ------------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        return self.trunk.parameters() + self.color_head.parameters()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    @property
    def flops_per_query(self) -> int:
        """Forward FLOPs to evaluate one point (the paper's ~1 MFLOP figure
        at :meth:`VanillaNeRFConfig.paper_scale`)."""
        return self.trunk.flops_per_sample + self.color_head.flops_per_sample
