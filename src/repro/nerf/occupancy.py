"""Occupancy-grid-based sample pruning.

Instant-NGP maintains a coarse binary occupancy grid over the scene and skips
ray samples that fall in cells known to be empty, which is how it keeps the
number of embedding-grid interpolations per iteration near the ~200k the
paper profiles instead of the full ``rays x samples`` product.  This module
implements that mechanism for the reproduction:

* :class:`OccupancyGrid` — a dense ``resolution^3`` grid of exponentially
  averaged density estimates with a binary occupancy view;
* periodic updates from the radiance field's own density predictions;
* :meth:`OccupancyGrid.filter_samples` — masks out ray samples in empty
  cells so callers can skip querying them.

The grid is wired into the training stack through
:class:`~repro.nerf.pipeline.RenderPipeline`: with
``Instant3DConfig(culling_enabled=True)`` the trainer refreshes the grid from
the density branch on the Instant-NGP schedule and every batch's samples are
*compacted* (only occupied-cell samples reach the radiance field, forward and
backward).  The dense path remains the default (``culling_enabled=False``)
and is kept bit-identical for differential testing.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

import numpy as np

from repro.utils.seeding import derive_rng, get_rng_state, set_rng_state


class OccupancyGrid:
    """A coarse occupancy grid over the unit cube used to prune empty samples."""

    def __init__(self, resolution: int = 32, decay: float = 0.95,
                 occupancy_threshold: float = 0.01, seed: int = 0):
        if resolution < 2:
            raise ValueError("resolution must be >= 2")
        if not (0.0 < decay < 1.0):
            raise ValueError("decay must be in (0, 1)")
        if occupancy_threshold < 0.0:
            raise ValueError("occupancy_threshold must be non-negative")
        self.resolution = int(resolution)
        self.decay = float(decay)
        self.occupancy_threshold = float(occupancy_threshold)
        self.density = np.zeros((resolution,) * 3, dtype=np.float32)
        # One generator for the grid's whole lifetime: successive updates
        # probe fresh point sets (the state advances), and the sequence is a
        # pure function of the constructor seed rather than of how many
        # updates happened before a restart.
        self._rng = derive_rng(seed, "occupancy.update-points")
        self._updates = 0
        self._marks = 0
        # Cached binary view of ``density`` (and its .any() reduction): the
        # thresholding scans resolution^3 cells, which filter_samples would
        # otherwise redo twice per batch.  Invalidated whenever the density
        # memory changes.
        self._occupancy_cache: Optional[np.ndarray] = None
        self._any_occupied: Optional[bool] = None

    # -- indexing -----------------------------------------------------------------
    def cell_indices(self, points_unit: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map points in ``[0, 1]^3`` to integer cell indices."""
        points_unit = np.clip(np.asarray(points_unit, dtype=np.float64), 0.0, 1.0 - 1e-9)
        idx = np.floor(points_unit * self.resolution).astype(np.int64)
        return idx[:, 0], idx[:, 1], idx[:, 2]

    # -- updates --------------------------------------------------------------------
    def _invalidate_cache(self) -> None:
        self._occupancy_cache = None
        self._any_occupied = None

    def update(self, query_fn: Callable[[np.ndarray], np.ndarray],
               n_samples: int = 4096, rng: Optional[np.random.Generator] = None) -> None:
        """Refresh the grid from the radiance field's current density estimates.

        ``query_fn`` maps ``(N, 3)`` unit-cube points to ``(N,)`` densities
        (e.g. the model's :meth:`~repro.core.model.DecoupledRadianceField.query_density`).
        Cells are updated with an exponential moving maximum, mirroring
        Instant-NGP's schedule.  Without an explicit ``rng`` the grid's own
        seeded generator is used, so repeated updates probe fresh point sets.
        """
        rng = rng if rng is not None else self._rng
        points = rng.uniform(0.0, 1.0, size=(n_samples, 3))
        densities = np.asarray(query_fn(points), dtype=np.float32).reshape(-1)
        if densities.shape[0] != n_samples:
            raise ValueError("query_fn must return one density per sampled point")
        self.density *= self.decay
        ix, iy, iz = self.cell_indices(points)
        np.maximum.at(self.density, (ix, iy, iz), densities)
        self._updates += 1
        self._invalidate_cache()

    def mark_occupied(self, points_unit: np.ndarray, density: float = 1.0) -> None:
        """Force the cells containing ``points_unit`` to be occupied (e.g. from GT).

        Marks count as density evidence: a grid seeded *only* through
        ``mark_occupied`` still culls in :meth:`filter_samples` (tracked by
        :attr:`has_data`), instead of being silently ignored until the first
        :meth:`update`.
        """
        ix, iy, iz = self.cell_indices(points_unit)
        np.maximum.at(self.density, (ix, iy, iz), np.float32(density))
        self._marks += 1
        self._invalidate_cache()

    # -- queries ----------------------------------------------------------------------
    @property
    def n_updates(self) -> int:
        """How many times the grid has been refreshed via :meth:`update`."""
        return self._updates

    @property
    def n_marks(self) -> int:
        """How many times cells were forced occupied via :meth:`mark_occupied`."""
        return self._marks

    @property
    def has_data(self) -> bool:
        """True once the grid holds any density evidence (update *or* mark).

        A grid without data keeps every sample in :meth:`filter_samples`.
        """
        return (self._updates + self._marks) > 0

    @property
    def occupancy(self) -> np.ndarray:
        """Binary occupancy view of the grid (cached; treat as read-only)."""
        if self._occupancy_cache is None:
            self._occupancy_cache = self.density > self.occupancy_threshold
        return self._occupancy_cache

    @property
    def occupancy_fraction(self) -> float:
        """Fraction of cells currently considered occupied."""
        return float(np.mean(self.occupancy))

    def _anything_occupied(self) -> bool:
        if self._any_occupied is None:
            self._any_occupied = bool(self.occupancy.any())
        return self._any_occupied

    def is_occupied(self, points_unit: np.ndarray) -> np.ndarray:
        """Boolean occupancy of the cells containing each point."""
        ix, iy, iz = self.cell_indices(points_unit)
        return self.occupancy[ix, iy, iz]

    def first_occupied_cells(self, points_unit: np.ndarray, n_rays: int,
                             n_probes: int) -> Tuple[np.ndarray, np.ndarray,
                                                     np.ndarray, np.ndarray]:
        """First occupied probe cell along each ray, for batch scheduling.

        ``points_unit`` holds ``n_rays * n_probes`` unit-cube probe points in
        ray-major order (see :func:`~repro.nerf.sampling.ray_probe_points`).
        Returns ``(found, ix, iy, iz)``, each of shape ``(n_rays,)``:
        ``found`` marks rays whose probes hit at least one occupied cell and
        ``ix/iy/iz`` are that first hit's cell indices (the first probe's
        cell for no-hit rays — callers must gate on ``found``).
        """
        points_unit = np.asarray(points_unit, dtype=np.float64)
        if points_unit.shape[0] != n_rays * n_probes:
            raise ValueError("expected n_rays * n_probes probe points")
        ix, iy, iz = self.cell_indices(points_unit)
        hits = self.occupancy[ix, iy, iz].reshape(n_rays, n_probes)
        first = np.argmax(hits, axis=1)
        rays = np.arange(n_rays)
        found = hits[rays, first]
        sel = rays * n_probes + first
        return found, ix[sel], iy[sel], iz[sel]

    def filter_samples(self, points_unit: np.ndarray) -> np.ndarray:
        """Mask of samples worth querying (True = keep).

        Before the grid holds any data every sample is kept, so training is
        correct even if the caller never refreshes the grid.  Likewise, a
        grid whose cells are *all* below the threshold keeps everything:
        culling 100% of samples would freeze training (no gradients ever
        flow, so the density field could never re-exceed the threshold) — an
        empty grid means "no known occupied space yet", not "skip the scene".
        """
        points_unit = np.asarray(points_unit, dtype=np.float64)
        if not self.has_data or not self._anything_occupied():
            return np.ones(points_unit.shape[0], dtype=bool)
        return self.is_occupied(points_unit)

    def expected_queries_per_iteration(self, n_rays: int, n_samples: int) -> float:
        """Expected embedding-grid queries per iteration after pruning.

        Mirrors :meth:`filter_samples`: a data-free or all-empty grid keeps
        every sample, so the expectation is the dense product.
        """
        fraction = self.occupancy_fraction
        keep = fraction if self.has_data and fraction > 0.0 else 1.0
        return n_rays * n_samples * keep

    # -- serialisation ----------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot: density planes, counters and RNG state.

        Capturing the probe generator's bit-generator state means a restored
        grid draws exactly the point sets the uninterrupted run would have —
        a requirement for bit-identical resume of culled training.
        """
        return {
            "resolution": int(self.resolution),
            "decay": float(self.decay),
            "occupancy_threshold": float(self.occupancy_threshold),
            "density": self.density.copy(),
            "updates": int(self._updates),
            "marks": int(self._marks),
            "rng": get_rng_state(self._rng),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into an identically configured grid."""
        if int(state["resolution"]) != self.resolution:
            raise ValueError(
                f"checkpoint resolution {state['resolution']} does not match "
                f"grid resolution {self.resolution}")
        if float(state["decay"]) != self.decay or \
                float(state["occupancy_threshold"]) != self.occupancy_threshold:
            raise ValueError(
                "checkpoint decay/threshold do not match this grid's "
                "configuration")
        density = np.asarray(state["density"], dtype=np.float32)
        if density.shape != self.density.shape:
            raise ValueError(
                f"checkpoint density shape {density.shape} does not match "
                f"{self.density.shape}")
        self.density[...] = density
        self._updates = int(state["updates"])
        self._marks = int(state["marks"])
        set_rng_state(self._rng, state["rng"])
        self._invalidate_cache()
