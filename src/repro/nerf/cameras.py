"""Pinhole cameras, ray generation and pixel-batch sampling (Steps ❶ and ❷)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.math3d import normalize, transform_directions


@dataclass
class RayBundle:
    """A batch of rays ``r(t) = origin + t * direction``.

    ``origins`` and ``directions`` have shape ``(N, 3)``; directions are unit
    length.  ``near``/``far`` are the per-bundle integration bounds used when
    sampling points along the rays.
    """

    origins: np.ndarray
    directions: np.ndarray
    near: float
    far: float

    def __post_init__(self) -> None:
        self.origins = np.asarray(self.origins, dtype=np.float64)
        self.directions = np.asarray(self.directions, dtype=np.float64)
        if self.origins.shape != self.directions.shape or self.origins.shape[-1] != 3:
            raise ValueError("origins and directions must both have shape (N, 3)")
        if self.near < 0 or self.far <= self.near:
            raise ValueError("require 0 <= near < far")

    @property
    def n_rays(self) -> int:
        return int(self.origins.shape[0])


@dataclass
class PinholeCamera:
    """A posed pinhole camera using the NeRF/OpenGL convention.

    The camera looks down its local ``-z`` axis; ``pose`` is the 4x4
    camera-to-world matrix.  ``focal`` is expressed in pixels and shared by
    the x and y axes (square pixels), matching the NeRF-Synthetic cameras.
    """

    width: int
    height: int
    focal: float
    pose: np.ndarray
    near: float = 0.05
    far: float = 2.5

    def __post_init__(self) -> None:
        self.pose = np.asarray(self.pose, dtype=np.float64)
        if self.pose.shape != (4, 4):
            raise ValueError("pose must be a 4x4 camera-to-world matrix")
        if self.width < 1 or self.height < 1:
            raise ValueError("image dimensions must be positive")
        if self.focal <= 0:
            raise ValueError("focal length must be positive")

    @property
    def n_pixels(self) -> int:
        return self.width * self.height

    def pixel_grid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (cols, rows) index arrays for every pixel, row-major."""
        rows, cols = np.meshgrid(
            np.arange(self.height), np.arange(self.width), indexing="ij"
        )
        return cols.reshape(-1), rows.reshape(-1)

    def rays_for_pixels(self, cols: np.ndarray, rows: np.ndarray) -> RayBundle:
        """Emit world-space rays through the centres of the given pixels (Step ❷)."""
        cols = np.asarray(cols, dtype=np.float64)
        rows = np.asarray(rows, dtype=np.float64)
        cx = self.width / 2.0
        cy = self.height / 2.0
        # Camera-space directions: +x right, +y up, camera looks along -z.
        dirs_cam = np.stack(
            [
                (cols + 0.5 - cx) / self.focal,
                -(rows + 0.5 - cy) / self.focal,
                -np.ones_like(cols),
            ],
            axis=-1,
        )
        dirs_world = normalize(transform_directions(self.pose, dirs_cam))
        origins = np.broadcast_to(self.pose[:3, 3], dirs_world.shape).copy()
        return RayBundle(origins=origins, directions=dirs_world,
                         near=self.near, far=self.far)

    def all_rays(self) -> RayBundle:
        """Rays for every pixel of the image, row-major order."""
        cols, rows = self.pixel_grid()
        return self.rays_for_pixels(cols, rows)


def sample_pixel_batch(cameras, images, batch_size: int,
                       rng: np.random.Generator):
    """Step ❶: randomly sample a batch of pixels across all training views.

    Parameters
    ----------
    cameras:
        Sequence of :class:`PinholeCamera`, one per training view.
    images:
        Sequence of ``(H, W, 3)`` float arrays in ``[0, 1]`` aligned with
        ``cameras``.
    batch_size:
        Number of pixels to draw.
    rng:
        Random generator (sampling is with replacement, as in Instant-NGP).

    Returns
    -------
    ``(ray_bundle, target_rgb)`` where ``target_rgb`` is ``(batch_size, 3)``.
    """
    if len(cameras) != len(images) or not cameras:
        raise ValueError("cameras and images must be non-empty and aligned")
    n_views = len(cameras)
    view_idx = rng.integers(0, n_views, size=batch_size)
    origins = np.empty((batch_size, 3))
    directions = np.empty((batch_size, 3))
    targets = np.empty((batch_size, 3))
    near = cameras[0].near
    far = cameras[0].far
    for view in np.unique(view_idx):
        mask = view_idx == view
        count = int(mask.sum())
        cam = cameras[view]
        image = np.asarray(images[view])
        cols = rng.integers(0, cam.width, size=count)
        rows = rng.integers(0, cam.height, size=count)
        bundle = cam.rays_for_pixels(cols, rows)
        origins[mask] = bundle.origins
        directions[mask] = bundle.directions
        targets[mask] = image[rows, cols]
    return RayBundle(origins=origins, directions=directions, near=near, far=far), targets
