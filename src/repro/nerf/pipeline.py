"""The occupancy-culled render pipeline: the full ray lifecycle in one place.

:class:`RenderPipeline` owns Steps ❷–❹ of the training loop for a batch of
rays — stratified point sampling, occupancy-grid culling with **sample
compaction**, the radiance-field query, and masked volume rendering — plus
the matching gradient gather for the backward pass:

1. ``stratified_samples`` draws ``n_samples`` distances per ray and
   ``ray_points`` evaluates the sample positions;
2. the occupancy grid (when culling is enabled) marks samples in known-empty
   cells, and only the *kept* samples are sent to
   ``DecoupledRadianceField.query`` — this is what keeps embedding-grid
   interpolations per iteration near the paper's ~200k instead of the full
   ``rays x samples`` product;
3. the compacted ``(sigma, rgb)`` results are scattered back into dense
   ``(n_rays, n_samples)`` planes with ``sigma = 0`` for culled samples
   (an empty cell contributes zero extinction, so the composite is exact up
   to the occupancy threshold) and volume-rendered as usual;
4. :meth:`RenderPipeline.backward_to_points` gathers the renderer's dense
   per-sample gradients back down to the kept samples, so back-propagation
   also only touches the points that were actually queried.

For evaluation rendering the pipeline additionally supports **early ray
termination**: rays are marched in fixed-size segments and a ray whose
transmittance falls below ``early_termination_tau`` skips its remaining
segments entirely (the truncated tail can change the composited color by at
most ``tau`` per channel).  Early termination is forward-only — training
never uses it, so gradients are unaffected.

With ``culling_enabled=False`` (and no early termination) the pipeline
executes exactly the dense sequence the pre-culling trainer ran —
bit-identical outputs, preserved for differential testing the same way the
grid engine keeps its ``fused=False`` reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.backend.registry import BackendLike, resolve_backend
from repro.nerf.cameras import RayBundle
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.nerf.volume_rendering import RenderOutput, VolumeRenderer
from repro.utils.precision import PrecisionPolicy, resolve_policy
from repro.utils.workspace import WorkspaceArena, arena_buffer, arena_zeros

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports nerf)
    from repro.core.model import DecoupledRadianceField


@dataclass
class SampleStage:
    """Stage ❶ output: stratified samples and world→unit points for a batch.

    Beware of buffer lifetime under an arena: every array aliases the
    arena's sampling buffers and is only valid until the pipeline samples
    the *next* bundle.  Callers that interleave bundles (the serving
    coalescer) must copy what they keep into their own named buffers.
    """

    t_vals: np.ndarray          # (n_rays, n_samples) sample distances
    deltas: np.ndarray          # (n_rays, n_samples) sample spacings
    points_unit: np.ndarray     # (n_rays * n_samples, 3) unit-cube positions
    dirs: np.ndarray            # (n_rays * n_samples, 3) per-sample directions
    n_rays: int
    n_samples: int

    @property
    def n_total(self) -> int:
        return self.n_rays * self.n_samples


@dataclass
class CullStage:
    """Stage ❷ output: the occupancy-culled query plan for one sample batch.

    ``idx is None`` marks the dense plan (culling off, or nothing cullable):
    the query runs over the full ``points_unit`` block and the composite is
    a plain reshape.  Otherwise ``idx`` holds the kept flat sample indices
    (already permuted when address sorting is on) and ``keep_flat`` the flat
    boolean mask the backward gather needs.
    """

    sample: SampleStage
    keep_flat: Optional[np.ndarray]
    idx: Optional[np.ndarray]
    n_queried: int

    @property
    def dense(self) -> bool:
        return self.idx is None


@dataclass
class PipelineRender:
    """Outputs and query accounting of one pipeline pass over a ray batch."""

    render: RenderOutput
    t_vals: np.ndarray          # (n_rays, n_samples) sample distances
    deltas: np.ndarray          # (n_rays, n_samples) sample spacings
    n_rays: int
    n_samples: int
    n_queried: int              # samples that actually reached the field
    n_total: int                # n_rays * n_samples (the dense product)
    occupancy_fraction: float   # occupied-cell fraction of the grid (1.0 dense)

    @property
    def keep_fraction(self) -> float:
        """Fraction of the dense sample product that was queried."""
        return self.n_queried / max(self.n_total, 1)

    @property
    def queries_saved(self) -> int:
        """Embedding/MLP point queries skipped by culling/termination."""
        return self.n_total - self.n_queried


class RenderPipeline:
    """Ray generation → sampling → culling/compaction → query → rendering.

    Parameters
    ----------
    model:
        The radiance field to query (anything with ``query``/``backward``
        compatible with :class:`~repro.core.model.DecoupledRadianceField`).
    scene_bound:
        Half-extent of the world-space cube mapped onto the hash grid's unit
        cube.
    n_samples:
        Samples per ray.
    white_background:
        Composite unaccumulated transmittance onto white (NeRF-Synthetic
        protocol).
    occupancy / culling_enabled:
        Sample culling is active when both an occupancy grid is attached and
        ``culling_enabled`` is True.  Before the grid's first update every
        sample is kept, so the pipeline is always correct.
    early_termination_tau / termination_segment:
        Optional transmittance floor for :meth:`render_rays` calls with
        ``allow_termination=True`` (evaluation rendering): rays are marched
        ``termination_segment`` samples at a time and drop out once their
        transmittance is below ``tau``.
    policy:
        Compute-precision policy threaded through sampling, compositing and
        the gradient gather (``None`` resolves to the bit-exact float64
        reference).
    arena:
        Optional workspace arena supplying the dense sigma/rgb planes,
        compacted query blocks and renderer buffers — with it attached,
        steady-state passes perform no large allocations.
    backend:
        Array backend executing the sampling draws, compaction
        gathers/scatters and renderer reductions (``None`` resolves to the
        process default; the ``numpy`` backend is the bit-exact reference).
    address_sort:
        Reorder each compacted batch's kept samples by the Morton code of
        their finest-level grid voxel before the field query (requires the
        model to expose ``encoder.density_grid.point_sort_keys``).  The
        scatter/gather index permutation is carried through forward and
        backward, so dense planes and composited colors are positioned
        exactly as without sorting; only the *row order* of the compacted
        query changes, which makes the backward scatter's address trace
        near-sorted.  Because batch-row order feeds the MLP weight-gradient
        matmul reductions, results match the unsorted path to ulp level, not
        bitwise — the knob is opt-in and only touches the culled path.
    """

    def __init__(self, model: "DecoupledRadianceField", scene_bound: float,
                 n_samples: int, white_background: bool = True,
                 occupancy: Optional[OccupancyGrid] = None,
                 culling_enabled: bool = True,
                 early_termination_tau: Optional[float] = None,
                 termination_segment: int = 8,
                 policy: Optional[PrecisionPolicy] = None,
                 arena: Optional[WorkspaceArena] = None,
                 backend: BackendLike = None,
                 address_sort: bool = False):
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        if early_termination_tau is not None and not (0.0 < early_termination_tau < 1.0):
            raise ValueError("early_termination_tau must be in (0, 1) or None")
        if termination_segment < 1:
            raise ValueError("termination_segment must be >= 1")
        self.model = model
        self.scene_bound = float(scene_bound)
        self.n_samples = int(n_samples)
        self.policy = resolve_policy(policy)
        self.arena = arena
        self.backend = resolve_backend(backend)
        self.renderer = VolumeRenderer(white_background=white_background,
                                       policy=self.policy, arena=arena,
                                       backend=self.backend)
        self.occupancy = occupancy
        self.culling_enabled = bool(culling_enabled)
        self.address_sort = bool(address_sort)
        self.early_termination_tau = early_termination_tau
        self.termination_segment = int(termination_segment)
        self._keep_flat: Optional[np.ndarray] = None   # flat bool mask of last pass
        self._keep_idx: Optional[np.ndarray] = None    # kept flat indices
        self._backward_ok = False

    # -- state ------------------------------------------------------------------
    @property
    def culling_active(self) -> bool:
        """True when batches are actually filtered through an occupancy grid."""
        return self.culling_enabled and self.occupancy is not None

    @property
    def occupancy_fraction(self) -> float:
        """Occupied-cell fraction of the *active* culling mask (1.0 dense).

        Before the grid holds any data (and for an all-empty grid, which
        ``filter_samples`` treats as keep-everything) this reports 1.0, so
        per-step accounting never shows a bogus "0% occupied" during warm-up.
        """
        if not self.culling_active or not self.occupancy.has_data:
            return 1.0
        fraction = self.occupancy.occupancy_fraction
        return fraction if fraction > 0.0 else 1.0

    # -- composable stages -------------------------------------------------------
    # render_rays is the synchronous recomposition of these four stages; the
    # serving layer calls them individually so rays from multiple pending
    # requests for the same scene can share one engine stream (gather the
    # per-request kept blocks, concatenate, query once, composite per
    # request).  The staged path is bit-identical to the monolithic PR 7
    # forward: stage order, arena buffer names and arithmetic are unchanged —
    # only the dense-plane allocation moved from before the query to the
    # composite, which is value-neutral (distinct buffer names, zero fill).

    def stage_samples(self, bundle: RayBundle,
                      rng: Optional[np.random.Generator] = None) -> SampleStage:
        """Stage ❶: stratified distances and unit-cube sample positions."""
        dtype = self.policy.dtype
        t_vals, deltas = stratified_samples(bundle, self.n_samples, rng=rng,
                                            dtype=dtype, arena=self.arena,
                                            backend=self.backend)
        points, dirs = ray_points(bundle, t_vals, dtype=dtype,
                                  arena=self.arena, backend=self.backend)
        points_unit = normalize_points_to_unit_cube(points, self.scene_bound,
                                                    dtype=dtype,
                                                    arena=self.arena,
                                                    backend=self.backend)
        return SampleStage(t_vals=t_vals, deltas=deltas,
                           points_unit=points_unit, dirs=dirs,
                           n_rays=bundle.n_rays, n_samples=self.n_samples)

    def stage_cull(self, sample: SampleStage) -> CullStage:
        """Stage ❷: occupancy filtering into a dense or compacted query plan."""
        if not self.culling_active:
            return CullStage(sample=sample, keep_flat=None, idx=None,
                             n_queried=sample.n_total)
        keep = self.occupancy.filter_samples(sample.points_unit)
        if keep.all():
            # Nothing to cull (e.g. before the grid's first update): take the
            # dense plan so no compaction copies are paid.
            return CullStage(sample=sample, keep_flat=None, idx=None,
                             n_queried=int(keep.size))
        idx = self.backend.flatnonzero(keep)
        n_queried = int(idx.size)
        if self.address_sort and n_queried:
            idx = self._address_sorted(sample.points_unit, idx, n_queried)
        return CullStage(sample=sample, keep_flat=keep, idx=idx,
                         n_queried=n_queried)

    def stage_gather(self, plan: CullStage
                     ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Stage ❸a: compact the kept samples into contiguous query blocks.

        Dense plans pass the full sample block through untouched; an
        all-culled plan yields ``(None, None)`` (there is nothing to query).
        """
        sample = plan.sample
        if plan.idx is None:
            return sample.points_unit, sample.dirs
        if plan.n_queried == 0:
            return None, None
        kept_points = arena_buffer(self.arena, "pipe/kept_points",
                                   (plan.n_queried, 3),
                                   sample.points_unit.dtype,
                                   backend=self.backend)
        self.backend.gather(sample.points_unit, plan.idx, out=kept_points)
        kept_dirs = arena_buffer(self.arena, "pipe/kept_dirs",
                                 (plan.n_queried, 3), sample.dirs.dtype,
                                 backend=self.backend)
        self.backend.gather(sample.dirs, plan.idx, out=kept_dirs)
        return kept_points, kept_dirs

    def stage_query(self, points: Optional[np.ndarray],
                    dirs: Optional[np.ndarray]
                    ) -> Tuple[Optional[np.ndarray], Optional[np.ndarray]]:
        """Stage ❸b: the radiance-field query over one contiguous block.

        The block need not belong to a single request — the serving layer
        passes the concatenation of several requests' gathered samples, and
        the fused grid engine streams it in ``max_chunk_points`` chunks
        regardless of where request boundaries fall.
        """
        if points is None:
            return None, None
        return self.model.query(points, dirs)

    def stage_composite(self, plan: CullStage, sigma: Optional[np.ndarray],
                        rgb: Optional[np.ndarray]) -> RenderOutput:
        """Stage ❹: scatter query results into dense planes and composite."""
        sample = plan.sample
        n_rays, n_samples = sample.n_rays, sample.n_samples
        if plan.idx is None:
            return self.renderer.forward(sigma.reshape(n_rays, n_samples),
                                         rgb.reshape(n_rays, n_samples, 3),
                                         sample.deltas, sample.t_vals)
        dtype = self.policy.dtype
        sigma_plane = arena_zeros(self.arena, "pipe/sigma_plane",
                                  n_rays * n_samples, dtype,
                                  backend=self.backend)
        rgb_plane = arena_zeros(self.arena, "pipe/rgb_plane",
                                (n_rays * n_samples, 3), dtype,
                                backend=self.backend)
        if plan.n_queried:
            self.backend.scatter_rows(sigma_plane, plan.idx, sigma)
            self.backend.scatter_rows(rgb_plane, plan.idx, rgb)
        return self.renderer.forward(
            sigma_plane.reshape(n_rays, n_samples),
            rgb_plane.reshape(n_rays, n_samples, 3),
            sample.deltas, sample.t_vals,
        )

    # -- forward ----------------------------------------------------------------
    def render_rays(self, bundle: RayBundle,
                    rng: Optional[np.random.Generator] = None,
                    allow_termination: bool = False) -> PipelineRender:
        """Run the full ray lifecycle for one batch and composite colors.

        ``rng`` enables stratified jitter (training); ``None`` uses bin
        midpoints (deterministic evaluation).  ``allow_termination=True``
        additionally applies early ray termination when the pipeline has a
        ``early_termination_tau`` — forward-only, so a subsequent
        :meth:`backward_to_points` raises.
        """
        sample = self.stage_samples(bundle, rng=rng)
        terminating = allow_termination and self.early_termination_tau is not None
        if terminating:
            render, n_queried = self._march_terminated(
                sample.points_unit, sample.dirs, sample.t_vals, sample.deltas,
                sample.n_rays)
            self._keep_flat = None
            self._keep_idx = None
            self._backward_ok = False
        else:
            plan = self.stage_cull(sample)
            points, dirs = self.stage_gather(plan)
            sigma, rgb = self.stage_query(points, dirs)
            render = self.stage_composite(plan, sigma, rgb)
            n_queried = plan.n_queried
            self._keep_flat = plan.keep_flat
            self._keep_idx = plan.idx
            self._backward_ok = True
        return PipelineRender(
            render=render,
            t_vals=sample.t_vals,
            deltas=sample.deltas,
            n_rays=sample.n_rays,
            n_samples=sample.n_samples,
            n_queried=int(n_queried),
            n_total=sample.n_total,
            occupancy_fraction=self.occupancy_fraction,
        )

    def _address_sorted(self, points_unit, idx, n_queried: int) -> np.ndarray:
        """Permute the kept-sample indices into grid-address (Morton) order.

        Because ``idx`` indexes both the gather (forward) and the gradient
        gather (backward), permuting it *before* the query reorders the
        whole compacted pass consistently — scattered planes, rendering and
        gradients are unchanged up to floating-point reduction order, while
        the grid sees a near-sorted address stream.
        """
        sort_points = arena_buffer(self.arena, "pipe/sort_points",
                                   (n_queried, 3), points_unit.dtype,
                                   backend=self.backend)
        self.backend.gather(points_unit, idx, out=sort_points)
        keys = self.model.encoder.density_grid.point_sort_keys(sort_points)
        perm = self.backend.argsort(keys)
        sorted_idx = arena_buffer(self.arena, "pipe/sorted_idx",
                                  n_queried, idx.dtype,
                                  backend=self.backend)
        self.backend.take_out(idx, perm, sorted_idx)
        return sorted_idx

    def _march_terminated(self, points_unit, dirs, t_vals, deltas,
                          n_rays: int) -> Tuple[RenderOutput, int]:
        """Segment-wise march with occupancy culling and early termination.

        Samples are queried ``termination_segment`` at a time; after each
        segment the running optical depth tells which rays have dropped below
        the transmittance floor, and those rays skip all later segments
        (their remaining samples stay at ``sigma = 0``, costing at most
        ``tau`` of composited color).
        """
        tau = float(self.early_termination_tau)
        n_samples = self.n_samples
        dtype = self.policy.dtype
        points_r = points_unit.reshape(n_rays, n_samples, 3)
        dirs_r = dirs.reshape(n_rays, n_samples, 3)
        sigma_plane = arena_zeros(self.arena, "pipe/term_sigma",
                                  (n_rays, n_samples), dtype)
        rgb_plane = arena_zeros(self.arena, "pipe/term_rgb",
                                (n_rays, n_samples, 3), dtype)
        if self.culling_active:
            keep = self.occupancy.filter_samples(points_unit).reshape(n_rays, n_samples)
        else:
            keep = np.ones((n_rays, n_samples), dtype=bool)
        active = np.ones(n_rays, dtype=bool)
        optical_depth = np.zeros(n_rays)
        n_queried = 0
        for start in range(0, n_samples, self.termination_segment):
            stop = min(start + self.termination_segment, n_samples)
            mask = keep[:, start:stop] & active[:, None]
            n_segment = int(np.count_nonzero(mask))
            if n_segment:
                sigma, rgb = self.model.query(points_r[:, start:stop][mask],
                                              dirs_r[:, start:stop][mask])
                sigma_plane[:, start:stop][mask] = sigma
                rgb_plane[:, start:stop][mask] = rgb
                n_queried += n_segment
            optical_depth += np.einsum(
                "ns,ns->n", sigma_plane[:, start:stop], deltas[:, start:stop])
            active &= np.exp(-optical_depth) > tau
            if not active.any() and stop < n_samples:
                break
        return self.renderer.forward(sigma_plane, rgb_plane, deltas, t_vals), n_queried

    # -- backward ---------------------------------------------------------------
    def backward_to_points(self, grad_colors: np.ndarray
                           ) -> Tuple[np.ndarray, np.ndarray]:
        """Propagate ``dL/dC`` to the per-point gradients of the *kept* samples.

        Runs the volume renderer's backward over the dense planes, then
        gathers the rows belonging to queried samples — the compacted shapes
        expected by ``DecoupledRadianceField.backward`` for the matching
        :meth:`render_rays` call.  Culled samples receive no gradient: their
        cells are known-empty, so the density branch is not pulled toward
        refilling them.
        """
        if not self._backward_ok:
            raise RuntimeError(
                "backward_to_points requires a preceding render_rays without "
                "early termination")
        grad_sigmas, grad_rgbs = self.renderer.backward(grad_colors)
        if self._keep_idx is None:
            return grad_sigmas.reshape(-1), grad_rgbs.reshape(-1, 3)
        idx = self._keep_idx
        kept_sigmas = arena_buffer(self.arena, "pipe/kept_grad_sigmas",
                                   idx.size, grad_sigmas.dtype,
                                   backend=self.backend)
        self.backend.take_out(grad_sigmas.reshape(-1), idx, kept_sigmas)
        kept_rgbs = arena_buffer(self.arena, "pipe/kept_grad_rgbs",
                                 (idx.size, 3), grad_rgbs.dtype,
                                 backend=self.backend)
        self.backend.gather(grad_rgbs.reshape(-1, 3), idx, out=kept_rgbs)
        return kept_sigmas, kept_rgbs
