"""Locality-aware ray scheduling (Step ❶ with address locality in mind).

The accelerator co-design (Sec 4.5) bounds hash-table update throughput by
address locality: the BackPropUpdateMerger can only merge updates whose
addresses recur within its small window.  A uniformly random pixel batch
scatters rays across all views and the whole image plane, so consecutive
samples rarely touch the same grid rows.  This module supplies drop-in
schedulers for the trainer's pixel draw that restore that locality in
software:

* :class:`UniformScheduler` — the seed behaviour, delegating verbatim to
  :func:`~repro.nerf.cameras.sample_pixel_batch`.  Bit-identical to the
  pre-scheduler trainer (same RNG stream, same draws).
* :class:`MortonTileScheduler` — draws whole ``tile_size x tile_size`` pixel
  tiles per view and enumerates each tile's pixels in 2-D Morton order, so
  neighbouring rays (which march through overlapping grid voxels) are
  adjacent in the batch.
* :class:`OccupancyTileScheduler` — extends the Morton draw by probing each
  ray against the trainer's :class:`~repro.nerf.occupancy.OccupancyGrid` and
  stably reordering the batch by the 3-D Morton code of the first occupied
  cell each ray enters, grouping rays whose *kept* samples land in the same
  grid region.

The RNG-stream rule that keeps ``ray_schedule="uniform"`` bit-identical: a
scheduler owns the trainer's pixel stream for the duration of a draw and may
consume it however it likes, but the uniform scheduler consumes it exactly as
``sample_pixel_batch`` always has.  The occupancy reorder is deterministic
(no extra draws), so switching the occupancy grid on or off never perturbs
the pixel stream.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.nerf.cameras import PinholeCamera, RayBundle, sample_pixel_batch
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_probe_points
from repro.utils.morton import morton_encode_2d, morton_encode_3d

__all__ = [
    "RAY_SCHEDULES",
    "RayScheduler",
    "UniformScheduler",
    "MortonTileScheduler",
    "OccupancyTileScheduler",
    "make_scheduler",
]

#: Valid ``Instant3DConfig.ray_schedule`` values (mirrored by the config's
#: own validation tuple, which cannot import this module).
RAY_SCHEDULES = ("uniform", "morton", "occupancy")

#: Sort key larger than any encodable 3-D cell code: rays that hit no
#: occupied cell sink to the end of the batch, after every grouped ray.
_NO_HIT_KEY = np.int64(1) << np.int64(62)


def _validate_views(cameras: Sequence[PinholeCamera], images: Sequence) -> None:
    if len(cameras) != len(images) or not cameras:
        raise ValueError("cameras and images must be non-empty and aligned")


class RayScheduler:
    """Draws ``(RayBundle, targets)`` training batches from the given views.

    ``last_pixels`` exposes the most recent draw as ``(views, cols, rows)``
    index arrays (None before the first draw) so tests and benchmarks can
    check which pixels a schedule selected without re-deriving them from ray
    geometry.
    """

    last_pixels: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    def sample_batch(self, rng: np.random.Generator):
        """Return ``(ray_bundle, target_rgb)`` for one training batch."""
        raise NotImplementedError


class UniformScheduler(RayScheduler):
    """The seed schedule: uniform random pixels via :func:`sample_pixel_batch`.

    This class adds no behaviour — it exists so the trainer can treat every
    schedule uniformly.  The delegation keeps the RNG consumption (one view
    draw, then per-view column/row draws) byte-for-byte identical to the
    pre-scheduler trainer, which the differential tests pin.
    """

    def __init__(self, cameras: Sequence[PinholeCamera], images: Sequence,
                 batch_pixels: int):
        _validate_views(cameras, images)
        if batch_pixels < 1:
            raise ValueError("batch_pixels must be >= 1")
        self.cameras = list(cameras)
        self.images = list(images)
        self.batch_pixels = int(batch_pixels)

    def sample_batch(self, rng: np.random.Generator):
        self.last_pixels = None
        return sample_pixel_batch(self.cameras, self.images,
                                  self.batch_pixels, rng)


class MortonTileScheduler(RayScheduler):
    """Locality-preserving pixel draw: random tiles, Morton order within.

    Instead of ``batch_pixels`` independent pixels, the draw selects
    ``ceil(batch_pixels / tile_size^2)`` random tile origins (view first,
    then origin per view, mirroring the uniform draw's structure) and emits
    each tile's pixels along the 2-D Z curve.  Adjacent rays in the batch
    then pierce overlapping sets of grid voxels at every level, which is what
    the BUM's small address-matching window can exploit.

    ``tile_size`` is clamped to the smallest view dimension so tiles always
    fit inside every image.
    """

    def __init__(self, cameras: Sequence[PinholeCamera], images: Sequence,
                 batch_pixels: int, tile_size: int = 8):
        _validate_views(cameras, images)
        if batch_pixels < 1:
            raise ValueError("batch_pixels must be >= 1")
        if tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        self.cameras = list(cameras)
        self.images = [np.asarray(image) for image in images]
        self.batch_pixels = int(batch_pixels)
        min_dim = min(min(cam.width, cam.height) for cam in self.cameras)
        self.tile_size = int(min(tile_size, min_dim))
        # Within-tile (dx, dy) offsets along the Z curve, precomputed once.
        # For power-of-two tiles this is exactly the Morton traversal; for
        # other sizes the stable sort of the codes gives the curve restricted
        # to the tile.
        t = self.tile_size
        dx, dy = np.meshgrid(np.arange(t), np.arange(t), indexing="ij")
        order = np.argsort(morton_encode_2d(dx.reshape(-1), dy.reshape(-1)),
                           kind="stable")
        self._tile_dx = dx.reshape(-1)[order]
        self._tile_dy = dy.reshape(-1)[order]
        self.pixels_per_tile = t * t

    def sample_batch(self, rng: np.random.Generator):
        n_views = len(self.cameras)
        ppt = self.pixels_per_tile
        n_tiles = -(-self.batch_pixels // ppt)
        n_total = n_tiles * ppt
        t = self.tile_size
        view_idx = rng.integers(0, n_views, size=n_tiles)
        pixel_view = np.repeat(view_idx, ppt)
        origins = np.empty((n_total, 3))
        directions = np.empty((n_total, 3))
        targets = np.empty((n_total, 3))
        cols_all = np.empty(n_total, dtype=np.int64)
        rows_all = np.empty(n_total, dtype=np.int64)
        near = self.cameras[0].near
        far = self.cameras[0].far
        for view in np.unique(view_idx):
            count = int((view_idx == view).sum())
            cam = self.cameras[view]
            image = self.images[view]
            ox = rng.integers(0, cam.width - t + 1, size=count)
            oy = rng.integers(0, cam.height - t + 1, size=count)
            cols = (ox[:, None] + self._tile_dx[None, :]).reshape(-1)
            rows = (oy[:, None] + self._tile_dy[None, :]).reshape(-1)
            bundle = cam.rays_for_pixels(cols, rows)
            mask = pixel_view == view
            origins[mask] = bundle.origins
            directions[mask] = bundle.directions
            targets[mask] = image[rows, cols]
            cols_all[mask] = cols
            rows_all[mask] = rows
        batch = self.batch_pixels
        self.last_pixels = (pixel_view[:batch].copy(), cols_all[:batch],
                            rows_all[:batch])
        bundle = RayBundle(origins=origins[:batch],
                           directions=directions[:batch],
                           near=near, far=far)
        return bundle, targets[:batch]


class OccupancyTileScheduler(MortonTileScheduler):
    """Morton tile draw + stable reorder by first occupied cell per ray.

    After the tile draw, each ray is probed at ``n_probes`` deterministic
    midpoints between its near and far bounds; the 3-D Morton code of the
    first probe landing in an occupied cell of the shared
    :class:`OccupancyGrid` becomes the ray's sort key (rays that miss all
    occupied cells sort last).  The reorder is a stable permutation of the
    already-drawn batch — it consumes no RNG, so the pixel stream is
    identical to the plain Morton schedule — and groups rays whose *kept*
    samples will scatter into the same grid rows.

    Before the grid holds data (warm-up, or culling disabled) the schedule
    degrades to the plain Morton draw.
    """

    def __init__(self, cameras: Sequence[PinholeCamera], images: Sequence,
                 batch_pixels: int, tile_size: int = 8,
                 occupancy: Optional[OccupancyGrid] = None,
                 scene_bound: float = 1.0, n_probes: int = 16):
        super().__init__(cameras, images, batch_pixels, tile_size)
        if scene_bound <= 0:
            raise ValueError("scene_bound must be positive")
        if n_probes < 1:
            raise ValueError("n_probes must be >= 1")
        self.occupancy = occupancy
        self.scene_bound = float(scene_bound)
        self.n_probes = int(n_probes)
        #: Sorted ray keys of the most recent draw (None when no reorder ran).
        self.last_keys: Optional[np.ndarray] = None

    def sample_batch(self, rng: np.random.Generator):
        bundle, targets = super().sample_batch(rng)
        grid = self.occupancy
        if grid is None or not grid.has_data:
            self.last_keys = None
            return bundle, targets
        probes = ray_probe_points(bundle, self.n_probes)
        probes_unit = normalize_points_to_unit_cube(probes, self.scene_bound)
        found, ix, iy, iz = grid.first_occupied_cells(
            probes_unit, bundle.n_rays, self.n_probes)
        keys = morton_encode_3d(ix, iy, iz)
        keys[~found] = _NO_HIT_KEY
        order = np.argsort(keys, kind="stable")
        self.last_keys = keys[order]
        views, cols, rows = self.last_pixels
        self.last_pixels = (views[order], cols[order], rows[order])
        bundle = RayBundle(origins=bundle.origins[order],
                           directions=bundle.directions[order],
                           near=bundle.near, far=bundle.far)
        return bundle, targets[order]


def make_scheduler(schedule: str, cameras: Sequence[PinholeCamera],
                   images: Sequence, batch_pixels: int, *,
                   tile_size: int = 8,
                   occupancy: Optional[OccupancyGrid] = None,
                   scene_bound: float = 1.0,
                   n_probes: int = 16) -> RayScheduler:
    """Build the scheduler named by ``Instant3DConfig.ray_schedule``.

    ``occupancy``/``scene_bound``/``n_probes`` only matter for the
    ``"occupancy"`` schedule; passing ``occupancy=None`` there (e.g. culling
    disabled) degrades it to the plain Morton draw.
    """
    if schedule == "uniform":
        return UniformScheduler(cameras, images, batch_pixels)
    if schedule == "morton":
        return MortonTileScheduler(cameras, images, batch_pixels, tile_size)
    if schedule == "occupancy":
        return OccupancyTileScheduler(cameras, images, batch_pixels, tile_size,
                                      occupancy=occupancy,
                                      scene_bound=scene_bound,
                                      n_probes=n_probes)
    raise ValueError(
        f"unknown ray schedule {schedule!r}; expected one of {RAY_SCHEDULES}")
