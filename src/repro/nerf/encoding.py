"""Input encodings: sinusoidal positional encoding and spherical harmonics.

The vanilla-NeRF baseline encodes 3-D positions and view directions with the
sinusoidal positional encoding of Mildenhall et al.; the Instant-NGP-style
models encode positions with the hash grid (:mod:`repro.grid`) and view
directions with a low-order spherical-harmonics basis, matching the reference
implementation.
"""

from __future__ import annotations

import numpy as np

from repro.utils.workspace import arena_buffer


def positional_encoding(x: np.ndarray, n_frequencies: int,
                        include_input: bool = True) -> np.ndarray:
    """Sinusoidal positional encoding ``[x, sin(2^i x), cos(2^i x)]``.

    ``x`` has shape ``(N, D)``; the output has shape
    ``(N, D * (include_input + 2 * n_frequencies))``.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"x must be 2-D, got shape {x.shape}")
    if n_frequencies < 0:
        raise ValueError("n_frequencies must be >= 0")
    features = [x] if include_input else []
    for i in range(n_frequencies):
        freq = (2.0 ** i) * np.pi
        features.append(np.sin(freq * x))
        features.append(np.cos(freq * x))
    if not features:
        return np.empty((x.shape[0], 0))
    return np.concatenate(features, axis=1).astype(np.float32)


def positional_encoding_dim(input_dim: int, n_frequencies: int,
                            include_input: bool = True) -> int:
    """Output dimensionality of :func:`positional_encoding`."""
    return input_dim * ((1 if include_input else 0) + 2 * n_frequencies)


def spherical_harmonics_encoding(dirs: np.ndarray, degree: int = 3,
                                 dtype=np.float64,
                                 arena=None) -> np.ndarray:
    """Real spherical-harmonics basis evaluated at unit directions.

    Supports degrees 1-4 (1, 4, 9 or 16 output features), the same options
    as tiny-cuda-nn's ``SphericalHarmonics`` encoding used by Instant-NGP for
    view directions.  ``dtype`` selects the evaluation precision (float64,
    the default, is the bit-exact reference); the returned basis is float32
    under both, matching the MLP input dtype.  ``arena`` supplies the
    normalised-direction and output buffers when given.
    """
    if degree not in (1, 2, 3, 4):
        raise ValueError("degree must be in {1, 2, 3, 4}")
    dirs = np.asarray(dirs, dtype=dtype)
    if dirs.ndim != 2 or dirs.shape[1] != 3:
        raise ValueError(f"dirs must have shape (N, 3), got {dirs.shape}")
    norm = np.linalg.norm(dirs, axis=1, keepdims=True)
    np.maximum(norm, 1e-12, out=norm)
    d = arena_buffer(arena, "sh/d", dirs.shape, dtype)
    np.divide(dirs, norm, out=d)
    x, y, z = d[:, 0], d[:, 1], d[:, 2]
    n = dirs.shape[0]
    out = arena_buffer(arena, "sh/out", (n, degree * degree), dtype)
    out[:, 0] = 0.28209479177387814                    # l=0
    if degree > 1:
        out[:, 1] = -0.48860251190291987 * y           # l=1
        out[:, 2] = 0.48860251190291987 * z
        out[:, 3] = -0.48860251190291987 * x
    if degree > 2:
        xy, yz, xz = x * y, y * z, x * z
        x2, y2, z2 = x * x, y * y, z * z
        out[:, 4] = 1.0925484305920792 * xy            # l=2
        out[:, 5] = -1.0925484305920792 * yz
        out[:, 6] = 0.31539156525252005 * (3.0 * z2 - 1.0)
        out[:, 7] = -1.0925484305920792 * xz
        out[:, 8] = 0.5462742152960396 * (x2 - y2)
    if degree > 3:
        x2, y2, z2 = x * x, y * y, z * z
        out[:, 9] = -0.5900435899266435 * y * (3.0 * x2 - y2)      # l=3
        out[:, 10] = 2.890611442640554 * x * y * z
        out[:, 11] = -0.4570457994644658 * y * (5.0 * z2 - 1.0)
        out[:, 12] = 0.3731763325901154 * z * (5.0 * z2 - 3.0)
        out[:, 13] = -0.4570457994644658 * x * (5.0 * z2 - 1.0)
        out[:, 14] = 1.445305721320277 * z * (x2 - y2)
        out[:, 15] = -0.5900435899266435 * x * (x2 - 3.0 * y2)
    if out.dtype == np.float32:
        return out
    out32 = arena_buffer(arena, "sh/out32", out.shape, np.float32)
    np.copyto(out32, out, casting="same_kind")
    return out32


def spherical_harmonics_dim(degree: int) -> int:
    """Number of features produced by :func:`spherical_harmonics_encoding`."""
    if degree not in (1, 2, 3, 4):
        raise ValueError("degree must be in {1, 2, 3, 4}")
    return degree * degree
