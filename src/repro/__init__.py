"""repro — a reproduction of Instant-3D (Li et al., ISCA 2023).

Instant-3D is an algorithm–hardware co-design framework for *instant*
on-device NeRF training.  This library rebuilds the full system in Python:

* :mod:`repro.core` — the Instant-3D algorithm: the embedding grid decomposed
  into density and color branches with different grid sizes (``S_D : S_C``)
  and update frequencies (``F_D : F_C``).
* :mod:`repro.grid`, :mod:`repro.nn`, :mod:`repro.nerf`,
  :mod:`repro.datasets`, :mod:`repro.training` — the NeRF training substrate
  (multiresolution hash grids, small MLPs, volume rendering, procedural
  scene suites standing in for NeRF-Synthetic / SILVR / ScanNet).
* :mod:`repro.accelerator` — a cycle-level simulator of the Instant-3D
  accelerator (FRM, BUM, multi-core fusion) plus analytic models of the
  Jetson-class baseline devices.
* :mod:`repro.analysis` — the memory-access-pattern and runtime-breakdown
  analyses behind the paper's motivating figures.
* :mod:`repro.io` — versioned single-file checkpointing used for
  interruptible trainers and :class:`~repro.training.SceneFleet`'s
  preemptible scheduling (checkpoint/resume, scene eviction).

Quickstart::

    from repro import Instant3DConfig, train_scene
    from repro.datasets import nerf_synthetic_like

    dataset = nerf_synthetic_like(["lego"], image_size=32)[0]
    result = train_scene(dataset, Instant3DConfig.instant_3d(), n_iterations=60)
    print(result.rgb_psnr)
"""

from repro.core import (
    DecoupledGridEncoder,
    DecoupledRadianceField,
    Instant3DConfig,
)
from repro.training import (
    FleetResult,
    SceneFleet,
    Trainer,
    TrainingResult,
    WorkloadScale,
    build_iteration_workload,
    profile_iteration,
    evaluate_model,
    train_fleet,
    train_scene,
)

__version__ = "1.3.0"

__all__ = [
    "Instant3DConfig",
    "DecoupledRadianceField",
    "DecoupledGridEncoder",
    "Trainer",
    "TrainingResult",
    "train_scene",
    "evaluate_model",
    "WorkloadScale",
    "build_iteration_workload",
    "profile_iteration",
    "FleetResult",
    "SceneFleet",
    "train_fleet",
    "__version__",
]
