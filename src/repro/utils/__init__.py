"""Shared utilities: 3-D math helpers, deterministic RNG, table formatting."""

from repro.utils.math3d import (
    normalize,
    look_at_pose,
    spherical_pose,
    rotation_x,
    rotation_y,
    rotation_z,
    transform_points,
    transform_directions,
)
from repro.utils.seeding import new_rng, derive_rng
from repro.utils.tables import format_table
from repro.utils.precision import FLOAT32, FLOAT64, PrecisionPolicy, resolve_policy
from repro.utils.workspace import WorkspaceArena

__all__ = [
    "FLOAT32",
    "FLOAT64",
    "PrecisionPolicy",
    "resolve_policy",
    "WorkspaceArena",
    "normalize",
    "look_at_pose",
    "spherical_pose",
    "rotation_x",
    "rotation_y",
    "rotation_z",
    "transform_points",
    "transform_directions",
    "new_rng",
    "derive_rng",
    "format_table",
]
