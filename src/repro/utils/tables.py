"""Plain-text table formatting for benchmark output.

The benchmark harness prints the same rows/series the paper's tables and
figures report.  ``format_table`` renders them as aligned ASCII so the output
is readable both in a terminal and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def _to_str(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}" if abs(value) < 1000 else f"{value:,.1f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_to_str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
