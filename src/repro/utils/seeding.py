"""Deterministic random-number-generator helpers.

Every stochastic component in the library (parameter init, pixel sampling,
stratified ray sampling, scene jitter) receives an explicit
``numpy.random.Generator``.  These helpers build generators from integer
seeds and derive independent child generators from string keys so that runs
are reproducible and sub-systems do not share RNG state accidentally.
"""

from __future__ import annotations

import copy
import hashlib
from typing import Any, Dict

import numpy as np


def new_rng(seed: int = 0) -> np.random.Generator:
    """Create a fresh ``numpy`` Generator from an integer seed."""
    return np.random.default_rng(seed)


def derive_seed(parent_seed: int, key: str) -> int:
    """Derive an independent integer child seed from a parent seed and a key.

    Useful when a component (e.g. :class:`~repro.nerf.occupancy.OccupancyGrid`)
    wants to own its generator but must stay decorrelated from its siblings.
    """
    digest = hashlib.sha256(f"{parent_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(parent_seed: int, key: str) -> np.random.Generator:
    """Derive an independent generator from a parent seed and a string key.

    The key is hashed so that e.g. ``derive_rng(0, "pixels")`` and
    ``derive_rng(0, "weights")`` produce decorrelated streams while remaining
    fully deterministic across runs and platforms.
    """
    return np.random.default_rng(derive_seed(parent_seed, key))


def get_rng_state(rng: np.random.Generator) -> Dict[str, Any]:
    """Snapshot a generator's bit-generator state as a JSON-serialisable dict.

    The state of numpy's default PCG64 bit generator is a plain nested dict
    of strings and (arbitrary-precision) integers, so it round-trips through
    the checkpoint manifest exactly — restoring it resumes the stream
    bit-identically, which the interrupt/resume differential tests rely on.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_rng_state(rng: np.random.Generator, state: Dict[str, Any]) -> None:
    """Restore a generator's bit-generator state captured by :func:`get_rng_state`."""
    rng.bit_generator.state = copy.deepcopy(state)
