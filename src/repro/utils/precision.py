"""The unified compute-precision policy of the training stack.

The accelerator the paper builds wins much of its speed from narrow
datapaths: FP16 embedding storage and reduced-precision arithmetic on the
grid-interpolation and MLP cores.  The Python reproduction mirrors that with
a single :class:`PrecisionPolicy` that every hot layer consults for its
*compute* dtype — the trilinear weight planes of the fused grid engine, the
volume renderer's compositing maths, ray sampling, the loss, and the
optimiser updates.

Two policies exist:

* ``float64`` — the **bit-exact reference path**.  This is the default and
  reproduces the pre-policy numerics exactly (every differential test and
  frozen trace is anchored to it).
* ``float32`` — the **fast path**.  All batch-proportional arithmetic runs
  in single precision, roughly halving memory traffic on the hot loop; the
  throughput benchmark documents the measured speedup and PSNR tolerance.

Parameter *storage* is float32 under both policies (mirroring the FP16/FP32
mixed precision of the reference CUDA implementation), as is the
``np.bincount``-based backward scatter of the grid engine, which accumulates
in float64 under both policies because ``np.bincount`` only sums float64
weights — feeding it float64 directly keeps the reduction dtype-stable
instead of paying a hidden internal upcast.

Random draws are policy-independent: jitter and probe points are always
drawn from the generator as float64 (the exact draws of the reference path)
and cast to the compute dtype afterwards, so a float32 run differs from its
float64 twin only by arithmetic precision — never by RNG stream divergence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

#: Names accepted by :func:`resolve_policy` / ``Instant3DConfig.compute_dtype``.
PRECISION_NAMES = ("float32", "float64")


@dataclass(frozen=True)
class PrecisionPolicy:
    """Selects the compute dtype of every batch-proportional hot-path array.

    Attributes
    ----------
    name:
        ``"float32"`` or ``"float64"``.
    """

    name: str = "float64"

    def __post_init__(self) -> None:
        if self.name not in PRECISION_NAMES:
            raise ValueError(
                f"compute dtype must be one of {PRECISION_NAMES}, got {self.name!r}")

    @property
    def dtype(self) -> np.dtype:
        """The numpy compute dtype (float32 or float64)."""
        return np.dtype(self.name)

    @property
    def complex_dtype(self) -> np.dtype:
        """Complex dtype whose components match :attr:`dtype` (the fused grid
        engine's F == 2 fast path accumulates feature pairs as one complex)."""
        return np.dtype(np.complex64 if self.name == "float32" else np.complex128)

    @property
    def is_reference(self) -> bool:
        """True for the bit-exact float64 reference policy."""
        return self.name == "float64"

    @property
    def itemsize(self) -> int:
        return self.dtype.itemsize

    def asarray(self, x, backend=None) -> np.ndarray:
        """``asarray`` at the compute dtype (no copy when already there).

        With a ``backend`` (duck-typed — precision stays import-free of
        :mod:`repro.backend` to avoid cycles) the conversion runs on that
        backend, so non-numpy arrays stay native instead of round-tripping
        through the host.
        """
        if backend is not None:
            return backend.asarray(x, self.dtype)
        return np.asarray(x, dtype=self.dtype)


#: The two singleton policies.
FLOAT32 = PrecisionPolicy("float32")
FLOAT64 = PrecisionPolicy("float64")

PolicyLike = Optional[Union[PrecisionPolicy, str, np.dtype, type]]


def resolve_policy(policy: PolicyLike) -> PrecisionPolicy:
    """Normalise ``None`` / name / dtype / policy into a :class:`PrecisionPolicy`.

    ``None`` resolves to the float64 reference policy, so every component
    that is constructed without an explicit policy keeps the pre-policy
    numerics bit-exactly.
    """
    if policy is None:
        return FLOAT64
    if isinstance(policy, PrecisionPolicy):
        return policy
    name = np.dtype(policy).name if not isinstance(policy, str) else policy
    if name == "float32":
        return FLOAT32
    if name == "float64":
        return FLOAT64
    raise ValueError(
        f"compute dtype must be one of {PRECISION_NAMES}, got {policy!r}")
