"""Workspace arena: preallocated, reusable buffers for per-iteration temporaries.

A steady-state training iteration touches the same family of large arrays
every step — corner address/weight planes of the grid engine, MLP
activations, dense sigma/rgb compositing planes, renderer gradients,
optimiser scratch.  Allocating them fresh each iteration costs tens of
megabytes of allocator traffic per step and evicts the cache-resident
working set.  :class:`WorkspaceArena` extends the ``_concat_table`` reuse
trick of the fused grid engine to the whole loop: each call site *names* its
buffer, the arena keeps one growable flat backing allocation per
``(name, dtype)`` and hands back a correctly shaped view.

Semantics
---------
* A buffer named ``n`` is **overwritten by the next request for ``n``** —
  call sites therefore use globally unique names (the owning module's name
  is the prefix) and a buffer is only assumed valid until that site runs
  again.  This matches the natural lifetime of per-iteration temporaries
  (forward caches live exactly until the matching backward).
* Backing allocations only grow (geometrically), so after warm-up — once
  the largest batch shape has been seen — every request is a **hit**:
  zero allocations on the steady-state hot loop.  :attr:`hits` /
  :attr:`misses` make that measurable; the throughput benchmark asserts a
  zero steady-state miss rate and reports the hit rate.
* Components accept ``arena=None`` and then allocate fresh arrays exactly
  as before — direct (non-trainer) use keeps allocation semantics
  unchanged.  The :class:`~repro.training.trainer.Trainer` owns one arena
  per run and threads it through the pipeline, model, renderer and
  optimisers.
"""

from __future__ import annotations

from math import prod
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = ["WorkspaceArena", "arena_buffer", "arena_zeros"]


class WorkspaceArena:
    """Shape-keyed pool of reusable scratch buffers (one per call-site name).

    ``allocator`` is any object with ``empty(shape, dtype)`` — in practice
    an :class:`~repro.backend.base.ArrayBackend` (see ``make_arena``), so
    backing buffers live on the owning backend's device/dtype domain.  The
    parameter is duck-typed rather than imported to keep this module free
    of backend dependencies; ``None`` keeps plain host allocation.
    """

    def __init__(self, allocator=None) -> None:
        self._backing: Dict[Tuple[str, str], np.ndarray] = {}
        self.allocator = allocator
        self.hits = 0
        self.misses = 0

    # -- allocation ---------------------------------------------------------
    def buffer(self, name: str, shape, dtype) -> np.ndarray:
        """A writable contiguous array of ``shape``/``dtype`` for site ``name``.

        Contents are **uninitialised** (they hold whatever the site wrote
        last time).  The view aliases the arena's backing store: it is valid
        until the same ``name`` is requested again.
        """
        dt = np.dtype(dtype)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        size = prod(shape) if shape else 1
        key = (name, dt.str)
        backing = self._backing.get(key)
        if backing is None or backing.size < size:
            grown = size if backing is None else max(size, 2 * backing.size)
            if self.allocator is not None:
                backing = self.allocator.empty((grown,), dt)
            else:
                backing = np.empty(grown, dtype=dt)
            self._backing[key] = backing
            self.misses += 1
        else:
            self.hits += 1
        return backing[:size].reshape(shape)

    def zeros(self, name: str, shape, dtype) -> np.ndarray:
        """Like :meth:`buffer` but cleared to zero."""
        out = self.buffer(name, shape, dtype)
        out.fill(0)
        return out

    # -- accounting ---------------------------------------------------------
    @property
    def n_buffers(self) -> int:
        return len(self._backing)

    @property
    def total_bytes(self) -> int:
        """Bytes of backing storage currently held by the arena."""
        return sum(b.nbytes for b in self._backing.values())

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served without allocating (1.0 = steady state)."""
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters (backing buffers are kept)."""
        self.hits = 0
        self.misses = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WorkspaceArena(buffers={self.n_buffers}, "
                f"bytes={self.total_bytes}, hits={self.hits}, "
                f"misses={self.misses})")


def arena_buffer(arena: Optional[WorkspaceArena], name: str, shape,
                 dtype, backend=None) -> np.ndarray:
    """Arena buffer when an arena is attached, fresh allocation otherwise.

    ``backend`` (duck-typed ``empty(shape, dtype)`` provider) supplies the
    arena-less allocation so direct component use stays on the caller's
    backend; ``None`` falls back to host ``np.empty``.
    """
    if arena is None:
        if backend is not None:
            return backend.empty(shape, dtype)
        return np.empty(shape, dtype=dtype)
    return arena.buffer(name, shape, dtype)


def arena_zeros(arena: Optional[WorkspaceArena], name: str, shape,
                dtype, backend=None) -> np.ndarray:
    """Arena zeros when an arena is attached, fresh allocation otherwise."""
    if arena is None:
        if backend is not None:
            return backend.zeros(shape, dtype)
        return np.zeros(shape, dtype=dtype)
    return arena.zeros(name, shape, dtype)
