"""Vectorized Morton (Z-order) curve encoding.

Morton codes interleave the bits of integer coordinates so that sorting by
code visits points along a space-filling Z curve: coordinates that are close
in space end up close in the sorted order.  The schedulers in
``repro.nerf.scheduling`` use 2-D codes to enumerate pixels inside a tile and
3-D codes to order rays/samples by the grid voxel they touch, which is what
raises the address locality seen by the BackPropUpdateMerger model.

All helpers accept integer arrays (any shape) and return ``int64`` codes of
the same shape.  2-D codes support coordinates up to 32 bits, 3-D codes up to
21 bits per axis — far beyond any image or grid resolution used here.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "morton_encode_2d",
    "morton_decode_2d",
    "morton_encode_3d",
]


def _part_1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 32 bits of ``x`` so they occupy even bit positions."""
    x = x.astype(np.uint64) & np.uint64(0xFFFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def _compact_1by1(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part_1by1`: gather even bit positions."""
    x = x.astype(np.uint64) & np.uint64(0x5555555555555555)
    x = (x | (x >> np.uint64(1))) & np.uint64(0x3333333333333333)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x00000000FFFFFFFF)
    return x


def _part_1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of ``x`` so they occupy every third position."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x001F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x001F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def morton_encode_2d(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Interleave ``(x, y)`` into a 2-D Z-order code (x in the even bits)."""
    code = _part_1by1(np.asarray(x)) | (_part_1by1(np.asarray(y)) << np.uint64(1))
    return code.astype(np.int64)


def morton_decode_2d(code: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`morton_encode_2d`; returns ``(x, y)`` as ``int64``."""
    code = np.asarray(code).astype(np.uint64)
    x = _compact_1by1(code)
    y = _compact_1by1(code >> np.uint64(1))
    return x.astype(np.int64), y.astype(np.int64)


def morton_encode_3d(x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
    """Interleave ``(x, y, z)`` into a 3-D Z-order code (x in the low bit)."""
    code = (_part_1by2(np.asarray(x))
            | (_part_1by2(np.asarray(y)) << np.uint64(1))
            | (_part_1by2(np.asarray(z)) << np.uint64(2)))
    return code.astype(np.int64)
