"""Small 3-D math helpers used by the camera/ray substrate.

All functions operate on NumPy arrays and use the OpenGL-style convention
used by the NeRF-Synthetic dataset: camera looks down its local ``-z`` axis,
``+x`` is right and ``+y`` is up.  Poses are 4x4 camera-to-world matrices.
"""

from __future__ import annotations

import numpy as np


def normalize(v: np.ndarray, axis: int = -1, eps: float = 1e-12) -> np.ndarray:
    """Return ``v`` scaled to unit length along ``axis``.

    Zero vectors are returned unchanged (guarded by ``eps``) rather than
    producing NaNs, which keeps downstream ray math well defined.
    """
    v = np.asarray(v, dtype=np.float64)
    norm = np.linalg.norm(v, axis=axis, keepdims=True)
    return v / np.maximum(norm, eps)


def rotation_x(angle: float) -> np.ndarray:
    """4x4 homogeneous rotation about the x axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    m = np.eye(4)
    m[1, 1], m[1, 2] = c, -s
    m[2, 1], m[2, 2] = s, c
    return m


def rotation_y(angle: float) -> np.ndarray:
    """4x4 homogeneous rotation about the y axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    m = np.eye(4)
    m[0, 0], m[0, 2] = c, s
    m[2, 0], m[2, 2] = -s, c
    return m


def rotation_z(angle: float) -> np.ndarray:
    """4x4 homogeneous rotation about the z axis by ``angle`` radians."""
    c, s = np.cos(angle), np.sin(angle)
    m = np.eye(4)
    m[0, 0], m[0, 1] = c, -s
    m[1, 0], m[1, 1] = s, c
    return m


def look_at_pose(eye: np.ndarray, target: np.ndarray, up=(0.0, 0.0, 1.0)) -> np.ndarray:
    """Build a 4x4 camera-to-world pose for a camera at ``eye`` looking at ``target``.

    The returned pose maps camera-space points (camera looks along -z) into
    world space.  ``up`` is the approximate world-space up direction used to
    resolve the camera roll.
    """
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    forward = normalize(target - eye)          # camera -z in world space
    right = normalize(np.cross(forward, np.asarray(up, dtype=np.float64)))
    true_up = np.cross(right, forward)
    pose = np.eye(4)
    pose[:3, 0] = right
    pose[:3, 1] = true_up
    pose[:3, 2] = -forward
    pose[:3, 3] = eye
    return pose


def spherical_pose(radius: float, theta: float, phi: float,
                   target=(0.0, 0.0, 0.0), up=(0.0, 0.0, 1.0)) -> np.ndarray:
    """Camera-to-world pose on a sphere around ``target``.

    ``theta`` is the azimuth angle in the x-y plane (radians) and ``phi`` the
    elevation angle measured from the x-y plane towards +z.  This matches the
    inward-facing camera rigs used by the NeRF-Synthetic dataset.
    """
    target = np.asarray(target, dtype=np.float64)
    eye = target + radius * np.array([
        np.cos(phi) * np.cos(theta),
        np.cos(phi) * np.sin(theta),
        np.sin(phi),
    ])
    return look_at_pose(eye, target, up=up)


def transform_points(pose: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 homogeneous transform to an (N, 3) array of points."""
    points = np.asarray(points, dtype=np.float64)
    return points @ pose[:3, :3].T + pose[:3, 3]


def transform_directions(pose: np.ndarray, dirs: np.ndarray) -> np.ndarray:
    """Apply only the rotational part of a 4x4 transform to direction vectors."""
    dirs = np.asarray(dirs, dtype=np.float64)
    return dirs @ pose[:3, :3].T
