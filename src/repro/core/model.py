"""The Instant-3D radiance-field model (decoupled density and color branches).

The model realises Fig. 6 of the paper:

* density branch — density hash grid (size ``S_D``) → small MLP → truncated
  exponential → volumetric density ``sigma``;
* color branch — color hash grid (size ``S_C``) concatenated with a
  spherical-harmonics encoding of the view direction → small MLP → sigmoid →
  RGB color.

With ``color_size_ratio = 1`` and both update frequencies at 1 the model is
the Instant-NGP baseline configuration that the paper's Tables 1/2 label
"1:1 [24]".  ``backward`` takes per-branch update flags so the trainer can
realise the ``F_D : F_C`` update-frequency schedule by skipping the color
branch's back-propagation on non-update iterations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.config import Instant3DConfig
from repro.core.decoupled_grid import DecoupledGridEncoder
from repro.nerf.encoding import spherical_harmonics_dim, spherical_harmonics_encoding
from repro.nn.activations import Sigmoid, TruncatedExp
from repro.nn.mlp import MLP
from repro.nn.parameter import Parameter
from repro.utils.seeding import derive_rng
from repro.utils.workspace import WorkspaceArena, arena_buffer


@dataclass
class QueryCache:
    """Bookkeeping of one :meth:`DecoupledRadianceField.query` call."""

    n_points: int
    density_embedding_dim: int
    color_embedding_dim: int


class DecoupledRadianceField:
    """Queryable/trainable radiance field with decoupled color/density branches."""

    def __init__(self, config: Instant3DConfig, seed: int = 0):
        self.config = config
        self.backend = config.array_backend
        self.encoder = DecoupledGridEncoder(config, seed=seed)
        mlp_rng = derive_rng(seed, "mlp_heads")
        hidden = [config.mlp_hidden_width] * config.mlp_hidden_layers
        self.density_mlp = MLP(
            in_features=self.encoder.density_grid.n_output_features,
            hidden_features=hidden,
            out_features=1,
            rng=mlp_rng,
            name="density_mlp",
            backend=self.backend,
        )
        self._sh_dim = spherical_harmonics_dim(config.sh_degree)
        self.color_mlp = MLP(
            in_features=self.encoder.color_grid.n_output_features + self._sh_dim,
            hidden_features=hidden,
            out_features=3,
            rng=mlp_rng,
            name="color_mlp",
            backend=self.backend,
        )
        self.density_activation = TruncatedExp()
        self.color_activation = Sigmoid()
        self.density_activation.set_backend(self.backend)
        self.color_activation.set_backend(self.backend)
        self._last_cache: Optional[QueryCache] = None
        # Compute-precision policy from the config: the grids got it at
        # construction; MLP activations pick it up here (Linear compute is
        # float32 under both policies — storage precision).
        self.policy = config.precision_policy
        self.density_mlp.set_policy(self.policy)
        self.color_mlp.set_policy(self.policy)
        self.density_activation.set_policy(self.policy)
        self.color_activation.set_policy(self.policy)
        self.arena: Optional[WorkspaceArena] = None
        # Parameter lists are fixed after construction; build them once
        # instead of re-concatenating on every zero_grad/step.
        self._density_params: List[Parameter] = (
            self.encoder.density_parameters() + self.density_mlp.parameters())
        self._color_params: List[Parameter] = (
            self.encoder.color_parameters() + self.color_mlp.parameters())
        self._params: List[Parameter] = (
            self._density_params + self._color_params)
        self._n_parameters = sum(p.size for p in self._params)

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        """Thread a workspace arena through grids, MLP heads and activations.

        Attached by the trainer so steady-state queries reuse one set of
        buffers; pass ``None`` to restore fresh-allocation semantics.
        """
        self.arena = arena
        self.encoder.set_arena(arena)
        self.density_mlp.set_arena(arena)
        self.color_mlp.set_arena(arena)
        self.density_activation.set_arena(arena, "density_act")
        self.color_activation.set_arena(arena, "color_act")

    # -- forward ------------------------------------------------------------------
    def query(self, points_unit: np.ndarray, dirs: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate ``(sigma, rgb)`` for points in ``[0, 1]^3`` and unit directions.

        This is Step ❸ of the training pipeline: Step ❸-① is the two grid
        interpolations, Step ❸-② the two small MLPs.
        """
        dtype = self.policy.dtype
        points_unit = self.backend.asarray(points_unit, dtype=dtype)
        dirs = self.backend.asarray(dirs, dtype=dtype)
        if points_unit.shape != dirs.shape or points_unit.shape[-1] != 3:
            raise ValueError("points_unit and dirs must both have shape (N, 3)")

        density_emb = self.encoder.encode_density(points_unit)
        raw_sigma = self.density_mlp.forward(density_emb)
        sigma = self.density_activation.forward(raw_sigma)[:, 0]

        color_emb = self.encoder.encode_color(points_unit)
        dir_enc = spherical_harmonics_encoding(dirs, degree=self.config.sh_degree,
                                               dtype=dtype, arena=self.arena)
        color_in = arena_buffer(self.arena, "model/color_in",
                                (color_emb.shape[0],
                                 color_emb.shape[1] + dir_enc.shape[1]),
                                np.float32, backend=self.backend)
        color_in[:, :color_emb.shape[1]] = color_emb
        color_in[:, color_emb.shape[1]:] = dir_enc
        raw_rgb = self.color_mlp.forward(color_in)
        rgb = self.color_activation.forward(raw_rgb)

        self._last_cache = QueryCache(
            n_points=points_unit.shape[0],
            density_embedding_dim=density_emb.shape[1],
            color_embedding_dim=color_emb.shape[1],
        )
        return sigma, rgb

    def query_density(self, points_unit: np.ndarray) -> np.ndarray:
        """Evaluate ``sigma`` alone for points in ``[0, 1]^3``.

        Used by the occupancy grid's periodic refresh (only the density
        branch matters for culling) — roughly half the work of a full
        :meth:`query`.  It reuses the density branch's forward buffers, so it
        must not be called between a :meth:`query` and its :meth:`backward`.
        """
        points_unit = self.backend.asarray(points_unit, dtype=self.policy.dtype)
        if points_unit.ndim != 2 or points_unit.shape[-1] != 3:
            raise ValueError("points_unit must have shape (N, 3)")
        density_emb = self.encoder.encode_density(points_unit)
        raw_sigma = self.density_mlp.forward(density_emb)
        return self.density_activation.forward(raw_sigma)[:, 0]

    # -- backward -----------------------------------------------------------------
    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray,
                 update_density: bool = True, update_color: bool = True) -> None:
        """Back-propagate per-point output gradients into the branch parameters.

        ``update_density`` / ``update_color`` implement the paper's
        update-frequency decomposition: a branch whose flag is False skips its
        entire back-propagation (MLP and embedding grid), which is exactly the
        work the accelerator skips on non-update iterations.
        """
        if self._last_cache is None:
            raise RuntimeError("backward called before query")
        if update_color:
            grad_raw_rgb = self.color_activation.backward(
                np.asarray(grad_rgb, dtype=np.float32)
            )
            grad_color_in = self.color_mlp.backward(grad_raw_rgb)
            grad_color_emb = grad_color_in[:, : self._last_cache.color_embedding_dim]
            self.encoder.backward_color(grad_color_emb)
        if update_density:
            grad_raw_sigma = self.density_activation.backward(
                np.asarray(grad_sigma, dtype=np.float32)[:, None]
            )
            grad_density_emb = self.density_mlp.backward(grad_raw_sigma)
            self.encoder.backward_density(grad_density_emb)

    # -- parameters ---------------------------------------------------------------
    def density_parameters(self) -> List[Parameter]:
        """Parameters updated on density-branch update iterations (cached)."""
        return self._density_params

    def color_parameters(self) -> List[Parameter]:
        """Parameters updated on color-branch update iterations (cached)."""
        return self._color_params

    def parameters(self) -> List[Parameter]:
        """All trainable parameters (cached list — do not mutate)."""
        return self._params

    def zero_grad(self) -> None:
        for param in self._params:
            param.zero_grad()

    # -- serialisation ----------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of every trainable tensor in the field."""
        return {
            "encoder": self.encoder.state_dict(),
            "density_mlp": self.density_mlp.state_dict(),
            "color_mlp": self.color_mlp.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into a model built from the same config.

        Parameters are copied in place, so optimisers already bound to this
        model keep valid references.  Transient forward caches are untouched
        (they are rebuilt by the next :meth:`query`).
        """
        self.encoder.load_state_dict(state["encoder"])
        self.density_mlp.load_state_dict(state["density_mlp"])
        self.color_mlp.load_state_dict(state["color_mlp"])

    # -- workload accounting ---------------------------------------------------------
    def mlp_flops_per_point(self) -> int:
        """Forward FLOPs of the two MLP heads for a single point query."""
        return self.density_mlp.flops_per_sample + self.color_mlp.flops_per_sample

    def grid_accesses_per_point(self) -> Dict[str, int]:
        """Hash-table vertex reads per point query, per branch."""
        return self.encoder.accesses_per_point()

    def branch_storage_bytes(self) -> Dict[str, int]:
        """Hash-table storage per branch (selects the accelerator fusion mode)."""
        return self.encoder.branch_storage_bytes()

    @property
    def n_parameters(self) -> int:
        return self._n_parameters
