"""Per-branch update-frequency schedules (Sec. 3.3 of the paper).

A branch with update frequency ``F`` receives a gradient update in a fraction
``F`` of training iterations.  The paper realises ``F = 0.5`` by updating the
color grid every two iterations and notes the accelerator supports arbitrary
frequencies "by skipping one back-propagation process every 1/(1-F)
iterations"; :class:`UpdateSchedule` implements the equivalent rule that
works for any rational frequency: iteration ``i`` updates the branch iff the
integer count of scheduled updates increases between ``i`` and ``i+1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor


@dataclass(frozen=True)
class UpdateSchedule:
    """Deterministic schedule deciding whether a branch updates at an iteration."""

    frequency: float

    def __post_init__(self) -> None:
        if not (0.0 < self.frequency <= 1.0):
            raise ValueError("frequency must be in (0, 1]")

    def should_update(self, iteration: int) -> bool:
        """True if the branch receives a gradient update at ``iteration`` (0-based)."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        if self.frequency >= 1.0:
            return True
        return floor((iteration + 1) * self.frequency) > floor(iteration * self.frequency)

    def updates_in(self, n_iterations: int) -> int:
        """Number of update iterations among the first ``n_iterations``.

        Closed form: the per-iteration rule updates exactly when
        ``floor((i + 1) * F)`` increases, so the count over ``[0, n)``
        telescopes to ``floor(n * F)`` — O(1) instead of the O(n) loop
        (kept as :meth:`_updates_in_loop`, the property-test oracle).
        """
        if n_iterations < 0:
            raise ValueError("n_iterations must be non-negative")
        if self.frequency >= 1.0:
            return n_iterations
        return floor(n_iterations * self.frequency)

    def _updates_in_loop(self, n_iterations: int) -> int:
        """O(n) reference implementation of :meth:`updates_in` (test oracle)."""
        if n_iterations < 0:
            raise ValueError("n_iterations must be non-negative")
        return sum(self.should_update(i) for i in range(n_iterations))

    def update_fraction(self, n_iterations: int) -> float:
        """Empirical update fraction over ``n_iterations`` (→ ``frequency``)."""
        if n_iterations <= 0:
            return self.frequency
        return self.updates_in(n_iterations) / n_iterations


@dataclass(frozen=True)
class BranchSchedules:
    """The pair of schedules for the density and color branches."""

    density: UpdateSchedule
    color: UpdateSchedule

    @staticmethod
    def from_frequencies(density_freq: float, color_freq: float) -> "BranchSchedules":
        return BranchSchedules(
            density=UpdateSchedule(density_freq),
            color=UpdateSchedule(color_freq),
        )

    def updates_at(self, iteration: int):
        """Return ``(update_density, update_color)`` flags for an iteration."""
        return self.density.should_update(iteration), self.color.should_update(iteration)
