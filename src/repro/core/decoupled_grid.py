"""The decoupled density/color embedding grids (Sec. 3.2 of the paper).

Instant-NGP stores one multiresolution hash grid whose interpolated
embedding feeds a density MLP that in turn feeds the color MLP.  Instant-3D
*decomposes* that grid into a density grid and a color grid so that the two
feature types — which learn at different paces — can use different grid
sizes and update frequencies.  :class:`DecoupledGridEncoder` owns the two
:class:`~repro.grid.hash_encoding.MultiResHashGrid` instances and exposes the
per-branch storage/access accounting the accelerator simulator needs (the
hash-table size selects the accelerator's fusion mode).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.core.config import Instant3DConfig
from repro.grid.hash_encoding import GridAccessRecord, MultiResHashGrid
from repro.nn.parameter import Parameter
from repro.utils.seeding import derive_rng
from repro.utils.workspace import WorkspaceArena


class DecoupledGridEncoder:
    """A pair of hash grids: a full-size density grid and a scaled color grid.

    Both grids share the config's compute-precision policy; an optional
    workspace arena (threaded in by the trainer via :meth:`set_arena`) makes
    their query planes reusable across iterations.
    """

    def __init__(self, config: Instant3DConfig, seed: int = 0):
        self.config = config
        policy = config.precision_policy
        sparse_mode = config.grid_sparse_mode
        backend = config.array_backend
        self.backend = backend
        self.density_grid = MultiResHashGrid(
            config.density_grid_config,
            rng=derive_rng(seed, "density_grid"),
            name="density_grid",
            max_chunk_points=config.max_chunk_points,
            policy=policy,
            sparse_mode=sparse_mode,
            backend=backend,
        )
        self.color_grid = MultiResHashGrid(
            config.color_grid_config,
            rng=derive_rng(seed, "color_grid"),
            name="color_grid",
            max_chunk_points=config.max_chunk_points,
            policy=policy,
            sparse_mode=sparse_mode,
            backend=backend,
        )

    def set_arena(self, arena: Optional[WorkspaceArena]) -> None:
        """Attach a workspace arena to both branch grids."""
        self.density_grid.set_arena(arena)
        self.color_grid.set_arena(arena)

    # -- forward / backward -------------------------------------------------------
    def encode_density(self, points_unit: np.ndarray) -> np.ndarray:
        """Interpolate density-branch embeddings for points in ``[0, 1]^3``."""
        return self.density_grid.forward(points_unit)

    def encode_color(self, points_unit: np.ndarray) -> np.ndarray:
        """Interpolate color-branch embeddings for points in ``[0, 1]^3``."""
        return self.color_grid.forward(points_unit)

    def backward_density(self, grad_embeddings: np.ndarray) -> None:
        """Scatter density-embedding gradients into the density tables."""
        self.density_grid.backward(grad_embeddings)

    def backward_color(self, grad_embeddings: np.ndarray) -> None:
        """Scatter color-embedding gradients into the color tables."""
        self.color_grid.backward(grad_embeddings)

    # -- accounting ------------------------------------------------------------------
    def branch_storage_bytes(self) -> Dict[str, int]:
        """FP16 bytes of each branch's hash tables (drives fusion-mode choice)."""
        return {
            "density": self.density_grid.storage_bytes,
            "color": self.color_grid.storage_bytes,
        }

    def total_storage_bytes(self) -> int:
        return self.density_grid.storage_bytes + self.color_grid.storage_bytes

    def accesses_per_point(self) -> Dict[str, int]:
        """Vertex reads per queried point, per branch."""
        return {
            "density": self.density_grid.accesses_per_point(),
            "color": self.color_grid.accesses_per_point(),
        }

    def last_touched_rows(self) -> Dict[str, Optional[int]]:
        """Unique table rows touched by each branch's most recent backward
        (``None`` for a branch whose fused backward has not run)."""
        return {
            "density": self.density_grid.last_touched_rows,
            "color": self.color_grid.last_touched_rows,
        }

    def last_access_records(self) -> Dict[str, Optional[GridAccessRecord]]:
        """Access records of the most recent encode calls (for trace export)."""
        return {
            "density": self.density_grid.last_access,
            "color": self.color_grid.last_access,
        }

    def parameters(self) -> List[Parameter]:
        return self.density_grid.parameters() + self.color_grid.parameters()

    def density_parameters(self) -> List[Parameter]:
        return self.density_grid.parameters()

    def color_parameters(self) -> List[Parameter]:
        return self.color_grid.parameters()

    def zero_grad(self) -> None:
        self.density_grid.zero_grad()
        self.color_grid.zero_grad()

    # -- serialisation ------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """Serialisable snapshot of both branch grids."""
        return {
            "density_grid": self.density_grid.state_dict(),
            "color_grid": self.color_grid.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore :meth:`state_dict` into an identically configured encoder."""
        self.density_grid.load_state_dict(state["density_grid"])
        self.color_grid.load_state_dict(state["color_grid"])
