"""The coupled Instant-NGP reference model.

The paper's Tables 1/2 treat the "1:1 / 1:1" configuration of the decoupled
model as the Instant-NGP baseline, because once sizes and update frequencies
are equal the decomposition changes nothing about the training cost structure.
For completeness (and to validate that equivalence empirically), this module
implements the *architecturally* coupled Instant-NGP model: a single hash
grid whose interpolated embedding feeds a density MLP, whose hidden geometry
features — not a second grid — feed the color MLP together with the encoded
view direction.

:class:`CoupledInstantNGP` exposes the same ``query`` / ``backward`` /
``parameters`` interface as :class:`repro.core.model.DecoupledRadianceField`,
so it can be dropped into the trainer for side-by-side comparisons (see
``tests/test_coupled.py``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.core.config import Instant3DConfig
from repro.grid.hash_encoding import MultiResHashGrid
from repro.nerf.encoding import spherical_harmonics_dim, spherical_harmonics_encoding
from repro.nn.activations import Sigmoid, TruncatedExp
from repro.nn.mlp import MLP
from repro.nn.parameter import Parameter
from repro.utils.seeding import derive_rng


class CoupledInstantNGP:
    """Single-grid Instant-NGP radiance field (the architecture the paper starts from)."""

    def __init__(self, config: Instant3DConfig, seed: int = 0,
                 geo_feature_dim: int = 15):
        if geo_feature_dim < 1:
            raise ValueError("geo_feature_dim must be >= 1")
        self.config = config
        self.geo_feature_dim = int(geo_feature_dim)
        self.grid = MultiResHashGrid(
            config.density_grid_config,
            rng=derive_rng(seed, "coupled_grid"),
            name="coupled_grid",
        )
        mlp_rng = derive_rng(seed, "coupled_mlps")
        hidden = [config.mlp_hidden_width] * config.mlp_hidden_layers
        self.density_mlp = MLP(
            in_features=self.grid.n_output_features,
            hidden_features=hidden,
            out_features=1 + self.geo_feature_dim,
            rng=mlp_rng,
            name="coupled_density_mlp",
        )
        self._sh_dim = spherical_harmonics_dim(config.sh_degree)
        self.color_mlp = MLP(
            in_features=self.geo_feature_dim + self._sh_dim,
            hidden_features=hidden,
            out_features=3,
            rng=mlp_rng,
            name="coupled_color_mlp",
        )
        self.density_activation = TruncatedExp()
        self.color_activation = Sigmoid()
        self._n_points: Optional[int] = None

    # -- forward ----------------------------------------------------------------------
    def query(self, points_unit: np.ndarray, dirs: np.ndarray
              ) -> Tuple[np.ndarray, np.ndarray]:
        """Evaluate ``(sigma, rgb)``; the color head consumes the density head's features."""
        points_unit = np.asarray(points_unit, dtype=np.float64)
        dirs = np.asarray(dirs, dtype=np.float64)
        if points_unit.shape != dirs.shape or points_unit.shape[-1] != 3:
            raise ValueError("points_unit and dirs must both have shape (N, 3)")
        embedding = self.grid.forward(points_unit)
        trunk_out = self.density_mlp.forward(embedding)
        raw_sigma = trunk_out[:, :1]
        geo_features = trunk_out[:, 1:]
        sigma = self.density_activation.forward(raw_sigma)[:, 0]
        dir_enc = spherical_harmonics_encoding(dirs, degree=self.config.sh_degree)
        raw_rgb = self.color_mlp.forward(np.concatenate([geo_features, dir_enc], axis=1))
        rgb = self.color_activation.forward(raw_rgb)
        self._n_points = points_unit.shape[0]
        return sigma, rgb

    # -- backward ----------------------------------------------------------------------
    def backward(self, grad_sigma: np.ndarray, grad_rgb: np.ndarray,
                 update_density: bool = True, update_color: bool = True) -> None:
        """Back-propagate output gradients into the shared grid and both MLPs.

        Because the branches share the grid and the density trunk, the two
        update flags cannot decouple the work the way the Instant-3D model
        can: disabling either one only zeroes that head's contribution, which
        is exactly the limitation the paper's decomposition removes.
        """
        if self._n_points is None:
            raise RuntimeError("backward called before query")
        grad_trunk = np.zeros((self._n_points, 1 + self.geo_feature_dim), dtype=np.float32)
        if update_color:
            grad_raw_rgb = self.color_activation.backward(
                np.asarray(grad_rgb, dtype=np.float32))
            grad_color_in = self.color_mlp.backward(grad_raw_rgb)
            grad_trunk[:, 1:] = grad_color_in[:, : self.geo_feature_dim]
        if update_density:
            grad_trunk[:, :1] = self.density_activation.backward(
                np.asarray(grad_sigma, dtype=np.float32)[:, None])
        grad_embedding = self.density_mlp.backward(grad_trunk)
        self.grid.backward(grad_embedding.astype(np.float64))

    # -- bookkeeping -----------------------------------------------------------------------
    def density_parameters(self) -> List[Parameter]:
        """Parameters touched by density supervision (shared grid + trunk)."""
        return self.grid.parameters() + self.density_mlp.parameters()

    def color_parameters(self) -> List[Parameter]:
        return self.color_mlp.parameters()

    def parameters(self) -> List[Parameter]:
        return self.density_parameters() + self.color_parameters()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def grid_accesses_per_point(self) -> int:
        """Hash-table vertex reads per point (one shared grid)."""
        return self.grid.accesses_per_point()

    @property
    def n_parameters(self) -> int:
        return sum(p.size for p in self.parameters())
