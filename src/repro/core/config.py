"""Configuration of the Instant-3D model and training run."""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.backend import (ArrayBackend, available_backends,
                           default_backend_name, get_backend)
from repro.grid.hash_encoding import HashGridConfig
from repro.reliability.health import HealthPolicy
from repro.utils.precision import PRECISION_NAMES, PrecisionPolicy, resolve_policy

#: Valid ``ray_schedule`` values.  Kept as a local tuple (rather than
#: importing ``repro.nerf.scheduling.RAY_SCHEDULES``, which mirrors it)
#: because ``repro.core`` must not import ``repro.nerf`` at module level;
#: a test asserts the two stay in sync.
_RAY_SCHEDULES = ("uniform", "morton", "occupancy")


@dataclass(frozen=True)
class Instant3DConfig:
    """Hyper-parameters of an Instant-3D (or Instant-NGP-baseline) model.

    The two knobs the paper introduces are ``color_size_ratio``
    (``S_C / S_D``) and ``color_update_ratio`` (``F_C / F_D``); the density
    branch always uses the full grid size and updates every iteration, per
    the paper's design rule ``S_D > S_C`` and ``F_D > F_C``.

    Attributes
    ----------
    grid:
        Base hash-grid configuration shared by both branches; the color
        branch applies ``color_size_ratio`` on top of it.
    color_size_ratio:
        ``S_C : S_D`` expressed as a fraction.  1.0 reproduces the
        Instant-NGP baseline, 0.25 is the published Instant-3D setting.
        Values above 1 express the reversed ablation rows of Tab. 1/2 (a
        color grid larger than the density grid); the effective per-branch
        table budget is always capped at the base grid's full size.
    density_update_freq / color_update_freq:
        ``F_D`` and ``F_C`` as fractions of training iterations in which the
        corresponding grid receives a gradient update.  1.0 means every
        iteration, 0.5 every other iteration.
    mlp_hidden_width / mlp_hidden_layers:
        Size of the small density and color MLP heads (Instant-NGP uses
        3 layers of 64 units; the defaults are a scaled-down equivalent).
    sh_degree:
        Spherical-harmonics degree for the view-direction encoding.
    n_samples_per_ray / batch_pixels:
        Per-iteration workload of the training loop.
    learning_rate:
        Adam learning rate shared by grids and MLPs.
    culling_enabled:
        Route training and rendering through the occupancy-culled
        :class:`~repro.nerf.pipeline.RenderPipeline`: samples in cells the
        occupancy grid marks empty are *compacted away* before the radiance
        field is queried (forward and backward).  ``False`` (the default)
        keeps the dense path, which is bit-identical to the pre-culling
        trainer and retained for differential testing.
    occupancy_resolution / occupancy_update_every / occupancy_warmup_iterations:
        Shape and schedule of the occupancy grid: a ``resolution^3`` grid
        refreshed from the density branch every ``occupancy_update_every``
        iterations, starting at iteration ``occupancy_warmup_iterations``
        (Instant-NGP updates every 16 iterations after a short warm-up that
        lets the density branch carve out empty space first).
    occupancy_decay:
        Exponential-moving-maximum decay applied to the grid's per-cell
        density memory at every refresh.  Cells whose decayed memory falls
        below ``occupancy_threshold`` become cullable.
    occupancy_refresh_samples:
        Density-branch points probed per refresh.  Scale it with
        ``occupancy_resolution`` — coverage per refresh is roughly
        ``1 - exp(-samples / resolution^3)`` — or unsampled occupied cells
        decay toward the cull threshold between visits.
    occupancy_threshold:
        Density below which a cell counts as empty.  With typical sample
        spacings this bounds the per-sample alpha lost to culling at
        ``~threshold * delta``, keeping culled renders within fractions of a
        dB of dense ones.
    early_termination_tau:
        Optional transmittance floor for *rendering* (evaluation) rays:
        once a ray's transmittance falls below ``tau`` its remaining samples
        are skipped.  ``None`` disables early termination.  Training always
        marches full rays so gradients are unaffected.
    """

    grid: HashGridConfig = field(default_factory=HashGridConfig)
    color_size_ratio: float = 1.0
    density_update_freq: float = 1.0
    color_update_freq: float = 1.0
    mlp_hidden_width: int = 32
    mlp_hidden_layers: int = 2
    geo_feature_dim: int = 0
    sh_degree: int = 3
    n_samples_per_ray: int = 32
    batch_pixels: int = 256
    learning_rate: float = 1e-2
    white_background: bool = True
    #: Upper bound on points per fused grid-query chunk (None = unchunked);
    #: bounds the grid engine's transient working set for evaluation renders
    #: and large batches (the per-query access trace still scales with N).
    max_chunk_points: Optional[int] = None
    #: Occupancy-culling knobs (see the attribute docs above).  The defaults
    #: are the *reduced-scale* equivalent of Instant-NGP's 128^3 grid with
    #: 0.95 decay refreshed every 16 iterations over ~35k iterations: our
    #: runs are a few hundred iterations, so the grid is coarser (matching
    #: the 4096-point refresh coverage), refreshed more often and decayed
    #: faster so empty space is carved out within the run.
    culling_enabled: bool = False
    occupancy_resolution: int = 16
    occupancy_update_every: int = 8
    occupancy_warmup_iterations: int = 16
    occupancy_decay: float = 0.6
    occupancy_threshold: float = 0.01
    occupancy_refresh_samples: int = 4096
    early_termination_tau: Optional[float] = None
    #: Pixel-batch schedule of the training loop (see
    #: :mod:`repro.nerf.scheduling`).  ``"uniform"`` (the default) draws
    #: independent random pixels — bit-identical to previous releases.
    #: ``"morton"`` draws random ``tile_size x tile_size`` tiles and walks
    #: each tile's pixels along the 2-D Z curve; ``"occupancy"``
    #: additionally reorders the batch (stably, no extra RNG draws) by the
    #: 3-D Morton code of the first occupied cell each ray enters, grouping
    #: rays whose kept samples scatter into the same grid rows.  The tiled
    #: schedules raise the address locality seen by the accelerator's
    #: backward-update merger (the ``scheduling`` section of
    #: ``BENCH_throughput.json`` quantifies the merge-rate gain).
    ray_schedule: str = "uniform"
    #: Edge length of the square pixel tiles drawn by the ``"morton"`` and
    #: ``"occupancy"`` schedules (clamped to the smallest view dimension).
    tile_size: int = 8
    #: Sort each compacted batch's surviving samples by the Morton code of
    #: their finest-level grid voxel before the field query, so the backward
    #: scatter trace arrives near-sorted (maximal address locality for the
    #: update merger, cheaper COO dedupe).  Reordering the batch rows changes
    #: the reduction order of the MLP weight-gradient matmuls, so this knob
    #: is *not* bit-identical to the unsorted path (same-ulp-class results,
    #: like a backend change); it is therefore opt-in and excluded from the
    #: frozen-oracle differential tests.  Only affects the culled/compacted
    #: path — the dense default ignores it.
    address_sort: bool = False
    #: Compute dtype of every batch-proportional hot-path array (grid weight
    #: planes, renderer compositing, sampling, loss, optimiser scratch).
    #: ``"float64"`` is the bit-exact reference path every differential test
    #: anchors to; ``"float32"`` is the fast path (~half the memory traffic,
    #: see the ``precision`` section of ``BENCH_throughput.json``).  Random
    #: draws are shared between the two, so runs differ only by arithmetic
    #: precision.  Parameter storage is float32 under both.
    compute_dtype: str = "float64"
    #: Reuse one workspace arena of preallocated buffers for all
    #: per-iteration temporaries (query planes, MLP activations, compositing
    #: planes, optimiser scratch): steady-state train steps then perform
    #: zero large allocations.  Value-neutral — results are bit-identical
    #: with it on or off; ``False`` restores the pre-arena allocation
    #: behaviour (the reference execution profile the precision benchmark
    #: compares against).
    reuse_workspace: bool = True
    #: Make gradient sparsity first-class from backward scatter to optimiser
    #: step: the hash-grid backward emits compacted per-level
    #: ``(unique_addresses, accumulated_grads)`` COO pairs instead of dense
    #: gradient tables, and Adam applies touched-rows-only lazy updates to
    #: the tables (untouched rows' moment decay deferred via closed-form
    #: ``beta**k`` catch-up).  This mirrors the paper's backward-update
    #: -merging hardware, which only writes touched entries back to SRAM;
    #: per-step optimiser cost then scales with the touched rows (~8% of a
    #: culled batch's candidate set) instead of the table size.  Untouched
    #: rows receive no momentum-driven drift, so trajectories differ
    #: (deliberately) from the dense default in the same way the
    #: accelerator's updates differ from a dense-Adam GPU run.  ``False``
    #: (the default) keeps the dense path, bit-identical to previous
    #: releases.
    sparse_updates: bool = False
    #: With ``sparse_updates=True``: keep the *dense-representation oracle*
    #: instead of the COO pairs — dense gradient tables, with the optimiser
    #: deriving the touched rows from their non-zero entries and applying
    #: the identical lazy arithmetic.  Bit-identical to the COO path at
    #: dense cost; exists for differential testing.
    sparse_oracle: bool = False
    #: Name of the registered :class:`~repro.backend.ArrayBackend` executing
    #: every hot-path array primitive — grid gathers/scatters, MLP matmuls,
    #: renderer reductions, optimiser updates.  Defaults to the process
    #: default (the ``REPRO_BACKEND`` environment variable, else
    #: ``"numpy"``, the bit-exact float64-capable reference).  The in-repo
    #: ``"numpy_fused"`` backend batches the gather/scatter primitives and
    #: is bit-identical to the reference; ``"numba"`` registers only when
    #: numba is importable.
    backend: str = field(default_factory=default_backend_name)
    #: Numerical-health guardrails (see
    #: :class:`~repro.reliability.health.HealthPolicy`): divergence
    #: detection wired into every train step plus snapshot-and-rollback
    #: recovery.  ``None`` (the default) disables the watchdog entirely —
    #: the trainer then runs the exact pre-health code path, and guards-on
    #: runs that never trip are bit-identical to it.
    health: Optional[HealthPolicy] = None

    def __post_init__(self) -> None:
        if self.compute_dtype not in PRECISION_NAMES:
            raise ValueError(
                f"compute_dtype must be one of {PRECISION_NAMES}, "
                f"got {self.compute_dtype!r}")
        if self.backend not in available_backends():
            raise ValueError(
                f"backend must be one of {available_backends()}, "
                f"got {self.backend!r}")
        if self.max_chunk_points is not None and self.max_chunk_points < 1:
            raise ValueError("max_chunk_points must be >= 1 or None")
        if self.sparse_oracle and not self.sparse_updates:
            raise ValueError(
                "sparse_oracle=True requires sparse_updates=True (it selects "
                "the dense-representation oracle of the sparse-update mode)")
        if self.occupancy_resolution < 2:
            raise ValueError("occupancy_resolution must be >= 2")
        if self.occupancy_update_every < 1:
            raise ValueError("occupancy_update_every must be >= 1")
        if self.occupancy_warmup_iterations < 0:
            raise ValueError("occupancy_warmup_iterations must be >= 0")
        # Ordered comparisons alone let NaN through (NaN < 0 is False), so
        # the numeric knobs that feed straight into training arithmetic are
        # checked for finiteness explicitly — a NaN here would otherwise
        # surface hundreds of iterations later as a diverged run.
        if not (math.isfinite(self.learning_rate) and self.learning_rate > 0.0):
            raise ValueError(
                f"learning_rate must be finite and > 0, "
                f"got {self.learning_rate}")
        if not (0.0 < self.occupancy_decay < 1.0):
            raise ValueError("occupancy_decay must be in (0, 1)")
        if self.occupancy_refresh_samples < 1:
            raise ValueError("occupancy_refresh_samples must be >= 1")
        if not (math.isfinite(self.occupancy_threshold)
                and self.occupancy_threshold >= 0.0):
            raise ValueError(
                f"occupancy_threshold must be finite and non-negative, "
                f"got {self.occupancy_threshold}")
        if self.early_termination_tau is not None and not (
                math.isfinite(self.early_termination_tau)
                and 0.0 < self.early_termination_tau < 1.0):
            raise ValueError("early_termination_tau must be in (0, 1) or None")
        if self.ray_schedule not in _RAY_SCHEDULES:
            raise ValueError(
                f"ray_schedule must be one of {_RAY_SCHEDULES}, "
                f"got {self.ray_schedule!r}")
        if self.tile_size < 1:
            raise ValueError("tile_size must be >= 1")
        if not (0.0 < self.color_size_ratio <= 8.0):
            raise ValueError("color_size_ratio must be in (0, 8]")
        for freq in (self.density_update_freq, self.color_update_freq):
            if not (0.0 < freq <= 1.0):
                raise ValueError("update frequencies must be in (0, 1]")
        if self.mlp_hidden_width < 1 or self.mlp_hidden_layers < 1:
            raise ValueError("MLP heads need at least one hidden layer/unit")
        if self.n_samples_per_ray < 1 or self.batch_pixels < 1:
            raise ValueError("workload sizes must be positive")

    # -- named configurations ---------------------------------------------------
    @staticmethod
    def instant_ngp_baseline(**overrides) -> "Instant3DConfig":
        """The Instant-NGP baseline: equal grid sizes and update frequencies."""
        return Instant3DConfig(
            color_size_ratio=1.0,
            density_update_freq=1.0,
            color_update_freq=1.0,
            **overrides,
        )

    @staticmethod
    def instant_3d(**overrides) -> "Instant3DConfig":
        """The published Instant-3D setting: S_D:S_C = 1:0.25, F_D:F_C = 1:0.5."""
        return Instant3DConfig(
            color_size_ratio=0.25,
            density_update_freq=1.0,
            color_update_freq=0.5,
            **overrides,
        )

    @staticmethod
    def paper_scale_baseline(n_levels: int = 16, **overrides) -> "Instant3DConfig":
        """The full-scale Instant-NGP training workload the paper profiles.

        This configuration is used only for *workload accounting* (grid
        accesses, bytes and FLOPs per iteration on the Jetson baselines); the
        Python optimisation itself runs the reduced-scale defaults.
        """
        grid = HashGridConfig(
            n_levels=n_levels,
            n_features_per_level=2,
            log2_hashmap_size=19,
            base_resolution=16,
            finest_resolution=2048,
        )
        return Instant3DConfig(
            grid=grid,
            color_size_ratio=1.0,
            density_update_freq=1.0,
            color_update_freq=1.0,
            mlp_hidden_width=64,
            mlp_hidden_layers=2,
            sh_degree=3,
            n_samples_per_ray=48,
            batch_pixels=4096,
            **overrides,
        )

    @staticmethod
    def paper_scale_instant3d(**overrides) -> "Instant3DConfig":
        """Full-scale Instant-3D algorithm workload as deployed on the accelerator.

        The hash-table budget matches the published accelerator design: the
        density grid occupies ~1 MB (Level-2 fusion) and the color grid, at
        ``S_C = 0.25 S_D``, ~256 KB (Level-0 standalone mode).
        """
        grid = HashGridConfig(
            n_levels=16,
            n_features_per_level=2,
            log2_hashmap_size=15,
            base_resolution=16,
            finest_resolution=1024,
        )
        return Instant3DConfig(
            grid=grid,
            color_size_ratio=0.25,
            density_update_freq=1.0,
            color_update_freq=0.5,
            mlp_hidden_width=64,
            mlp_hidden_layers=2,
            sh_degree=3,
            n_samples_per_ray=48,
            batch_pixels=4096,
            **overrides,
        )

    def with_ratios(self, color_size_ratio: float = None,
                    color_update_freq: float = None,
                    density_update_freq: float = None) -> "Instant3DConfig":
        """Copy this config with different decomposition ratios."""
        kwargs = {}
        if color_size_ratio is not None:
            kwargs["color_size_ratio"] = color_size_ratio
        if color_update_freq is not None:
            kwargs["color_update_freq"] = color_update_freq
        if density_update_freq is not None:
            kwargs["density_update_freq"] = density_update_freq
        return replace(self, **kwargs)

    # -- precision ---------------------------------------------------------------
    @property
    def precision_policy(self) -> PrecisionPolicy:
        """The :class:`~repro.utils.precision.PrecisionPolicy` of this config."""
        return resolve_policy(self.compute_dtype)

    # -- backend -----------------------------------------------------------------
    @property
    def array_backend(self) -> ArrayBackend:
        """The resolved :class:`~repro.backend.ArrayBackend` instance."""
        return get_backend(self.backend)

    # -- sparsity ----------------------------------------------------------------
    @property
    def grid_sparse_mode(self) -> Optional[str]:
        """The hash grids' backward representation: None, ``"coo"`` or
        ``"oracle"`` (see :attr:`sparse_updates` / :attr:`sparse_oracle`)."""
        if not self.sparse_updates:
            return None
        return "oracle" if self.sparse_oracle else "coo"

    # -- derived grid configs ------------------------------------------------------
    @property
    def density_grid_config(self) -> HashGridConfig:
        """Hash-grid config of the density branch (full size)."""
        return self.grid

    @property
    def color_grid_config(self) -> HashGridConfig:
        """Hash-grid config of the color branch (scaled by ``S_C / S_D``)."""
        return self.grid.scaled(min(1.0, self.grid.size_scale * self.color_size_ratio))

    @property
    def size_ratio_label(self) -> str:
        """Human-readable ``S_D : S_C`` label (e.g. ``"1:0.25"``)."""
        return f"1:{self.color_size_ratio:g}"

    @property
    def freq_ratio_label(self) -> str:
        """Human-readable ``F_D : F_C`` label (e.g. ``"1:0.5"``)."""
        return f"{self.density_update_freq:g}:{self.color_update_freq:g}"

    @property
    def points_per_iteration(self) -> int:
        """Number of grid/MLP point queries per training iteration."""
        return self.batch_pixels * self.n_samples_per_ray

    @property
    def is_baseline(self) -> bool:
        """True when this config is equivalent to the Instant-NGP baseline."""
        return (
            self.color_size_ratio == 1.0
            and self.density_update_freq == 1.0
            and self.color_update_freq == 1.0
        )

    def ratio_tuple(self) -> Tuple[float, float, float]:
        """(S_C/S_D, F_D, F_C) — convenient for sweeps and tables."""
        return (self.color_size_ratio, self.density_update_freq, self.color_update_freq)
