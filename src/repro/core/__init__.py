"""The Instant-3D algorithm: decoupled color/density embedding grids.

This package holds the paper's primary algorithmic contribution (Sec. 3):

* :mod:`repro.core.config` — model/training configuration, including the
  grid-size ratio ``S_D : S_C`` and update-frequency ratio ``F_D : F_C``.
  ``Instant3DConfig.instant_ngp_baseline()`` is the coupled 1:1/1:1 setting
  the paper uses as the most-efficient-prior-art baseline, and
  ``Instant3DConfig.instant_3d()`` is the proposed 1:0.25 / 1:0.5 setting.
* :mod:`repro.core.schedule` — per-branch update-frequency schedules.
* :mod:`repro.core.decoupled_grid` — the pair of hash grids with different
  ``size_scale`` values.
* :mod:`repro.core.model` — :class:`DecoupledRadianceField`, the queryable /
  trainable radiance field built from the two grids plus the small density
  and color MLP heads.
* :mod:`repro.core.search` — the grid-search helper the paper uses to pick
  the ratio configuration (Sec. 5.1).
"""

from repro.core.config import Instant3DConfig
from repro.core.coupled import CoupledInstantNGP
from repro.core.schedule import UpdateSchedule, BranchSchedules
from repro.core.decoupled_grid import DecoupledGridEncoder
from repro.core.model import DecoupledRadianceField, QueryCache
from repro.core.search import RatioSearchResult, grid_ratio_search

__all__ = [
    "Instant3DConfig",
    "CoupledInstantNGP",
    "UpdateSchedule",
    "BranchSchedules",
    "DecoupledGridEncoder",
    "DecoupledRadianceField",
    "QueryCache",
    "RatioSearchResult",
    "grid_ratio_search",
]
