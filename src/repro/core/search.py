"""Grid search over decomposition ratios (Sec. 5.1 of the paper).

The paper selects ``S_D : S_C = 1 : 0.25`` and ``F_D : F_C = 1 : 0.5`` by a
grid search over {1:0.125, 1:0.25, 1:0.5, 1:0.75} that keeps the most
compressive configuration whose PSNR matches the Instant-NGP baseline.
:func:`grid_ratio_search` reproduces that selection rule for arbitrary
candidate lists, given callables that evaluate PSNR and (modelled) runtime of
a configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import Instant3DConfig


@dataclass(frozen=True)
class RatioSearchResult:
    """Outcome of the decomposition-ratio grid search."""

    selected: Instant3DConfig
    baseline_psnr: float
    candidates: Tuple[Tuple[Instant3DConfig, float, float], ...]
    """Evaluated candidates as ``(config, psnr, runtime)`` tuples."""

    @property
    def selected_psnr(self) -> float:
        for config, psnr, _ in self.candidates:
            if config is self.selected:
                return psnr
        raise LookupError("selected config missing from candidates")

    @property
    def selected_runtime(self) -> float:
        for config, _, runtime in self.candidates:
            if config is self.selected:
                return runtime
        raise LookupError("selected config missing from candidates")


def grid_ratio_search(
    base_config: Instant3DConfig,
    evaluate_psnr: Callable[[Instant3DConfig], float],
    evaluate_runtime: Callable[[Instant3DConfig], float],
    size_ratios: Sequence[float] = (0.125, 0.25, 0.5, 0.75, 1.0),
    update_ratios: Sequence[float] = (0.5, 1.0),
    psnr_tolerance: float = 0.15,
) -> RatioSearchResult:
    """Select the fastest configuration whose PSNR matches the baseline.

    Parameters
    ----------
    base_config:
        Configuration whose 1:1 / 1:1 variant defines the baseline quality.
    evaluate_psnr / evaluate_runtime:
        Callables mapping a configuration to its reconstruction PSNR and its
        (modelled) training runtime.  The benchmarks pass a short training
        run and a device-model estimate respectively.
    size_ratios / update_ratios:
        Candidate ``S_C/S_D`` and ``F_C/F_D`` values (the paper's lists).
    psnr_tolerance:
        Maximum PSNR drop (dB) relative to the baseline that still counts as
        "maintaining the same reconstruction quality".
    """
    baseline = base_config.with_ratios(color_size_ratio=1.0, color_update_freq=1.0)
    baseline_psnr = float(evaluate_psnr(baseline))
    baseline_runtime = float(evaluate_runtime(baseline))

    candidates: List[Tuple[Instant3DConfig, float, float]] = [
        (baseline, baseline_psnr, baseline_runtime)
    ]
    for size_ratio in size_ratios:
        for update_ratio in update_ratios:
            if size_ratio == 1.0 and update_ratio == 1.0:
                continue
            config = base_config.with_ratios(
                color_size_ratio=size_ratio, color_update_freq=update_ratio
            )
            candidates.append(
                (config, float(evaluate_psnr(config)), float(evaluate_runtime(config)))
            )

    acceptable = [
        entry for entry in candidates
        if entry[1] >= baseline_psnr - psnr_tolerance
    ]
    # Fall back to the baseline if nothing else maintains quality.
    pool = acceptable if acceptable else [candidates[0]]
    selected = min(pool, key=lambda entry: entry[2])[0]
    return RatioSearchResult(
        selected=selected,
        baseline_psnr=baseline_psnr,
        candidates=tuple(candidates),
    )
