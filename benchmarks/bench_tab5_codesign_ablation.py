"""Tab. 5 — necessity of the algorithm-hardware co-design.

Paper result (normalized runtime, Instant-NGP @ Xavier NX = 100 %):

    NeRF training solution                      NeRF-Syn.  SILVR  ScanNet
    Instant-NGP @ Xavier NX                       100       100     100
    Instant-3D algorithm @ Xavier NX              83.3      82.2    85.7
    Instant-3D algorithm @ Instant-3D accel.       2.3       3.4     3.2
"""

from benchmarks.bench_tab4_algorithm_vs_ngp import SUITE_WORKLOAD_FACTOR
from benchmarks.common import accelerator_estimate, paper_workloads, print_report
from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel


def _run():
    xavier = EdgeGPUModel(XAVIER_NX)
    ngp_gpu = xavier.estimate_training(paper_workloads()["instant_ngp_gpu"]).total_s
    i3d_gpu = xavier.estimate_training(paper_workloads()["instant3d_gpu"]).total_s
    i3d_acc = accelerator_estimate().total_s

    suites = list(SUITE_WORKLOAD_FACTOR)
    rows = []
    for label, runtime in (
        ("Instant-NGP @ Xavier NX", ngp_gpu),
        ("Instant-3D algorithm @ Xavier NX", i3d_gpu),
        ("Instant-3D algorithm @ Instant-3D accelerator", i3d_acc),
    ):
        # The workload factor multiplies both numerator and denominator, so
        # the normalized runtime is suite-independent in the model; the paper
        # sees small per-suite differences from measurement noise.
        rows.append([label] + [f"{100 * runtime / ngp_gpu:.1f}%" for _ in suites])
    return rows, suites, (ngp_gpu, i3d_gpu, i3d_acc)


def test_tab5_codesign_ablation(benchmark):
    rows, suites, runtimes = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Tab. 5 — normalized training runtime (Instant-NGP @ Xavier NX = 100%)",
        ["NeRF training solution (algorithm @ hardware)"] + suites,
        rows,
    )
    ngp_gpu, i3d_gpu, i3d_acc = runtimes
    # Algorithm alone: a modest (10-30 %) reduction; paper reports ~17 %.
    assert 0.70 < i3d_gpu / ngp_gpu < 0.90
    # Algorithm + accelerator: an order-of-magnitude-class reduction.
    assert i3d_acc / ngp_gpu < 0.25
    assert i3d_acc < i3d_gpu < ngp_gpu
