"""Fig. 10 — unique accessed addresses inside a 1000-access sliding window.

Paper result: during the feed-forward pass essentially all of the 1000
accesses in a window are unique, while during back-propagation the same
window contains far fewer unique addresses (~200), i.e. many updates target
shared embeddings — the opportunity the BUM unit exploits.
"""

from benchmarks.common import bench_trace, print_report
from repro.analysis.access_patterns import forward_backward_window_comparison


def _run():
    trace = bench_trace()
    rows = []
    comparisons = {}
    for name, branch in trace.branches.items():
        window = min(1000, branch.read_addresses.size)
        comparison = forward_backward_window_comparison(
            branch.read_addresses, branch.write_addresses, window=window)
        comparisons[name] = (comparison, window)
        rows.append([
            f"{name} grid",
            window,
            f"{comparison['feed_forward'].mean_unique:.0f}",
            f"{comparison['back_propagation'].mean_unique:.0f}",
        ])
    return rows, comparisons


def test_fig10_sliding_window(benchmark):
    rows, comparisons = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 10 — unique addresses per sliding window (feed-forward vs back-prop)",
        ["Branch", "Window size", "Unique (feed-forward)", "Unique (back-propagation)"],
        rows,
    )
    for comparison, window in comparisons.values():
        forward = comparison["feed_forward"].mean_unique
        backward = comparison["back_propagation"].mean_unique
        # Back-propagation revisits addresses inside the window; feed-forward
        # accesses are (nearly) unique.
        assert backward < forward
        assert backward < 0.8 * window
