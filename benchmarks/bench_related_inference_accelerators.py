"""Sec. 6 — comparison against prior NeRF *inference* accelerators.

Paper statements: compared with the SOTA NeRF inference accelerator RT-NeRF,
Instant-3D renders in real time (>30 FPS) while using only 19.5 % of the
energy per frame and 36 % of the chip area; prior inference accelerators
cannot train at all, which is why they are not runtime baselines.

The reproduction models the published design points of RT-NeRF and ICARUS as
static reference specs and compares the Instant-3D area/energy model against
them, checking the relative positions the paper reports.
"""

from dataclasses import dataclass

from benchmarks.common import accelerator_estimate, print_report
from repro.accelerator import AcceleratorConfig, AreaModel


@dataclass(frozen=True)
class InferenceAcceleratorSpec:
    """Published design point of a prior NeRF inference accelerator."""

    name: str
    area_mm2: float
    energy_per_frame_mj: float
    supports_training: bool


#: Published design points (RT-NeRF, ICCAD'22; ICARUS, SIGGRAPH Asia'22).
RT_NERF = InferenceAcceleratorSpec(name="RT-NeRF", area_mm2=18.9,
                                   energy_per_frame_mj=33.0, supports_training=False)
ICARUS = InferenceAcceleratorSpec(name="ICARUS", area_mm2=16.5,
                                  energy_per_frame_mj=778.0, supports_training=False)


def _run():
    config = AcceleratorConfig()
    area = AreaModel(config).breakdown()
    estimate = accelerator_estimate()
    # Rendering a frame exercises only the feed-forward path; approximate the
    # per-frame energy from the forward share of one training iteration's
    # energy at 30 FPS-scale pixel counts.
    per_iteration_energy_j = estimate.energy_j / estimate.n_iterations
    frame_energy_mj = 1e3 * per_iteration_energy_j * 0.4
    rows = [
        [RT_NERF.name, f"{RT_NERF.area_mm2:.1f}", f"{RT_NERF.energy_per_frame_mj:.1f}",
         "no"],
        [ICARUS.name, f"{ICARUS.area_mm2:.1f}", f"{ICARUS.energy_per_frame_mj:.1f}",
         "no"],
        ["Instant-3D (this work)", f"{area.total_mm2:.1f}", f"{frame_energy_mj:.1f}",
         "yes"],
    ]
    return rows, area, frame_energy_mj


def test_related_inference_accelerators(benchmark):
    rows, area, frame_energy_mj = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Sec. 6 — comparison with prior NeRF inference accelerators",
        ["Accelerator", "Area (mm^2)", "Energy per frame (mJ)", "Supports training"],
        rows,
    )
    # Paper: ~36 % of RT-NeRF's chip area and a fraction of its per-frame energy,
    # while additionally supporting training.
    assert area.total_mm2 < 0.5 * RT_NERF.area_mm2
    assert frame_energy_mj < RT_NERF.energy_per_frame_mj
