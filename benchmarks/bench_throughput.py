"""Throughput benchmark: grid engine, culled pipeline, fleet, checkpoints,
precision, sparse updates, array backends, ray scheduling.

Eight measurements back the engine, pipeline, io, precision, optimiser,
backend and scheduling layers:

1. **Grid engine** — forward + backward points/sec of the fused stacked-kernel
   engine versus the original per-level loop on a 65k-point batch, with a
   differential check that the two engines produce identical outputs
   (<= 1e-10), identical access traces and matching table gradients.
2. **Dense vs culled training** — the occupancy-culled
   :class:`~repro.nerf.pipeline.RenderPipeline` against the dense path on a
   synthetic scene: embedding/MLP queries per iteration (after occupancy
   warm-up), end-to-end points/sec, wall-clock speedup and PSNR parity, plus
   a differential check that ``culling_enabled=False`` still reproduces the
   pre-pipeline trainer's losses exactly.
3. **Fleet** — scenes/hour of :class:`repro.training.SceneFleet` on a small
   suite of procedural scenes (train + eval, end to end).
4. **Checkpointing** — save/load seconds per scene and bytes on disk for the
   single-file trainer checkpoint, a round-trip exactness check, and one
   fleet interrupt → resume cycle (with ``max_resident_scenes=1`` eviction)
   asserted to finish bit-identically to an uninterrupted run.
5. **Precision policy** — the ``compute_dtype="float32"`` fast path against
   the bit-exact float64 reference: end-to-end train throughput at a
   paper-shaped batch (interleaved best-of timing), PSNR parity at the
   standard learning scale, a differential check that the float64 policy
   still reproduces the frozen pre-policy trainer exactly, and the
   workspace-arena allocation ledger (steady-state arena hit rate, peak
   per-iteration temporary bytes via tracemalloc).
6. **Sparse updates** — the ``sparse_updates=True`` path (COO gradient
   emission + touched-rows-only lazy Adam) against the dense gradient/dense
   Adam path: optimiser-step and backward-scatter wall time versus hash-table
   size (up to a paper-representative 2^19-entry table at culling-level
   batch sparsity), a 20-step differential that the COO path is bit-identical
   to its dense-representation oracle, and the measured touched-address trace
   replayed through the modeled
   :class:`~repro.accelerator.bum.BackPropUpdateMerger` so the software
   sparsity statistics and the hardware unit's merge rate sit side by side.
7. **Array backends** — end-to-end train-step time and points/sec for every
   registered :class:`~repro.backend.ArrayBackend` (numpy reference, the
   in-repo fused backend, numba when installed), with differential pins:
   the numpy backend must reproduce the frozen reference trainer exactly
   and each alternate backend's loss trajectory is compared bit-exactly to
   numpy's.  Unavailable optional backends report ``"skipped": true``
   (never missing keys).
8. **Ray scheduling** — the locality-aware pixel schedulers
   (:mod:`repro.nerf.scheduling`) against the uniform random draw: a
   differential check that ``ray_schedule="uniform"`` (the default) still
   reproduces the frozen pre-scheduler trainer exactly, then one culled +
   sparse training run per schedule (uniform / morton / occupancy, the
   non-uniform ones with ``address_sort=True``) scoring the recorded
   density-grid write trace through the modeled
   :class:`~repro.accelerator.bum.BackPropUpdateMerger` — merge rate,
   unique-touched-rows fraction — next to end-to-end ms/iteration and PSNR
   at equal step count.

Results are printed and written to ``BENCH_throughput.json`` next to the
repository root.  ``--smoke`` shrinks all measurements for CI (< 60 s).

Run with:  PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.accelerator.bum import BackPropUpdateMerger, replay_trace
from repro.backend import available_backends
from repro.core.model import DecoupledRadianceField
from repro.core.schedule import BranchSchedules
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.losses import mse_loss
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.nerf.scheduling import RAY_SCHEDULES
from repro.nerf.volume_rendering import VolumeRenderer
from repro.io import (
    NonFiniteCheckpointError,
    load_trainer_checkpoint,
    save_trainer_checkpoint,
)
from repro.nn.optim import Adam
from repro.reliability import (
    FaultInjector,
    HealthPolicy,
    RetryPolicy,
    install_injector,
    uninstall_injector,
)
from repro.serving import JobPoisoned, ResidencyManager, SceneService
from repro.training.fleet import SceneFleet
from repro.training.metrics import evaluate_model
from repro.training.profiler import PhaseTimer, TrainPhase
from repro.training.trainer import Trainer, TrainingHistory
from repro.utils.seeding import derive_rng, new_rng
from repro.utils.workspace import WorkspaceArena

try:
    from benchmarks.common import bench_config, print_report, synthetic_datasets
except ImportError:                      # run as a script from benchmarks/
    from common import bench_config, print_report, synthetic_datasets

#: Grid used for the engine measurement (reduced-scale Instant-NGP shape).
ENGINE_GRID = HashGridConfig(
    n_levels=8,
    n_features_per_level=2,
    log2_hashmap_size=14,
    base_resolution=16,
    finest_resolution=256,
)
ENGINE_BATCH = 65536
#: Fused-engine streaming chunk: keeps every intermediate plane inside the
#: cache hierarchy (and bounds memory for arbitrarily large batches).
ENGINE_CHUNK = 4096


def _time_interleaved(fns: dict, repeats: int) -> dict:
    """Best-of-``repeats`` wall time per labelled callable.

    The callables are cycled within each round (A, B, A, B, ...) rather than
    timed in separate blocks, so machine-state drift (turbo, cache, noisy
    neighbours) hits every engine equally instead of biasing one block.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def bench_grid_engine(n_points: int, repeats: int) -> dict:
    """Measure fused vs per-level-loop forward+backward throughput."""
    rng = new_rng(0)
    points = new_rng(1).uniform(size=(n_points, 3))
    grad = np.ones((n_points, ENGINE_GRID.n_output_features))

    legacy = MultiResHashGrid(ENGINE_GRID, rng=rng, fused=False)
    fused = MultiResHashGrid(ENGINE_GRID, rng=new_rng(0), fused=True,
                             max_chunk_points=ENGINE_CHUNK)

    # Differential check before timing: outputs, traces, gradients.
    out_legacy = legacy.forward(points)
    out_fused = fused.forward(points)
    max_diff = float(np.abs(out_fused.astype(np.float64)
                            - out_legacy.astype(np.float64)).max())
    traces_equal = bool(np.array_equal(legacy.last_access.flat_addresses(),
                                       fused.last_access.flat_addresses()))
    legacy.zero_grad(); legacy.backward(grad)
    fused.zero_grad(); fused.backward(grad)
    grad_diff = float(max(
        np.abs(l.table.grad.astype(np.float64)
               - f.table.grad.astype(np.float64)).max()
        for l, f in zip(legacy.levels, fused.levels)
    ))
    if max_diff > 1e-10:
        raise AssertionError(f"fused forward deviates from legacy: {max_diff:g}")
    if not traces_equal:
        raise AssertionError("fused access trace differs from legacy trace")
    if grad_diff > 1e-6:
        raise AssertionError(f"fused backward deviates from legacy: {grad_diff:g}")

    def backward_step(grid):
        grid.zero_grad()
        grid.backward(grad)

    engines = {"per_level_loop": legacy, "fused": fused}
    for grid in engines.values():          # warm up both engines
        grid.forward(points)
        backward_step(grid)
    fwd_times = _time_interleaved(
        {name: (lambda g=g: g.forward(points)) for name, g in engines.items()},
        repeats)
    bwd_times = _time_interleaved(
        {name: (lambda g=g: backward_step(g)) for name, g in engines.items()},
        repeats)
    timings = {}
    for name in engines:
        fwd, bwd = fwd_times[name], bwd_times[name]
        timings[name] = {
            "forward_s": fwd,
            "backward_s": bwd,
            "total_s": fwd + bwd,
            "points_per_s": n_points / (fwd + bwd),
        }
    speedup = timings["per_level_loop"]["total_s"] / timings["fused"]["total_s"]
    return {
        "n_points": n_points,
        "n_levels": ENGINE_GRID.n_levels,
        "max_chunk_points": ENGINE_CHUNK,
        "timings": timings,
        "speedup": speedup,
        "forward_max_abs_diff": max_diff,
        "grad_max_abs_diff": grad_diff,
        "traces_identical": traces_equal,
    }


def _reference_dense_losses(dataset, config, seed: int, n_steps: int) -> list:
    """Losses of the pre-pipeline six-step loop (verbatim reference).

    Kept as the differential baseline for the ``culling_enabled=False``
    path, the same way the grid engine keeps its per-level loop.  A frozen
    twin of this oracle lives in ``tests/test_pipeline.py``
    (``_reference_dense_run``); neither copy should ever change.
    """
    model = DecoupledRadianceField(config, seed=seed)
    schedules = BranchSchedules.from_frequencies(
        config.density_update_freq, config.color_update_freq)
    renderer = VolumeRenderer(white_background=config.white_background)
    density_opt = Adam(model.density_parameters(), lr=config.learning_rate)
    color_opt = Adam(model.color_parameters(), lr=config.learning_rate)
    pixel_rng = derive_rng(seed, f"{dataset.name}:pixels")
    sample_rng = derive_rng(seed, f"{dataset.name}:samples")
    losses = []
    for iteration in range(n_steps):
        update_density, update_color = schedules.updates_at(iteration)
        bundle, targets = sample_pixel_batch(
            dataset.train_cameras, dataset.train_images,
            config.batch_pixels, pixel_rng)
        t_vals, deltas = stratified_samples(bundle, config.n_samples_per_ray,
                                            rng=sample_rng)
        points, dirs = ray_points(bundle, t_vals)
        points_unit = normalize_points_to_unit_cube(points, dataset.scene_bound)
        sigma, rgb = model.query(points_unit, dirs)
        n_rays, n_samples = bundle.n_rays, config.n_samples_per_ray
        render = renderer.forward(sigma.reshape(n_rays, n_samples),
                                  rgb.reshape(n_rays, n_samples, 3),
                                  deltas, t_vals)
        loss, grad_colors = mse_loss(render.colors, targets)
        grad_sigmas, grad_rgbs = renderer.backward(grad_colors)
        model.zero_grad()
        model.backward(grad_sigmas.reshape(-1), grad_rgbs.reshape(-1, 3),
                       update_density=update_density, update_color=update_color)
        if update_density:
            density_opt.step()
        if update_color:
            color_opt.step()
        losses.append(loss)
    return losses


def _timed_training_run(dataset, config, n_iterations: int, seed: int = 0):
    """Train one scene step-by-step; returns (history, result, train_seconds)."""
    model = DecoupledRadianceField(config, seed=seed)
    trainer = Trainer(model, dataset, config=config, seed=seed)
    history = TrainingHistory()
    start = time.perf_counter()
    trainer.run_steps(n_iterations, history)
    train_s = time.perf_counter() - start
    return history, trainer.finalize(history, eval_views=1, eval_samples=24), train_s


def bench_dense_vs_culled(n_iterations: int, image_size: int,
                          reference_steps: int = 10) -> dict:
    """Dense vs occupancy-culled training on one synthetic scene."""
    dataset = nerf_synthetic_like(["lego"], n_train_views=6, n_test_views=1,
                                  image_size=image_size)[0]
    dense_config = bench_config(0.25, 0.5)
    culled_config = dataclasses.replace(
        dense_config, culling_enabled=True, early_termination_tau=1e-3)

    # Differential check: the dense pipeline path must still reproduce the
    # pre-pipeline trainer's loss trajectory exactly.
    reference = _reference_dense_losses(dataset, dense_config, 0, reference_steps)
    probe_model = DecoupledRadianceField(dense_config, seed=0)
    probe = Trainer(probe_model, dataset, config=dense_config, seed=0)
    pipeline_losses = [probe.train_step()["loss"] for _ in range(reference_steps)]
    dense_matches_reference = pipeline_losses == reference
    if not dense_matches_reference:
        raise AssertionError("dense pipeline path deviates from the reference trainer")

    dense_hist, dense_result, dense_s = _timed_training_run(
        dataset, dense_config, n_iterations)
    culled_hist, culled_result, culled_s = _timed_training_run(
        dataset, culled_config, n_iterations)

    # Queries/iteration after occupancy warm-up (last quarter of the run).
    # The culled figure is charged for the occupancy refresh's own
    # density-branch probes (amortised per iteration), so the reduction is
    # net of the maintenance overhead, not just the batch savings.
    tail = max(1, n_iterations // 4)
    dense_tail = float(np.mean(dense_hist.queries_kept[-tail:]))
    culled_tail = float(np.mean(culled_hist.queries_kept[-tail:]))
    refresh_per_iter = culled_result.occupancy_refresh_points / n_iterations
    culled_incl_refresh = culled_tail + refresh_per_iter
    return {
        "n_iterations": n_iterations,
        "image_size": image_size,
        "dense_matches_reference": dense_matches_reference,
        "queries_per_iter_dense": dense_tail,
        "queries_per_iter_culled": culled_tail,
        "refresh_queries_per_iter": refresh_per_iter,
        "queries_per_iter_culled_incl_refresh": culled_incl_refresh,
        "queries_reduction": dense_tail / max(culled_incl_refresh, 1.0),
        "batch_queries_reduction": dense_tail / max(culled_tail, 1.0),
        "keep_fraction_tail": culled_hist.mean_keep_fraction(tail),
        "occupancy_fraction": culled_result.final_occupancy_fraction,
        # rays/s is the comparable work unit (both runs march the same rays).
        # Per-point rates are split so the table cannot contradict its own
        # speedup: ``candidate_points_per_s`` divides the dense rays x
        # samples *candidate* product by wall time (the rate at which the
        # run disposes of candidate samples — culling raises it), while
        # ``kept_points_per_s`` divides only the samples that actually
        # reached the field (the culled figure is naturally *lower*: fewer
        # queries per ray, on purpose).
        "dense": {
            "train_s": dense_s,
            "iters_per_s": n_iterations / max(dense_s, 1e-9),
            "rays_per_s": n_iterations * dense_config.batch_pixels / max(dense_s, 1e-9),
            "kept_points_per_s": dense_result.queries_kept / max(dense_s, 1e-9),
            "candidate_points_per_s": dense_result.queries_total / max(dense_s, 1e-9),
            "rgb_psnr": dense_result.rgb_psnr,
        },
        "culled": {
            "train_s": culled_s,
            "iters_per_s": n_iterations / max(culled_s, 1e-9),
            "rays_per_s": n_iterations * dense_config.batch_pixels / max(culled_s, 1e-9),
            "kept_points_per_s": culled_result.queries_kept / max(culled_s, 1e-9),
            "candidate_points_per_s": culled_result.queries_total / max(culled_s, 1e-9),
            "rgb_psnr": culled_result.rgb_psnr,
        },
        "train_speedup": dense_s / max(culled_s, 1e-9),
        "psnr_gap_db": culled_result.rgb_psnr - dense_result.rgb_psnr,
    }


def bench_fleet(n_scenes: int, n_iterations: int, image_size: int,
                n_workers: int) -> dict:
    """Measure SceneFleet end-to-end throughput (train + eval)."""
    scene_names = ("lego", "ficus", "chair", "mic")[:n_scenes]
    datasets = nerf_synthetic_like(scene_names, n_train_views=6, n_test_views=1,
                                   image_size=image_size)
    config = bench_config(0.25, 0.5)
    fleet = SceneFleet(datasets, config, seed=0, n_workers=n_workers)
    result = fleet.train(n_iterations, eval_views=1, eval_samples=24)
    summary = result.summary()
    summary["schedule"] = result.schedule
    summary["scene_names"] = list(result.scene_names)
    return summary


def bench_checkpoint(n_iterations: int, image_size: int,
                     repeats: int = 3) -> dict:
    """Measure checkpoint save/load overhead and verify bit-identical resume.

    The trainer-level half times :func:`save_trainer_checkpoint` /
    :func:`load_trainer_checkpoint` on one culled scene (best of
    ``repeats``) and checks the restored trainer reproduces the source
    exactly over a 10-step continuation.  The fleet-level half runs one
    interrupt → resume cycle (fresh :class:`SceneFleet`, nothing shared but
    the checkpoint files, ``max_resident_scenes=1`` so eviction is on the
    path) and compares against an uninterrupted run.
    """
    datasets = nerf_synthetic_like(["lego", "ficus"], n_train_views=6,
                                   n_test_views=1, image_size=image_size)
    dataset = datasets[0]
    config = dataclasses.replace(bench_config(0.25, 0.5), culling_enabled=True)
    trainer = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                      config=config, seed=0)
    history = TrainingHistory()
    trainer.run_steps(n_iterations, history)

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "scene.ckpt.npz"
        save_s = min(_timed(lambda: save_trainer_checkpoint(
            path, trainer, history=history)) for _ in range(repeats))
        checkpoint_bytes = path.stat().st_size
        restored = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                           config=config, seed=0)
        restored_history = TrainingHistory()
        load_s = min(_timed(lambda: load_trainer_checkpoint(
            path, restored, history=restored_history)) for _ in range(repeats))

        roundtrip_exact = (
            restored.iteration == trainer.iteration
            and restored_history.losses == history.losses
            and all(np.array_equal(a.data, b.data) for a, b in
                    zip(trainer.model.parameters(), restored.model.parameters()))
            and np.array_equal(trainer.occupancy.density,
                               restored.occupancy.density)
        )
        # Continuation differential: both trainers march 10 more steps.
        continued = [trainer.train_step()["loss"] for _ in range(10)]
        resumed = [restored.train_step()["loss"] for _ in range(10)]
        trainer_resume_identical = continued == resumed

        # Fleet interrupt -> resume cycle: two scenes under a one-trainer
        # residency cap, so eviction (checkpoint + reload) is on the path.
        ckpt_dir = Path(tmp) / "fleet"
        total, interrupt_at = n_iterations, max(1, n_iterations // 2)
        uninterrupted = SceneFleet(datasets, config, seed=0).train(
            total, eval_views=1, eval_samples=16)
        interrupted_fleet = SceneFleet(datasets, config, seed=0,
                                       slice_iterations=max(1, interrupt_at // 3),
                                       checkpoint_every=interrupt_at,
                                       checkpoint_dir=ckpt_dir,
                                       max_resident_scenes=1)
        interrupted_fleet.train(interrupt_at, eval_views=1, eval_samples=16)
        resumed_fleet = SceneFleet(datasets, config, seed=0,
                                   checkpoint_dir=ckpt_dir,
                                   max_resident_scenes=1).resume(
            total, eval_views=1, eval_samples=16)
        fleet_resume_identical = all(
            res.history.losses == ref.history.losses
            and res.rgb_psnr == ref.rgb_psnr
            and res.depth_psnr == ref.depth_psnr
            for ref, res in zip(uninterrupted.results, resumed_fleet.results)
        )
    return {
        "n_iterations": n_iterations,
        "image_size": image_size,
        "n_parameters": trainer.model.n_parameters,
        "save_s": save_s,
        "load_s": load_s,
        "bytes": checkpoint_bytes,
        "roundtrip_exact": bool(roundtrip_exact),
        "trainer_resume_identical": bool(trainer_resume_identical),
        "fleet_interrupt_at": interrupt_at,
        "fleet_total_iterations": total,
        "fleet_evictions": interrupted_fleet.evictions,
        "resume_bit_identical": bool(trainer_resume_identical
                                     and fleet_resume_identical),
    }


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


#: "Large" temporary threshold for the precision section's allocation
#: ledger: one MiB — several times the dense float64 sample plane at the
#: standard bench scale.  A steady-state iteration whose tracemalloc peak
#: stays below this cannot have made any allocation that big.
LARGE_ALLOC_THRESHOLD = 1 << 20


def bench_precision(n_iterations: int, image_size: int,
                    compute_batch: int, compute_samples: int,
                    timing_iters: int, reference_steps: int = 10) -> dict:
    """float32 fast path vs the bit-exact float64 reference policy.

    Three sub-measurements:

    * **throughput** at a paper-shaped compute batch
      (``compute_batch x compute_samples`` rays/samples): interleaved
      best-of per-iteration wall time for the float64 policy, the float32
      policy (both with the workspace arena) and the float64 policy with
      ``reuse_workspace=False`` (the pre-arena allocation behaviour);
    * **quality** at the standard learning scale: full training runs under
      both policies (identical RNG draws) and their final RGB PSNR;
    * **allocation ledger** at the standard scale: steady-state arena
      hit/miss counters plus tracemalloc's per-iteration peak of transient
      allocations, for the float32+arena fast path and the preallocating
      reference.
    """
    import tracemalloc

    dataset = nerf_synthetic_like(["lego"], n_train_views=6, n_test_views=1,
                                  image_size=image_size)[0]
    small64 = bench_config(0.25, 0.5)                      # float64 default
    small32 = dataclasses.replace(small64, compute_dtype="float32")
    big64 = dataclasses.replace(small64, batch_pixels=compute_batch,
                                n_samples_per_ray=compute_samples)
    big32 = dataclasses.replace(big64, compute_dtype="float32")
    big64_noarena = dataclasses.replace(big64, reuse_workspace=False)

    # Differential: the float64 policy must still reproduce the frozen
    # pre-policy trainer bit-exactly (same oracle as the culling section).
    reference = _reference_dense_losses(dataset, small64, 0, reference_steps)
    probe = Trainer(DecoupledRadianceField(small64, seed=0), dataset,
                    config=small64, seed=0)
    float64_matches_reference = (
        [probe.train_step()["loss"] for _ in range(reference_steps)]
        == reference)
    if not float64_matches_reference:
        raise AssertionError(
            "float64 policy deviates from the reference trainer")

    # float32 consumes the same RNG draws: track the loss divergence.
    probe32 = Trainer(DecoupledRadianceField(small32, seed=0), dataset,
                      config=small32, seed=0)
    losses32 = [probe32.train_step()["loss"] for _ in range(reference_steps)]
    loss_rel_divergence = float(max(
        abs(a - b) / max(abs(b), 1e-12) for a, b in zip(losses32, reference)))

    # Throughput at the paper-shaped compute batch, interleaved best-of.
    def _trainer(config):
        trainer = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                          config=config, seed=0)
        for _ in range(3):
            trainer.train_step()                          # shape warm-up
        return trainer

    timed = {"float64": _trainer(big64), "float32": _trainer(big32),
             "float64_reference": _trainer(big64_noarena)}
    best = {name: float("inf") for name in timed}
    for _ in range(timing_iters):
        for name, trainer in timed.items():
            best[name] = min(best[name], _timed(trainer.train_step))
    # Headline: the shipped fast path (float32 + arena) against the float64
    # *reference path* — the execution profile of the frozen pre-policy
    # trainer (which allocates fresh temporaries, i.e. reuse_workspace
    # off), the same oracle the bit-identity differentials run against.
    # The two decomposition ratios hold one knob fixed at a time.
    speedup = best["float64_reference"] / best["float32"]
    speedup_precision_only = best["float64"] / best["float32"]
    speedup_arena_only = best["float64_reference"] / best["float64"]

    # Quality: full runs at the standard learning scale.
    _, result64, s64 = _timed_training_run(dataset, small64, n_iterations)
    _, result32, s32 = _timed_training_run(dataset, small32, n_iterations)

    # Allocation ledger at the standard scale (train steps only, steady
    # state): arena counters + tracemalloc peak of transient allocations.
    def _peak_temporaries(config, steps: int = 5) -> dict:
        trainer = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                          config=config, seed=0)
        for _ in range(3):
            trainer.train_step()
        if trainer.arena is not None:
            trainer.arena.reset_stats()
        tracemalloc.start()
        trainer.train_step()                              # tracer warm-up
        peaks = []
        for _ in range(steps):
            tracemalloc.reset_peak()
            before = tracemalloc.get_traced_memory()[0]
            trainer.train_step()
            peaks.append(tracemalloc.get_traced_memory()[1] - before)
        tracemalloc.stop()
        arena = trainer.arena
        # Arena counters are ``null`` (not a sentinel) for the reference run
        # without an arena — there is no meaningful miss count to report.
        stats = {
            "peak_temporary_bytes_per_iter": float(np.mean(peaks)),
            "arena_hit_rate": arena.hit_rate if arena is not None else None,
            "arena_misses_steady": arena.misses if arena is not None else None,
            "arena_bytes": arena.total_bytes if arena is not None else None,
        }
        return stats

    fast_alloc = _peak_temporaries(small32)
    ref_alloc = _peak_temporaries(
        dataclasses.replace(small64, reuse_workspace=False))
    large_alloc_free = (
        fast_alloc["arena_misses_steady"] == 0
        and fast_alloc["peak_temporary_bytes_per_iter"] < LARGE_ALLOC_THRESHOLD)
    return {
        "compute_batch_pixels": compute_batch,
        "compute_samples_per_ray": compute_samples,
        "image_size": image_size,
        "n_iterations": n_iterations,
        "float64_matches_reference": bool(float64_matches_reference),
        "loss_rel_divergence": loss_rel_divergence,
        "timing_ms_per_iter": {name: t * 1e3 for name, t in best.items()},
        "float32_speedup": speedup,
        "float32_speedup_precision_only": speedup_precision_only,
        "arena_speedup_float64": speedup_arena_only,
        "quality": {
            "train_s_float64": s64,
            "train_s_float32": s32,
            "small_scale_speedup": s64 / max(s32, 1e-9),
            "rgb_psnr_float64": result64.rgb_psnr,
            "rgb_psnr_float32": result32.rgb_psnr,
            "psnr_gap_db": result64.rgb_psnr - result32.rgb_psnr,
        },
        "allocation": {
            "large_alloc_threshold_bytes": LARGE_ALLOC_THRESHOLD,
            "float32_arena": fast_alloc,
            "float64_preallocating_reference": ref_alloc,
            "large_allocs_per_iter_steady": 0 if large_alloc_free else float(
                fast_alloc["peak_temporary_bytes_per_iter"]
                // LARGE_ALLOC_THRESHOLD),
            "steady_state_large_alloc_free": bool(large_alloc_free),
        },
    }


#: Keep fraction mirrored from the culling section's measured tail
#: (``keep_fraction_tail`` ~ 0.08): the sparse-update benchmark queries this
#: share of the paper-shaped compute batch (the precision section's
#: 2048 x 48 rays x samples), drawn inside an occupied sub-volume of the
#: same share, so the touched-address distribution matches what an
#: occupancy-culled training step scatters.
SPARSE_KEEP_FRACTION = 0.08
SPARSE_PAPER_BATCH = 2048 * 48
SPARSE_SAMPLES_PER_RAY = 48


def _sparse_size_measurement(log2_size: int, n_points: int,
                             repeats: int) -> dict:
    """Dense vs COO+lazy optimiser-step (and backward) time at one table size."""
    grid_config = HashGridConfig(
        n_levels=8,
        n_features_per_level=2,
        log2_hashmap_size=log2_size,
        base_resolution=16,
        finest_resolution=256,
    )
    # Culling-level clustering with ray structure: the surviving samples of
    # a culled batch concentrate in occupied cells (a sub-box whose volume
    # is the keep fraction of the unit cube) and reach the scatter in
    # ray-major order — consecutive samples march along a ray and share
    # voxel corners, the temporal locality the paper's BUM merge window
    # exploits.  Uniform i.i.d. points would misrepresent both the touched
    # row count and the merge rate.
    side = SPARSE_KEEP_FRACTION ** (1.0 / 3.0)
    rng = new_rng(2)
    n_rays = max(1, n_points // SPARSE_SAMPLES_PER_RAY)
    origins = 0.3 + side * rng.uniform(size=(n_rays, 3))
    dirs = rng.normal(size=(n_rays, 3))
    dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
    t_vals = np.linspace(0.0, side, SPARSE_SAMPLES_PER_RAY)
    points = origins[:, None, :] + t_vals[None, :, None] * dirs[:, None, :]
    points = np.clip(points, 0.3, 0.3 + side).reshape(-1, 3)
    n_points = points.shape[0]
    grad = new_rng(3).standard_normal(
        (n_points, grid_config.n_output_features))

    # One arena per engine, as the trainer runs them: steady-state timing
    # then measures the algorithms, not allocator/page-fault traffic.
    dense_arena, coo_arena = WorkspaceArena(), WorkspaceArena()
    dense = MultiResHashGrid(grid_config, rng=new_rng(0), sparse_mode=None,
                             arena=dense_arena)
    coo = MultiResHashGrid(grid_config, rng=new_rng(0), sparse_mode="coo",
                           arena=coo_arena)
    dense_opt = Adam(dense.parameters(), lr=1e-2, arena=dense_arena)
    coo_opt = Adam(coo.parameters(), lr=1e-2, arena=coo_arena)

    def backward_step(grid):
        grid.zero_grad()
        grid.backward(grad)

    # Populate gradients once and verify the COO emission is bit-identical
    # to the dense scatter before any timing.
    for grid in (dense, coo):
        grid.forward(points)
        backward_step(grid)
    sparse_grad = coo.table.sparse_grad
    dense_rows = np.flatnonzero(np.any(dense.table.grad != 0.0, axis=1))
    if sparse_grad is None:
        scatter_matches = dense_rows.size == 0
    else:
        scatter_matches = bool(
            np.array_equal(sparse_grad.rows, dense_rows)
            and np.array_equal(sparse_grad.values,
                               dense.table.grad[dense_rows]))

    touched = int(coo.last_touched_rows)
    total_entries = int(coo.total_table_entries)
    # Each engine is timed in its own best-of block (not interleaved): a
    # sparse-mode trainer never runs the dense optimiser between its steps,
    # and interleaving would let the dense engine's full-table streaming
    # evict the sparse engine's (much smaller) working set between calls —
    # measuring cache pollution that cannot occur in either real mode.
    def _time_blocked(fns: dict) -> dict:
        best = {}
        for name, fn in fns.items():
            best[name] = min(_timed(fn) for _ in range(repeats))
        return best

    bwd_times = _time_blocked({"dense": lambda: backward_step(dense),
                               "sparse": lambda: backward_step(coo)})
    opt_times = _time_blocked({"dense": dense_opt.step,
                               "sparse": coo_opt.step})
    return {
        "log2_hashmap_size": log2_size,
        "total_entries": total_entries,
        "n_points": n_points,
        "touched_rows": touched,
        "touched_fraction": touched / total_entries,
        "scatter_matches_dense": bool(scatter_matches),
        "backward_scatter_ms": {name: t * 1e3 for name, t in bwd_times.items()},
        "optimizer_step_ms": {name: t * 1e3 for name, t in opt_times.items()},
        "backward_speedup": bwd_times["dense"] / bwd_times["sparse"],
        "optimizer_speedup": opt_times["dense"] / opt_times["sparse"],
        # The touched-address trace of this measurement feeds the BUM replay.
        "_trace": coo.last_access.flat_addresses(),
    }


def bench_sparse(table_log2_sizes, repeats: int, differential_steps: int,
                 phase_iterations: int, bum_trace_cap: int) -> dict:
    """Sparse-gradient backward + lazy optimiser vs the dense path.

    Four sub-measurements:

    * **differential** — ``differential_steps`` culled training steps under
      ``sparse_updates=True``: the COO representation against its
      dense-representation oracle (``sparse_oracle=True``), asserted
      loss- and parameter-bit-identical;
    * **optimiser-step speedup vs table size** — standalone grids at
      increasing ``log2_hashmap_size`` (up to the paper-representative
      2^19-entry tables), a culling-level-sparsity batch, per-engine
      best-of-block timing of the dense Adam step vs the touched-rows-only
      lazy step (and of the dense bincount scatter vs the COO
      sort+segment-sum) — deliberately *not* interleaved, since neither
      real mode ever runs the other engine between its own steps (see
      ``_time_blocked``);
    * **BUM side by side** — the *measured* touched-address trace of the
      largest grid replayed through the modeled
      :class:`BackPropUpdateMerger`, so the software sparsity statistics
      (unique touched rows = the writes a perfect merger would issue) sit
      next to the hardware unit's finite-buffer merge rate;
    * **phase attribution** — a short end-to-end culled training run per
      mode with a :class:`PhaseTimer` attached, splitting wall time into
      backward-scatter vs optimiser-step so the win lands in the right
      column.
    """
    dataset = nerf_synthetic_like(["lego"], n_train_views=6, n_test_views=1,
                                  image_size=20)[0]
    base = dataclasses.replace(bench_config(0.25, 0.5), culling_enabled=True)
    coo_config = dataclasses.replace(base, sparse_updates=True)
    oracle_config = dataclasses.replace(coo_config, sparse_oracle=True)

    # Differential: COO vs dense-representation oracle, bit-identical.
    def _probe(config):
        trainer = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                          config=config, seed=0)
        losses = [trainer.train_step()["loss"]
                  for _ in range(differential_steps)]
        return trainer, losses

    coo_trainer, coo_losses = _probe(coo_config)
    oracle_trainer, oracle_losses = _probe(oracle_config)
    sparse_matches_dense = coo_losses == oracle_losses and all(
        np.array_equal(a.data, b.data)
        for a, b in zip(coo_trainer.model.parameters(),
                        oracle_trainer.model.parameters()))
    if not sparse_matches_dense:
        raise AssertionError(
            "COO sparse path deviates from its dense-representation oracle")

    n_points = int(round(SPARSE_KEEP_FRACTION * SPARSE_PAPER_BATCH))
    sizes = [_sparse_size_measurement(s, n_points, repeats)
             for s in table_log2_sizes]
    largest = sizes[-1]
    trace = largest.pop("_trace")
    for row in sizes[:-1]:
        row.pop("_trace")

    # BUM replay on (a bounded prefix of) the measured scatter trace.
    bum_trace = trace[:bum_trace_cap]
    bum_result = BackPropUpdateMerger().process(bum_trace)
    software_unique = int(np.unique(bum_trace).size)
    bum = {
        "trace_updates_total": int(trace.size),
        "trace_updates_replayed": int(bum_trace.size),
        "software_touched_rows": largest["touched_rows"],
        "software_touched_fraction": largest["touched_fraction"],
        # A perfect (unbounded-buffer) merger would issue one SRAM write per
        # unique address in the replayed window; the modeled finite-buffer
        # BUM approaches that bound.
        "software_write_reduction": 1.0 - software_unique / max(bum_trace.size, 1),
        "bum_write_reduction": bum_result.write_reduction,
        "bum_merge_rate": bum_result.merge_rate,
        "bum_sram_writes": bum_result.n_sram_writes,
    }

    # Phase attribution: end-to-end culled training, dense vs sparse mode.
    # Warm-up runs past the occupancy grid's warm-up and several refreshes,
    # so the timed steps see converged culling-level batch sparsity.
    def _phases(config):
        trainer = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                          config=config, seed=0)
        for _ in range(64):
            trainer.train_step()
        trainer.profiler = PhaseTimer()
        for _ in range(phase_iterations):
            trainer.train_step()
        return trainer.profiler.summary()

    phases = {"dense": _phases(base), "sparse": _phases(coo_config)}

    return {
        "differential_steps": differential_steps,
        "sparse_matches_dense": bool(sparse_matches_dense),
        "keep_fraction": SPARSE_KEEP_FRACTION,
        "sizes": sizes,
        "sparse_optimizer_speedup": largest["optimizer_speedup"],
        "sparse_backward_speedup": largest["backward_speedup"],
        "bum": bum,
        "phase_ms_per_iter": {
            mode: {name: stats["mean_ms"] for name, stats in summary.items()}
            for mode, summary in phases.items()
        },
    }


#: Backends the benchmark always reports on.  Optional backends that are not
#: registered in this environment (e.g. ``numba`` without numba installed)
#: appear as ``{"skipped": true, "reason": ...}`` rows instead of being
#: omitted — CI asserts on these keys, so missing-key failures would
#: otherwise mask a merely-uninstalled dependency as a benchmark bug.
BACKEND_SECTION_NAMES = ("numpy", "numpy_fused", "numba")


def bench_backends(image_size: int, reference_steps: int,
                   timing_iters: int) -> dict:
    """Per-backend training throughput with bit-identity differential pins.

    Every registered :class:`~repro.backend.ArrayBackend` trains the same
    scene under the same RNG streams.  Two pins anchor the section:

    * ``numpy_reference_matches_seed`` — the ``numpy`` backend's losses must
      equal the frozen pre-pipeline reference loop's (the same oracle the
      culling and precision sections use), proving the backend seam changed
      nothing on the default path;
    * per-backend ``losses_match_numpy`` — each alternate backend's loss
      trajectory compared bit-exactly against the ``numpy`` backend's (the
      in-repo ``numpy_fused`` backend is *required* to match; see
      ``docs/backend.md`` for the construction that makes it exact).
    """
    dataset = nerf_synthetic_like(["lego"], n_train_views=6, n_test_views=1,
                                  image_size=image_size)[0]
    base = bench_config(0.25, 0.5)
    points_per_iter = base.batch_pixels * base.n_samples_per_ray

    # The frozen oracle: losses of the pre-pipeline six-step loop (which
    # itself runs under the numpy reference backend by construction).
    numpy_config = dataclasses.replace(base, backend="numpy")
    reference = _reference_dense_losses(dataset, numpy_config, 0,
                                        reference_steps)

    registered = available_backends()
    results: dict = {}
    numpy_losses = None
    for name in BACKEND_SECTION_NAMES:
        if name not in registered:
            results[name] = {
                "skipped": True,
                "reason": f"backend {name!r} is not registered in this "
                          f"environment (optional dependency not installed)",
            }
            continue
        config = dataclasses.replace(base, backend=name)
        probe = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                        config=config, seed=0)
        losses = [probe.train_step()["loss"] for _ in range(reference_steps)]
        if name == "numpy":
            numpy_losses = losses
        timed = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                        config=config, seed=0)
        for _ in range(3):
            timed.train_step()                            # shape warm-up
        best = min(_timed(timed.train_step) for _ in range(timing_iters))
        results[name] = {
            "skipped": False,
            "train_ms_per_iter": best * 1e3,
            "points_per_s": points_per_iter / max(best, 1e-12),
            "losses_match_numpy": (losses == numpy_losses
                                   if numpy_losses is not None else None),
        }
    extra = [n for n in registered if n not in BACKEND_SECTION_NAMES]
    if extra:
        print(f"note: registered backends not benchmarked: {extra}")
    return {
        "image_size": image_size,
        "reference_steps": reference_steps,
        "points_per_iter": points_per_iter,
        "available": list(registered),
        "numpy_reference_matches_seed": bool(numpy_losses == reference),
        "backends": results,
    }


def bench_scheduling(reference_steps: int, n_steps: int, trace_steps: int,
                     bum_trace_cap: int) -> dict:
    """Locality-aware ray scheduling vs the uniform random pixel draw.

    Two sub-measurements:

    * **differential** — a dense default-config trainer (which now routes
      Step ❶ through :class:`~repro.nerf.scheduling.UniformScheduler`) against
      the frozen pre-scheduler reference loop, asserted loss-bit-identical
      over ``reference_steps`` steps;
    * **schedule comparison** — one culled + sparse training run per ray
      schedule at a locality-sensitive workload (96 samples/ray so
      neighbouring rays overlap in the fine grid levels, Morton tiles of
      16x16 pixels, ``address_sort=True`` for the non-uniform schedules).
      After warm-up, the density grid's recorded write-address trace from
      each of the last ``trace_steps`` steps is replayed through the modeled
      16-entry / 16-cycle :class:`BackPropUpdateMerger` (bounded to
      ``bum_trace_cap`` updates, the same protocol as the sparse section)
      and the merge rates averaged.  Touched-rows, ms/iteration and
      equal-step PSNR come from the same runs, so the locality win and its
      end-to-end cost/benefit sit in one table.

    The replay is deterministic given seed and step count — no wall-clock
    dependence — which is what lets CI pin ``merge_rate_scheduled`` to an
    absolute floor rather than a flaky relative margin.
    """
    dataset = synthetic_datasets()[0]

    # Differential: ray_schedule="uniform" (the default) must consume the
    # pixel RNG stream exactly as sample_pixel_batch did pre-scheduler.
    dense_config = bench_config(0.25, 0.5)
    reference = _reference_dense_losses(dataset, dense_config, 0, reference_steps)
    probe_model = DecoupledRadianceField(dense_config, seed=0)
    probe = Trainer(probe_model, dataset, config=dense_config, seed=0)
    uniform_losses = [probe.train_step()["loss"] for _ in range(reference_steps)]
    uniform_matches_reference = uniform_losses == reference
    if not uniform_matches_reference:
        raise AssertionError(
            "uniform schedule deviates from the reference trainer")

    base = dataclasses.replace(
        bench_config(0.25, 0.5), culling_enabled=True, sparse_updates=True,
        n_samples_per_ray=96, batch_pixels=192, tile_size=16)
    schedules = {}
    for schedule in RAY_SCHEDULES:
        config = dataclasses.replace(
            base, ray_schedule=schedule, address_sort=(schedule != "uniform"))
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, dataset, config=config, seed=0)
        merge_rates, unique_fractions, rows_touched, kept = [], [], [], []
        start = time.perf_counter()
        for step in range(n_steps):
            metrics = trainer.train_step()
            if step < n_steps - trace_steps:
                continue
            trace = model.encoder.density_grid.last_access.flat_addresses()
            replay = replay_trace(trace, cap=bum_trace_cap)
            merge_rates.append(replay["merge_rate"])
            unique_fractions.append(
                replay["unique_addresses"] / max(replay["n_updates"], 1))
            rows_touched.append(metrics["grid_rows_touched"])
            kept.append(metrics["queries_kept"])
        train_s = time.perf_counter() - start
        result = evaluate_model(
            model, dataset, n_views=1, n_samples=48,
            white_background=config.white_background,
            occupancy=trainer.occupancy,
            early_termination_tau=config.early_termination_tau,
            policy=trainer.policy)
        schedules[schedule] = {
            "address_sort": config.address_sort,
            "bum_merge_rate": float(np.mean(merge_rates)),
            "unique_rows_fraction": float(np.mean(unique_fractions)),
            "grid_rows_touched": float(np.mean(rows_touched)),
            "queries_kept": float(np.mean(kept)),
            "train_ms_per_iter": train_s / n_steps * 1e3,
            "rgb_psnr": result.rgb_psnr,
        }

    return {
        "n_steps": n_steps,
        "trace_steps": trace_steps,
        "bum_trace_cap": bum_trace_cap,
        "batch_pixels": base.batch_pixels,
        "n_samples_per_ray": base.n_samples_per_ray,
        "tile_size": base.tile_size,
        "uniform_matches_reference": uniform_matches_reference,
        "schedules": schedules,
        "merge_rate_uniform": schedules["uniform"]["bum_merge_rate"],
        "merge_rate_scheduled": schedules["occupancy"]["bum_merge_rate"],
    }


def _serving_load(service: SceneService, scene: str, n_clients: int,
                  requests_per_client: int):
    """Open-loop burst load: each client submits all its renders, then waits.

    A closed loop (submit, wait, submit) self-synchronises the clients down
    to batch sizes of ~2 and hides the coalescing win; real serving load is
    bursty, so each client enqueues its whole demand up front and the queue
    depth lets the worker form large same-scene batches.  Returns the
    per-request service latencies (ms) and the wall-clock seconds from the
    start barrier to the last client finishing.
    """
    latencies: list = []
    errors: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(n_clients + 1)

    def client() -> None:
        try:
            barrier.wait()
            handles = [service.render(scene)
                       for _ in range(requests_per_client)]
            results = [handle.result(timeout=600.0) for handle in handles]
            with lock:
                latencies.extend(result.service_ms for result in results)
        except BaseException as exc:  # surface worker/client failures
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=client, name=f"bench-client-{i}")
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    if errors:
        raise errors[0]
    return latencies, wall_s


def bench_serving(n_clients: int, requests_per_client: int, image_size: int,
                  reference_steps: int = 10) -> dict:
    """Multi-tenant serving: cross-request ray batching vs per-request.

    One scene, one worker, ``n_clients`` concurrent clients each bursting
    ``requests_per_client`` renders — the configuration where coalescing
    must pay for its gather/scatter overhead purely through engine-stream
    utilisation.  Also pins the serving differential: an unbatched
    single-client train path must reproduce the frozen pre-pipeline
    reference loop bit-exactly.
    """
    dataset = nerf_synthetic_like(["lego"], n_train_views=4, n_test_views=1,
                                  image_size=image_size)[0]
    config = bench_config(0.25, 0.5)

    # Differential check: routing training through the job queue (submit ->
    # worker thread -> residency checkout) must not perturb the trajectory.
    reference = _reference_dense_losses(dataset, config, 0, reference_steps)
    with SceneService([dataset], config, seed=0, n_workers=1,
                      coalesce=False) as probe:
        first = probe.train(dataset.name,
                            n_steps=reference_steps - reference_steps // 2)
        second = probe.train(dataset.name, n_steps=reference_steps // 2)
        losses = (list(first.result(timeout=600.0).losses)
                  + list(second.result(timeout=600.0).losses))
    single_client_matches_reference = losses == reference
    if not single_client_matches_reference:
        raise AssertionError(
            "serving train path deviates from the reference trainer")

    total_renders = n_clients * requests_per_client
    modes = {}
    for mode, coalesce in (("batched", True), ("per_request", False)):
        service = SceneService([dataset], config, seed=0, n_workers=1,
                               coalesce=coalesce)
        try:
            # Warm up: instantiate the trainer and size the worker arena so
            # the timed window measures steady-state serving.
            service.render(dataset.name).result(timeout=600.0)
            latencies, wall_s = _serving_load(service, dataset.name,
                                              n_clients, requests_per_client)
            stats = service.stats()
        finally:
            service.close()
        modes[mode] = {
            "renders_per_s": total_renders / wall_s,
            "wall_s": wall_s,
            "p50_ms": float(np.percentile(latencies, 50)),
            "p99_ms": float(np.percentile(latencies, 99)),
            "mean_service_ms": float(np.mean(latencies)),
            "mean_batch_size": stats["mean_batch_size"],
            "max_batch_size": stats["max_batch_size"],
        }

    return {
        "n_clients": n_clients,
        "requests_per_client": requests_per_client,
        "total_renders": total_renders,
        "image_size": image_size,
        "rays_per_render": dataset.test_views[0].camera.n_pixels,
        "n_workers": 1,
        "single_client_matches_reference": bool(
            single_client_matches_reference),
        "batched": modes["batched"],
        "per_request": modes["per_request"],
        "batched_speedup": (modes["batched"]["renders_per_s"]
                            / modes["per_request"]["renders_per_s"]),
    }


def bench_chaos(image_size: int, rounds: int, n_steps: int,
                fault_rate: float = 0.05, fault_seed: int = 0) -> dict:
    """Chaos drill: deterministic fault injection under mixed serving load.

    Two scenes share one residency slot so every round forces checkpoint
    save/load traffic, and seeded transient faults fire at rate
    ``fault_rate`` on the ``checkpoint.save`` / ``checkpoint.load`` /
    ``worker.execute`` sites.  The contract being measured is not speed but
    *answer preservation*: every job the retry layer completes must return
    the bit-identical result of the same schedule run fault-free.  Renders
    run uncoalesced because coalesced and per-request renders agree only to
    ~1e-8, and this section's whole point is exact equality.
    """
    datasets = nerf_synthetic_like(["lego", "ficus"], n_train_views=3,
                                   n_test_views=1, image_size=image_size)
    config = bench_config(0.25, 0.5)
    # Deep attempt budget: with k fault points per attempt the chance of a
    # job exhausting six independent draws at rate 0.05 is negligible, so
    # availability failures indicate a retry bug, not bad luck.
    policy = RetryPolicy(max_attempts=6, backoff_base_s=0.002,
                         backoff_max_s=0.02)

    def run(checkpoint_dir: Path, injector):
        if injector is not None:
            install_injector(injector)
        try:
            start = time.perf_counter()
            with SceneService(datasets, config, seed=0, n_workers=1,
                              checkpoint_dir=checkpoint_dir,
                              max_resident_scenes=1, coalesce=False,
                              keep_generations=2,
                              retry_policy=policy) as service:
                handles = []
                for _ in range(rounds):
                    for dataset in datasets:
                        handles.append(service.train(dataset.name,
                                                     n_steps=n_steps))
                        handles.append(service.render(dataset.name))
                results = []
                for handle in handles:
                    try:
                        results.append(handle.result(timeout=600.0))
                    except JobPoisoned:
                        results.append(None)
                stats = service.stats()
            return results, stats, time.perf_counter() - start
        finally:
            if injector is not None:
                uninstall_injector()

    with tempfile.TemporaryDirectory() as tmp:
        reference, _, ref_wall = run(Path(tmp) / "ckpts", None)
    injector = FaultInjector(seed=fault_seed)
    for site in ("checkpoint.save", "checkpoint.load", "worker.execute"):
        injector.add(site, "raise-transient", rate=fault_rate)
    with tempfile.TemporaryDirectory() as tmp:
        chaos, stats, chaos_wall = run(Path(tmp) / "ckpts", injector)

    total = len(chaos)
    poisoned = sum(result is None for result in chaos)
    completed = total - poisoned
    availability = completed / max(1, total - poisoned)
    bit_equal = poisoned == 0
    for got, want in zip(chaos, reference):
        if got is None:
            continue
        if hasattr(want, "losses"):
            bit_equal &= (got.losses == want.losses
                          and got.iteration == want.iteration)
        else:
            bit_equal &= (np.array_equal(got.colors, want.colors)
                          and np.array_equal(got.depth, want.depth))

    # Torn-write drill: truncate the newest checkpoint of an evicted scene
    # and verify residency falls back to the previous generation instead of
    # losing the scene.
    with tempfile.TemporaryDirectory() as tmp:
        manager = ResidencyManager(config, seed=0, checkpoint_dir=Path(tmp),
                                   max_resident_scenes=1, keep_generations=2)
        for dataset in datasets:
            manager.add_scene(dataset)
        first, second = datasets[0].name, datasets[1].name
        slot = manager.checkout(first)
        slot.trainer.run_steps(n_steps, slot.history)
        manager.save(slot)
        slot.trainer.run_steps(n_steps, slot.history)
        manager.save(slot)                      # rotates older file to .g1
        manager.checkout(second)                # evicts the first scene
        path = manager.checkpoint_path(first)
        with open(path, "r+b") as handle:
            handle.truncate(path.stat().st_size // 2)
        slot = manager.checkout(first)
        fallback = {
            "recovered_iteration": int(slot.trainer.iteration),
            "expected_iteration": int(n_steps),
            "fallback_loads": int(manager.fallback_loads),
            "fallback_worked": bool(slot.trainer.iteration == n_steps
                                    and manager.fallback_loads == 1),
        }

    return {
        "image_size": image_size,
        "rounds": rounds,
        "n_steps": n_steps,
        "fault_rate": fault_rate,
        "fault_seed": fault_seed,
        "fault_sites": ["checkpoint.save", "checkpoint.load",
                        "worker.execute"],
        "total_jobs": total,
        "completed_jobs": completed,
        "poisoned_jobs": poisoned,
        "availability": float(availability),
        "faults_injected": int(stats["faults_injected"]),
        "retries": int(stats["retries"]),
        "requeues": int(stats["requeues"]),
        "fallback_loads": int(stats["fallback_loads"]),
        "bit_equal_to_reference": bool(bit_equal),
        "fault_free_wall_s": ref_wall,
        "chaos_wall_s": chaos_wall,
        "chaos_overhead": chaos_wall / ref_wall,
        "generation_fallback": fallback,
    }


def bench_divergence(image_size: int, n_steps: int, timing_repeats: int,
                     fault_seeds=(0, 1)) -> dict:
    """Divergence-recovery drill: the numerical-health watchdog under fire.

    Three contracts, each per fault seed where applicable:

    * **Unguarded poisoning** — a single seeded ``corrupt-grad`` fault
      leaves an unguarded trainer with non-finite parameters, and
      ``save_trainer_checkpoint`` refuses to persist the poisoned state.
    * **Guarded recovery** — the same fault under guards rolls back to the
      last snapshot, replays with LR backoff + batch skip, finishes the
      full schedule with finite state, and lands within 0.5 dB of the
      fault-free PSNR.
    * **Zero-cost when healthy** — a guarded, trip-free run is
      bit-identical to the unguarded reference, and the per-step guard
      scan costs < 3% of an unguarded training step (best-of interleaved
      timing, snapshot capture excluded: that is amortised over
      ``snapshot_every`` steps and measured by the wall-clock ratio).
    """
    dataset = nerf_synthetic_like(["lego"], n_train_views=3, n_test_views=1,
                                  image_size=image_size)[0]
    base = bench_config(0.25, 0.5)
    # Tight snapshots bound the rollback distance, and a mild backoff keeps
    # the post-recovery tail converging: together they hold the recovered
    # PSNR within the 0.5 dB budget asserted in CI.
    policy = HealthPolicy(snapshot_every=max(2, n_steps // 16),
                          snapshot_ring=2, lr_backoff=0.75)
    guarded = dataclasses.replace(base, health=policy)
    fault_after = (3 * n_steps) // 4

    def run(config, injector=None):
        trainer = Trainer(DecoupledRadianceField(config, seed=0), dataset,
                          config=config, seed=0)
        history = TrainingHistory()
        if injector is not None:
            install_injector(injector)
        start = time.perf_counter()
        try:
            trainer.run_steps(n_steps, history)
        finally:
            if injector is not None:
                uninstall_injector()
        return trainer, history, time.perf_counter() - start

    def corrupting_injector(fault_seed):
        injector = FaultInjector(seed=fault_seed)
        injector.add("train.backward", "corrupt-grad", after=fault_after,
                     times=1)
        return injector

    def params_finite(trainer):
        return all(bool(np.isfinite(p.data).all())
                   for p in trainer.model.parameters())

    # Fault-free reference (guards off) and the guarded no-trip twin.
    ref_trainer, ref_history, ref_wall = run(base)
    ref_result = ref_trainer.finalize(ref_history, eval_views=1,
                                      eval_samples=24)
    twin_trainer, twin_history, twin_wall = run(guarded)
    bit_equal = (
        twin_trainer.health.guard_trips == 0
        and list(twin_history.losses) == list(ref_history.losses)
        and all(np.array_equal(a.data, b.data)
                for a, b in zip(ref_trainer.model.parameters(),
                                twin_trainer.model.parameters())))

    # Steady-state scan overhead: best-of interleaved timing over *blocks*
    # of steps (single steps are too short for a stable ratio), so machine
    # drift hits both trainers equally.  train_step carries the guard scan
    # but not the snapshot copy, which only run_steps takes (and the wall
    # ratio below prices in).
    timing_block = 5
    timers = {"guards_off": Trainer(DecoupledRadianceField(base, seed=0),
                                    dataset, config=base, seed=0),
              "guards_on": Trainer(DecoupledRadianceField(guarded, seed=0),
                                   dataset, config=guarded, seed=0)}
    for trainer in timers.values():          # warm-up
        for _ in range(3):
            trainer.train_step()

    def step_block(trainer):
        for _ in range(timing_block):
            trainer.train_step()

    block_times = _time_interleaved(
        {name: (lambda t=trainer: step_block(t))
         for name, trainer in timers.items()},
        timing_repeats)
    step_times = {name: t / timing_block for name, t in block_times.items()}
    guard_step_ratio = (step_times["guards_on"]
                        / step_times["guards_off"]) - 1.0
    # The asserted overhead figure times the guard *scan* itself against an
    # unguarded step: the scan is the exact per-step work guards add, and
    # the direct ratio is immune to the run-to-run jitter that dominates a
    # full-step A/B comparison at millisecond step times.
    scan_trainer = timers["guards_on"]
    scan_params = scan_trainer.model.parameters()

    def scan_block():
        for _ in range(timing_block):
            scan_trainer.health.check(scan_trainer.iteration, 0.5,
                                      scan_params)

    scan_time = _time_interleaved({"scan": scan_block},
                                  timing_repeats)["scan"] / timing_block
    guard_overhead = scan_time / step_times["guards_off"]

    seeds = {}
    for fault_seed in fault_seeds:
        # Guards off: the fault silently poisons the parameters, and the
        # checkpoint layer refuses to persist them.
        poisoned_trainer, _, _ = run(base, corrupting_injector(fault_seed))
        save_refused = False
        with tempfile.TemporaryDirectory() as tmp:
            try:
                save_trainer_checkpoint(Path(tmp) / "poisoned.ckpt.npz",
                                        poisoned_trainer)
            except NonFiniteCheckpointError:
                save_refused = True

        # Guards on: detect, roll back, replay, finish the full schedule.
        rec_trainer, rec_history, _ = run(guarded,
                                          corrupting_injector(fault_seed))
        rec_result = rec_trainer.finalize(rec_history, eval_views=1,
                                          eval_samples=24)
        seeds[str(fault_seed)] = {
            "unguarded_poisoned": not params_finite(poisoned_trainer),
            "save_refused": bool(save_refused),
            "recovered_finite": params_finite(rec_trainer),
            "recovered_iterations": int(rec_trainer.iteration),
            "guard_trips": int(rec_result.guard_trips),
            "rollbacks": int(rec_result.rollbacks),
            "lr_backoffs": int(rec_result.lr_backoffs),
            "batch_skips": int(rec_result.batch_skips),
            "recovered_psnr_db": float(rec_result.rgb_psnr),
            "psnr_gap_db": float(ref_result.rgb_psnr
                                 - rec_result.rgb_psnr),
        }

    return {
        "image_size": image_size,
        "n_steps": n_steps,
        "fault_after": fault_after,
        "fault_seeds": [int(s) for s in fault_seeds],
        "snapshot_every": policy.snapshot_every,
        "lr_backoff": policy.lr_backoff,
        "reference_psnr_db": float(ref_result.rgb_psnr),
        "bit_equal_to_reference": bool(bit_equal),
        "guard_scan_overhead": float(guard_overhead),
        "guard_scan_ms": float(1e3 * scan_time),
        "guard_step_ratio": float(guard_step_ratio),
        "guarded_wall_overhead": float(twin_wall / ref_wall - 1.0),
        "step_ms": {name: 1e3 * t for name, t in step_times.items()},
        "seeds": seeds,
    }


class SectionSkipped(RuntimeError):
    """Raised by a bench section that cannot run in this environment."""


def run_section(fn, *args, **kwargs) -> dict:
    """Run one bench section, normalising the ``skipped`` schema.

    Every section dict carries ``"skipped": False``; a section raising
    :class:`SectionSkipped` becomes ``{"skipped": True, "reason": ...}``
    instead of dropping its key from the payload, so consumers (the CI
    asserts, plot scripts) can distinguish an environment limitation from a
    bench bug by schema alone.
    """
    try:
        result = fn(*args, **kwargs)
    except SectionSkipped as exc:
        return {"skipped": True, "reason": str(exc)}
    result.setdefault("skipped", False)
    return result


def _announce_skip(title: str, section: dict) -> bool:
    """Print the skip notice for a skipped section; True if it was skipped."""
    if section.get("skipped"):
        print(f"\n== {title}: skipped — {section['reason']}")
        return True
    return False


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for a <60 s CI smoke run")
    parser.add_argument("--workers", type=int, default=0,
                        help="fleet worker processes (0 = in-process round-robin)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_throughput.json")
    args = parser.parse_args()

    if args.smoke:
        engine_points, repeats = 16384, 2
        fleet_scenes, fleet_iterations, fleet_image = 2, 20, 20
        culling_iterations, culling_image = 120, 20
        ckpt_iterations, ckpt_image = 24, 20
        precision_iterations, precision_image = 60, 20
        precision_batch, precision_samples, precision_timing = 512, 32, 6
        # The 2^19-entry table stays in the smoke run: the CI assertion on
        # the sparse-optimiser speedup must see paper-representative
        # sparsity, which small tables cannot exhibit.
        sparse_sizes, sparse_repeats = (14, 19), 3
        sparse_diff_steps, sparse_phase_iters, bum_cap = 20, 20, 40000
        backend_image, backend_steps, backend_timing = 20, 10, 6
        # The schedule comparison keeps full-size steps even in smoke: the
        # merge-rate floor CI asserts is pinned to this exact deterministic
        # workload (seed, steps, trace cap), so shrinking it would change
        # the statistic being asserted, not just its noise.
        sched_ref_steps, sched_steps, sched_trace_steps, sched_cap = 10, 48, 4, 40000
        serve_clients, serve_requests, serve_image = 4, 8, 10
        chaos_rounds, chaos_steps, chaos_image = 4, 2, 10
        div_steps, div_image, div_timing = 40, 12, 5
    else:
        engine_points, repeats = ENGINE_BATCH, 9
        fleet_scenes, fleet_iterations, fleet_image = 3, 80, 28
        culling_iterations, culling_image = 150, 28
        ckpt_iterations, ckpt_image = 60, 28
        precision_iterations, precision_image = 150, 28
        precision_batch, precision_samples, precision_timing = 2048, 48, 10
        sparse_sizes, sparse_repeats = (14, 16, 19), 7
        sparse_diff_steps, sparse_phase_iters, bum_cap = 20, 60, 120000
        backend_image, backend_steps, backend_timing = 28, 20, 10
        sched_ref_steps, sched_steps, sched_trace_steps, sched_cap = 20, 48, 4, 40000
        serve_clients, serve_requests, serve_image = 4, 12, 14
        chaos_rounds, chaos_steps, chaos_image = 6, 3, 14
        div_steps, div_image, div_timing = 80, 16, 9

    engine = run_section(bench_grid_engine, engine_points, repeats)
    if not _announce_skip("Grid-query engine", engine):
        rows = []
        for name, t in engine["timings"].items():
            rows.append([name, f"{t['forward_s'] * 1e3:.1f}",
                         f"{t['backward_s'] * 1e3:.1f}",
                         f"{t['points_per_s'] / 1e3:.0f}k"])
        rows.append(["speedup (fused vs loop)", "", "",
                     f"{engine['speedup']:.2f}x"])
        print_report(
            f"Grid-query engine throughput ({engine_points} points, "
            f"L={ENGINE_GRID.n_levels})",
            ["engine", "forward (ms)", "backward (ms)", "points/s"],
            rows,
        )
        print(f"forward max |diff|: {engine['forward_max_abs_diff']:.2e}   "
              f"grad max |diff|: {engine['grad_max_abs_diff']:.2e}   "
              f"traces identical: {engine['traces_identical']}")

    culling = run_section(bench_dense_vs_culled, culling_iterations,
                          culling_image)
    if not _announce_skip("Dense vs occupancy-culled training", culling):
        print_report(
            f"Dense vs occupancy-culled training ({culling['n_iterations']} "
            f"iters, lego {culling['image_size']}px)",
            ["pipeline", "queries/iter", "train (s)", "rays/s", "RGB PSNR"],
            [
                ["dense", f"{culling['queries_per_iter_dense']:.0f}",
                 f"{culling['dense']['train_s']:.1f}",
                 f"{culling['dense']['rays_per_s'] / 1e3:.1f}k",
                 f"{culling['dense']['rgb_psnr']:.2f}"],
                ["culled (+refresh)",
                 f"{culling['queries_per_iter_culled']:.0f} "
                 f"(+{culling['refresh_queries_per_iter']:.0f})",
                 f"{culling['culled']['train_s']:.1f}",
                 f"{culling['culled']['rays_per_s'] / 1e3:.1f}k",
                 f"{culling['culled']['rgb_psnr']:.2f}"],
                ["net reduction / speedup",
                 f"{culling['queries_reduction']:.1f}x",
                 f"{culling['train_speedup']:.2f}x", "",
                 f"{culling['psnr_gap_db']:+.2f} dB"],
            ],
        )
        print(f"dense matches reference trainer: "
              f"{culling['dense_matches_reference']}   "
              f"occupancy fraction: {culling['occupancy_fraction']:.3f}   "
              f"keep fraction (tail): {culling['keep_fraction_tail']:.3f}")

    fleet = run_section(bench_fleet, fleet_scenes, fleet_iterations,
                        fleet_image, args.workers)
    if not _announce_skip("SceneFleet throughput", fleet):
        print_report(
            f"SceneFleet throughput ({fleet['schedule']})",
            ["scenes", "iterations", "mean RGB PSNR", "wall clock (s)",
             "scenes/hour"],
            [[f"{fleet['n_scenes']:.0f}", f"{fleet['n_iterations']:.0f}",
              f"{fleet['mean_rgb_psnr']:.2f}", f"{fleet['wall_clock_s']:.1f}",
              f"{fleet['scenes_per_hour']:.1f}"]],
        )

    checkpoint = run_section(bench_checkpoint, ckpt_iterations, ckpt_image)
    if not _announce_skip("Checkpoint overhead", checkpoint):
        print_report(
            f"Checkpoint overhead ({checkpoint['n_parameters']} params, "
            f"{checkpoint['n_iterations']} iters trained)",
            ["save (ms)", "load (ms)", "size (KB)", "round-trip", "resume"],
            [[f"{checkpoint['save_s'] * 1e3:.1f}",
              f"{checkpoint['load_s'] * 1e3:.1f}",
              f"{checkpoint['bytes'] / 1024:.0f}",
              "exact" if checkpoint["roundtrip_exact"] else "DIVERGED",
              "bit-identical" if checkpoint["resume_bit_identical"]
              else "DIVERGED"]],
        )
        print(f"fleet interrupt at {checkpoint['fleet_interrupt_at']}/"
              f"{checkpoint['fleet_total_iterations']} iters, "
              f"{checkpoint['fleet_evictions']} evictions during partial run")

    precision = run_section(bench_precision, precision_iterations,
                            precision_image, precision_batch,
                            precision_samples, precision_timing)
    if not _announce_skip("Compute-precision policy", precision):
        timing = precision["timing_ms_per_iter"]
        alloc = precision["allocation"]
        print_report(
            f"Compute-precision policy ({precision_batch}x{precision_samples} "
            f"rays x samples per iteration)",
            ["policy", "ms/iter", "speedup", "RGB PSNR", "peak temp/iter"],
            [
                ["float64 reference path",
                 f"{timing['float64_reference']:.1f}", "1.00x",
                 f"{precision['quality']['rgb_psnr_float64']:.2f}",
                 f"{alloc['float64_preallocating_reference']['peak_temporary_bytes_per_iter'] / 1e6:.1f} MB"],
                ["float64 + arena", f"{timing['float64']:.1f}",
                 f"{precision['arena_speedup_float64']:.2f}x", "", ""],
                ["float32 + arena (fast path)", f"{timing['float32']:.1f}",
                 f"{precision['float32_speedup']:.2f}x",
                 f"{precision['quality']['rgb_psnr_float32']:.2f}",
                 f"{alloc['float32_arena']['peak_temporary_bytes_per_iter'] / 1e3:.0f} KB"],
            ],
        )
        print(f"float64 matches reference: "
              f"{precision['float64_matches_reference']}   "
              f"PSNR gap: {precision['quality']['psnr_gap_db']:+.2f} dB   "
              f"arena hit rate: {alloc['float32_arena']['arena_hit_rate']:.3f}   "
              f"steady-state large allocs/iter: "
              f"{alloc['large_allocs_per_iter_steady']}")

    sparse = run_section(bench_sparse, sparse_sizes, sparse_repeats,
                         sparse_diff_steps, sparse_phase_iters, bum_cap)
    if not _announce_skip("Sparse updates", sparse):
        print_report(
            f"Sparse updates: dense Adam vs COO + lazy step "
            f"({sparse['sizes'][0]['n_points']} touched-batch points, "
            f"keep fraction {sparse['keep_fraction']:.2f})",
            ["table entries", "touched rows", "optimizer dense/sparse (ms)",
             "speedup", "backward speedup"],
            [
                [f"{row['total_entries']}",
                 f"{row['touched_rows']} ({row['touched_fraction']:.1%})",
                 f"{row['optimizer_step_ms']['dense']:.2f} / "
                 f"{row['optimizer_step_ms']['sparse']:.2f}",
                 f"{row['optimizer_speedup']:.2f}x",
                 f"{row['backward_speedup']:.2f}x"]
                for row in sparse["sizes"]
            ],
        )
        bum = sparse["bum"]
        phase = sparse["phase_ms_per_iter"]
        print(f"sparse matches dense oracle over "
              f"{sparse['differential_steps']} "
              f"steps: {sparse['sparse_matches_dense']}   "
              f"BUM merge rate {bum['bum_merge_rate']:.3f} / write reduction "
              f"{bum['bum_write_reduction']:.3f} vs software perfect-merge "
              f"{bum['software_write_reduction']:.3f}")
        print("phase ms/iter (dense -> sparse): "
              + "   ".join(
                  f"{name} {phase['dense'].get(name, 0.0):.2f} -> "
                  f"{phase['sparse'].get(name, 0.0):.2f}"
                  for name in (TrainPhase.BACKWARD_SCATTER,
                               TrainPhase.OPTIMIZER_STEP)))

    backends = run_section(bench_backends, backend_image, backend_steps,
                           backend_timing)
    if not _announce_skip("Array backends", backends):
        backend_rows = []
        for name in BACKEND_SECTION_NAMES:
            row = backends["backends"][name]
            if row["skipped"]:
                backend_rows.append([name, "skipped", "", ""])
            else:
                match = row["losses_match_numpy"]
                backend_rows.append([
                    name, f"{row['train_ms_per_iter']:.1f}",
                    f"{row['points_per_s'] / 1e3:.0f}k",
                    "n/a (reference)" if match is None
                    else ("bit-identical" if match else "DIVERGED"),
                ])
        print_report(
            f"Array backends ({backends['points_per_iter']} points/iter)",
            ["backend", "ms/iter", "points/s", "vs numpy"],
            backend_rows,
        )
        print(f"numpy backend matches reference trainer: "
              f"{backends['numpy_reference_matches_seed']}")

    scheduling = run_section(bench_scheduling, sched_ref_steps, sched_steps,
                             sched_trace_steps, sched_cap)
    if not _announce_skip("Ray scheduling", scheduling):
        print_report(
            f"Ray scheduling ({scheduling['batch_pixels']} px x "
            f"{scheduling['n_samples_per_ray']} samples, "
            f"{scheduling['n_steps']} steps, tile {scheduling['tile_size']})",
            ["schedule", "BUM merge rate", "unique rows", "ms/iter",
             "RGB PSNR"],
            [
                [name,
                 f"{row['bum_merge_rate']:.3f}",
                 f"{row['grid_rows_touched']:.0f} "
                 f"({row['unique_rows_fraction']:.1%} of trace)",
                 f"{row['train_ms_per_iter']:.0f}",
                 f"{row['rgb_psnr']:.2f}"]
                for name, row in scheduling["schedules"].items()
            ],
        )
        print(f"uniform matches reference trainer: "
              f"{scheduling['uniform_matches_reference']}   "
              f"merge rate uniform -> scheduled: "
              f"{scheduling['merge_rate_uniform']:.3f} -> "
              f"{scheduling['merge_rate_scheduled']:.3f}")

    serving = run_section(bench_serving, serve_clients, serve_requests,
                          serve_image)
    if not _announce_skip("Multi-tenant serving", serving):
        print_report(
            f"Multi-tenant serving ({serving['n_clients']} clients x "
            f"{serving['requests_per_client']} renders, lego "
            f"{serving['image_size']}px, {serving['n_workers']} worker)",
            ["mode", "renders/s", "p50 (ms)", "p99 (ms)", "mean batch"],
            [
                ["batched", f"{serving['batched']['renders_per_s']:.1f}",
                 f"{serving['batched']['p50_ms']:.0f}",
                 f"{serving['batched']['p99_ms']:.0f}",
                 f"{serving['batched']['mean_batch_size']:.1f}"],
                ["per-request",
                 f"{serving['per_request']['renders_per_s']:.1f}",
                 f"{serving['per_request']['p50_ms']:.0f}",
                 f"{serving['per_request']['p99_ms']:.0f}",
                 f"{serving['per_request']['mean_batch_size']:.1f}"],
                ["speedup (batched vs per-request)",
                 f"{serving['batched_speedup']:.2f}x", "", "", ""],
            ],
        )
        print(f"single-client train path matches reference trainer: "
              f"{serving['single_client_matches_reference']}   "
              f"rays/render: {serving['rays_per_render']}   "
              f"max batch: {serving['batched']['max_batch_size']}")

    chaos = run_section(bench_chaos, chaos_image, chaos_rounds, chaos_steps,
                        fault_seed=int(os.environ.get("REPRO_FAULT_SEED",
                                                      "0")))
    if not _announce_skip("Fault-tolerant serving (chaos)", chaos):
        print_report(
            f"Chaos drill ({chaos['rounds']} rounds x 2 scenes, "
            f"{chaos['image_size']}px, faults at p={chaos['fault_rate']} on "
            f"{len(chaos['fault_sites'])} sites, seed "
            f"{chaos['fault_seed']})",
            ["metric", "value"],
            [
                ["jobs (completed/total)",
                 f"{chaos['completed_jobs']}/{chaos['total_jobs']}"],
                ["availability", f"{chaos['availability']:.3f}"],
                ["faults injected", f"{chaos['faults_injected']}"],
                ["retries / requeues",
                 f"{chaos['retries']} / {chaos['requeues']}"],
                ["poisoned jobs", f"{chaos['poisoned_jobs']}"],
                ["bit-equal to fault-free run",
                 f"{chaos['bit_equal_to_reference']}"],
                ["chaos overhead (wall)", f"{chaos['chaos_overhead']:.2f}x"],
                ["generation fallback recovered",
                 f"{chaos['generation_fallback']['fallback_worked']}"],
            ],
        )

    divergence = run_section(bench_divergence, div_image, div_steps,
                             div_timing)
    if not _announce_skip("Divergence recovery (health watchdog)",
                          divergence):
        rows = [
            ["reference PSNR (fault-free, guards off)",
             f"{divergence['reference_psnr_db']:.2f} dB"],
            ["no-trip run bit-equal to reference",
             f"{divergence['bit_equal_to_reference']}"],
            ["guard scan overhead (per step)",
             f"{100.0 * divergence['guard_scan_overhead']:.2f}% "
             f"({divergence['guard_scan_ms']:.3f} ms)"],
            ["guarded wall overhead (incl. snapshots)",
             f"{100.0 * divergence['guarded_wall_overhead']:+.2f}%"],
        ]
        for seed, drill in sorted(divergence["seeds"].items()):
            rows.append(
                [f"seed {seed}: unguarded poisoned / save refused",
                 f"{drill['unguarded_poisoned']} / {drill['save_refused']}"])
            rows.append(
                [f"seed {seed}: recovered (trips/rollbacks/backoffs)",
                 f"{drill['guard_trips']}/{drill['rollbacks']}"
                 f"/{drill['lr_backoffs']}"])
            rows.append(
                [f"seed {seed}: recovered PSNR (gap vs reference)",
                 f"{drill['recovered_psnr_db']:.2f} dB "
                 f"({drill['psnr_gap_db']:+.2f})"])
        print_report(
            f"Divergence drill ({divergence['n_steps']} steps, "
            f"{divergence['image_size']}px, corrupt-grad at step "
            f"{divergence['fault_after'] + 1}, seeds "
            f"{divergence['fault_seeds']})",
            ["metric", "value"], rows)

    payload = {"engine": engine, "culling": culling, "fleet": fleet,
               "checkpoint": checkpoint, "precision": precision,
               "sparse": sparse, "backends": backends,
               "scheduling": scheduling, "serving": serving, "chaos": chaos,
               "divergence": divergence,
               "smoke": bool(args.smoke)}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nWrote {args.output}")


if __name__ == "__main__":
    main()
