"""Throughput benchmark: fused grid engine and multi-scene fleet.

Two measurements back the engine layer introduced with the fused refactor:

1. **Grid engine** — forward + backward points/sec of the fused stacked-kernel
   engine versus the original per-level loop on a 65k-point batch, with a
   differential check that the two engines produce identical outputs
   (<= 1e-10), identical access traces and matching table gradients.
2. **Fleet** — scenes/hour of :class:`repro.training.SceneFleet` on a small
   suite of procedural scenes (train + eval, end to end).

Results are printed and written to ``BENCH_throughput.json`` next to the
repository root.  ``--smoke`` shrinks both measurements for CI (< 30 s).

Run with:  PYTHONPATH=src python benchmarks/bench_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.training.fleet import SceneFleet
from repro.utils.seeding import new_rng

try:
    from benchmarks.common import bench_config, print_report
except ImportError:                      # run as a script from benchmarks/
    from common import bench_config, print_report

#: Grid used for the engine measurement (reduced-scale Instant-NGP shape).
ENGINE_GRID = HashGridConfig(
    n_levels=8,
    n_features_per_level=2,
    log2_hashmap_size=14,
    base_resolution=16,
    finest_resolution=256,
)
ENGINE_BATCH = 65536
#: Fused-engine streaming chunk: keeps every intermediate plane inside the
#: cache hierarchy (and bounds memory for arbitrarily large batches).
ENGINE_CHUNK = 4096


def _time_interleaved(fns: dict, repeats: int) -> dict:
    """Best-of-``repeats`` wall time per labelled callable.

    The callables are cycled within each round (A, B, A, B, ...) rather than
    timed in separate blocks, so machine-state drift (turbo, cache, noisy
    neighbours) hits every engine equally instead of biasing one block.
    """
    best = {name: float("inf") for name in fns}
    for _ in range(repeats):
        for name, fn in fns.items():
            start = time.perf_counter()
            fn()
            best[name] = min(best[name], time.perf_counter() - start)
    return best


def bench_grid_engine(n_points: int, repeats: int) -> dict:
    """Measure fused vs per-level-loop forward+backward throughput."""
    rng = new_rng(0)
    points = new_rng(1).uniform(size=(n_points, 3))
    grad = np.ones((n_points, ENGINE_GRID.n_output_features))

    legacy = MultiResHashGrid(ENGINE_GRID, rng=rng, fused=False)
    fused = MultiResHashGrid(ENGINE_GRID, rng=new_rng(0), fused=True,
                             max_chunk_points=ENGINE_CHUNK)

    # Differential check before timing: outputs, traces, gradients.
    out_legacy = legacy.forward(points)
    out_fused = fused.forward(points)
    max_diff = float(np.abs(out_fused.astype(np.float64)
                            - out_legacy.astype(np.float64)).max())
    traces_equal = bool(np.array_equal(legacy.last_access.flat_addresses(),
                                       fused.last_access.flat_addresses()))
    legacy.zero_grad(); legacy.backward(grad)
    fused.zero_grad(); fused.backward(grad)
    grad_diff = float(max(
        np.abs(l.table.grad.astype(np.float64)
               - f.table.grad.astype(np.float64)).max()
        for l, f in zip(legacy.levels, fused.levels)
    ))
    if max_diff > 1e-10:
        raise AssertionError(f"fused forward deviates from legacy: {max_diff:g}")
    if not traces_equal:
        raise AssertionError("fused access trace differs from legacy trace")
    if grad_diff > 1e-6:
        raise AssertionError(f"fused backward deviates from legacy: {grad_diff:g}")

    def backward_step(grid):
        grid.zero_grad()
        grid.backward(grad)

    engines = {"per_level_loop": legacy, "fused": fused}
    for grid in engines.values():          # warm up both engines
        grid.forward(points)
        backward_step(grid)
    fwd_times = _time_interleaved(
        {name: (lambda g=g: g.forward(points)) for name, g in engines.items()},
        repeats)
    bwd_times = _time_interleaved(
        {name: (lambda g=g: backward_step(g)) for name, g in engines.items()},
        repeats)
    timings = {}
    for name in engines:
        fwd, bwd = fwd_times[name], bwd_times[name]
        timings[name] = {
            "forward_s": fwd,
            "backward_s": bwd,
            "total_s": fwd + bwd,
            "points_per_s": n_points / (fwd + bwd),
        }
    speedup = timings["per_level_loop"]["total_s"] / timings["fused"]["total_s"]
    return {
        "n_points": n_points,
        "n_levels": ENGINE_GRID.n_levels,
        "max_chunk_points": ENGINE_CHUNK,
        "timings": timings,
        "speedup": speedup,
        "forward_max_abs_diff": max_diff,
        "grad_max_abs_diff": grad_diff,
        "traces_identical": traces_equal,
    }


def bench_fleet(n_scenes: int, n_iterations: int, image_size: int,
                n_workers: int) -> dict:
    """Measure SceneFleet end-to-end throughput (train + eval)."""
    scene_names = ("lego", "ficus", "chair", "mic")[:n_scenes]
    datasets = nerf_synthetic_like(scene_names, n_train_views=6, n_test_views=1,
                                   image_size=image_size)
    config = bench_config(0.25, 0.5)
    fleet = SceneFleet(datasets, config, seed=0, n_workers=n_workers)
    result = fleet.train(n_iterations, eval_views=1, eval_samples=24)
    summary = result.summary()
    summary["schedule"] = result.schedule
    summary["scene_names"] = list(result.scene_names)
    return summary


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced sizes for a <30 s CI smoke run")
    parser.add_argument("--workers", type=int, default=0,
                        help="fleet worker processes (0 = in-process round-robin)")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parent.parent
                        / "BENCH_throughput.json")
    args = parser.parse_args()

    if args.smoke:
        engine_points, repeats = 16384, 2
        fleet_scenes, fleet_iterations, fleet_image = 2, 20, 20
    else:
        engine_points, repeats = ENGINE_BATCH, 9
        fleet_scenes, fleet_iterations, fleet_image = 3, 80, 28

    engine = bench_grid_engine(engine_points, repeats)
    rows = []
    for name, t in engine["timings"].items():
        rows.append([name, f"{t['forward_s'] * 1e3:.1f}", f"{t['backward_s'] * 1e3:.1f}",
                     f"{t['points_per_s'] / 1e3:.0f}k"])
    rows.append(["speedup (fused vs loop)", "", "", f"{engine['speedup']:.2f}x"])
    print_report(
        f"Grid-query engine throughput ({engine_points} points, "
        f"L={ENGINE_GRID.n_levels})",
        ["engine", "forward (ms)", "backward (ms)", "points/s"],
        rows,
    )
    print(f"forward max |diff|: {engine['forward_max_abs_diff']:.2e}   "
          f"grad max |diff|: {engine['grad_max_abs_diff']:.2e}   "
          f"traces identical: {engine['traces_identical']}")

    fleet = bench_fleet(fleet_scenes, fleet_iterations, fleet_image, args.workers)
    print_report(
        f"SceneFleet throughput ({fleet['schedule']})",
        ["scenes", "iterations", "mean RGB PSNR", "wall clock (s)", "scenes/hour"],
        [[f"{fleet['n_scenes']:.0f}", f"{fleet['n_iterations']:.0f}",
          f"{fleet['mean_rgb_psnr']:.2f}", f"{fleet['wall_clock_s']:.1f}",
          f"{fleet['scenes_per_hour']:.1f}"]],
    )

    payload = {"engine": engine, "fleet": fleet,
               "smoke": bool(args.smoke)}
    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"\nWrote {args.output}")


if __name__ == "__main__":
    main()
