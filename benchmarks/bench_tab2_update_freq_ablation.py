"""Tab. 2 — PSNR vs training runtime for different update frequencies F_D : F_C.

Paper result (Xavier NX, NeRF-Synthetic average):

    F_D : F_C   runtime   PSNR
    1 : 1        72 s     26.0     (Instant-NGP baseline)
    0.5 : 1      67 s     24.3     (updating the density grid less hurts)
    1 : 0.5      65 s     25.9     (updating the color grid less is nearly free)

PSNR comes from real reduced-scale training with the corresponding update
schedules; the runtime column comes from the Xavier NX device model on the
paper-scale workload.
"""

from benchmarks.common import (
    average_psnr,
    bench_config,
    print_report,
    synthetic_datasets,
    train_on_suite,
)
from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel
from repro.core.config import Instant3DConfig
from repro.training.profiler import WorkloadScale, build_iteration_workload


def _runtime_for(density_freq: float, color_freq: float) -> float:
    config = Instant3DConfig.paper_scale_baseline().with_ratios(
        density_update_freq=density_freq, color_update_freq=color_freq)
    workload = build_iteration_workload(config, WorkloadScale.paper_scale())
    return EdgeGPUModel(XAVIER_NX).estimate_training(workload).total_s


def _run():
    datasets = synthetic_datasets()
    settings = [
        ("1:1 (Instant-NGP)", bench_config(), _runtime_for(1.0, 1.0)),
        ("0.5:1", bench_config(density_update_freq=0.5), _runtime_for(0.5, 1.0)),
        ("1:0.5", bench_config(color_update_freq=0.5), _runtime_for(1.0, 0.5)),
    ]
    rows = []
    psnrs = {}
    for label, config, runtime in settings:
        results = train_on_suite(datasets, config)
        psnr = average_psnr(results)
        psnrs[label] = psnr
        rows.append([label, f"{runtime:.1f}", f"{psnr:.2f}"])
    return rows, psnrs


def test_tab2_update_freq_ablation(benchmark):
    rows, psnrs = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Tab. 2 — update-frequency ratio F_D:F_C vs runtime and PSNR",
        ["F_D : F_C", "Modelled Xavier NX runtime (s)", "Avg. test PSNR (measured)"],
        rows,
    )
    # Shape check: halving the color update frequency keeps quality in the
    # baseline's class (the strict 0.5:1 vs 1:0.5 ordering is reported but
    # only loosely asserted at the reduced benchmark scale).
    assert psnrs["1:0.5"] >= psnrs["1:1 (Instant-NGP)"] - 1.5
    assert psnrs["1:0.5"] >= psnrs["0.5:1"] - 1.5
