"""Fig. 8 — the eight neighbour-vertex addresses cluster into four groups.

Paper result: during embedding-grid interpolation the eight surrounding
vertices of a queried point form four groups of two (same y/z, differing x);
addresses inside a group are close while different groups are far apart in
the 1-D hash table (average inter-group distance ~60,000 for the full-size
table), consistently across the NeRF-Synthetic scenes.
"""

import numpy as np

from benchmarks.common import print_report, synthetic_datasets
from repro.analysis.access_patterns import address_group_stats
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.utils.seeding import derive_rng

#: A single hashed level comparable to Instant-NGP's fine levels.
_LEVEL_CONFIG = HashGridConfig(n_levels=1, n_features_per_level=2,
                               log2_hashmap_size=16, base_resolution=128,
                               finest_resolution=128)


def _scene_points(dataset, n_points: int = 2048, seed: int = 0):
    rng = derive_rng(seed, f"fig08:{dataset.name}")
    bundle, _ = sample_pixel_batch(dataset.train_cameras, dataset.train_images,
                                   n_points // 16, rng)
    t_vals, _ = stratified_samples(bundle, 16, rng=rng)
    points, _dirs = ray_points(bundle, t_vals)
    return normalize_points_to_unit_cube(points, dataset.scene_bound)


def _run():
    rows = []
    stats_list = []
    for dataset in synthetic_datasets():
        grid = MultiResHashGrid(_LEVEL_CONFIG, rng=derive_rng(1, dataset.name))
        grid.forward(_scene_points(dataset))
        stats = address_group_stats(grid.last_access, level=0)
        stats_list.append(stats)
        rows.append([
            dataset.name,
            f"{stats.mean_intra_group_distance:.2f}",
            f"{stats.mean_inter_group_distance:,.0f}",
            f"{100 * stats.fraction_intra_within_threshold:.1f}%",
        ])
    return rows, stats_list


def test_fig08_address_groups(benchmark):
    rows, stats_list = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 8 — address clustering of the 8 neighbour vertices (per scene)",
        ["Scene", "Mean |intra-group| distance", "Mean inter-group distance",
         "Intra-group within [-5, 5]"],
        rows,
    )
    for stats in stats_list:
        # Four groups far apart, members of a group close together.
        assert stats.mean_inter_group_distance > 1000
        assert stats.mean_inter_group_distance > 100 * max(stats.mean_intra_group_distance, 1.0)
