"""Fig. 15 — accelerator specifications, area and energy breakdown.

Paper result: the 28 nm design occupies 6.8 mm^2, runs at 800 MHz / 1 V with
1.5 MB of SRAM and 1.9 W average power; the grid cores take ~78 % of the area
and ~81 % of the energy, the MLP units most of the remainder.
"""

from benchmarks.common import accelerator_estimate, print_report
from repro.accelerator import AcceleratorConfig, AreaModel


def _run():
    config = AcceleratorConfig()
    area = AreaModel(config).breakdown()
    estimate = accelerator_estimate()
    energy = estimate.energy

    area_rows = [[name, f"{mm2:.2f}", f"{100 * mm2 / area.total_mm2:.1f}%"]
                 for name, mm2 in sorted(area.components_mm2.items())]
    energy_rows = [[name, f"{joules:.3f}", f"{100 * joules / energy.total_j:.1f}%"]
                   for name, joules in sorted(energy.components_j.items())]
    return config, area, estimate, area_rows, energy_rows


def test_fig15_area_energy_breakdown(benchmark):
    config, area, estimate, area_rows, energy_rows = benchmark.pedantic(
        _run, rounds=1, iterations=1)
    print_report(
        "Fig. 15(a) — accelerator specs",
        ["Technology", "Area", "Frequency", "SRAM", "Avg. power (simulated run)"],
        [[f"{config.technology_nm} nm", f"{area.total_mm2:.1f} mm^2",
          f"{config.frequency_hz / 1e6:.0f} MHz",
          f"{config.total_sram_bytes / 1e6:.1f} MB",
          f"{estimate.average_power_w:.2f} W"]],
    )
    print_report("Fig. 15(b) — area breakdown", ["Component", "mm^2", "Share"], area_rows)
    print_report("Fig. 15(b) — energy breakdown (one training run)",
                 ["Component", "Joules", "Share"], energy_rows)
    # Shape checks against the published breakdown.
    assert 0.70 < area.fraction("grid_cores") < 0.85
    assert 0.10 < area.fraction("mlp") < 0.30
    assert estimate.average_power_w < 2.5
