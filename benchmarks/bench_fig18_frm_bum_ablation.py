"""Fig. 18 — ablation of the FRM and BUM units.

Paper result: on the eight NeRF-Synthetic scenes, the FRM unit alone trims
the accelerator runtime by 31.1 % on average, and FRM + BUM together trim it
by 68.6 %, relative to the accelerator without either unit.
"""

from benchmarks.common import accelerator_estimate, print_report


def _run():
    no_units = accelerator_estimate(frm=False, bum=False)
    frm_only = accelerator_estimate(frm=True, bum=False)
    both = accelerator_estimate(frm=True, bum=True)
    rows = [
        ["w/o FRM, w/o BUM", f"{no_units.total_s:.2f}", "100.0%"],
        ["w/ FRM, w/o BUM", f"{frm_only.total_s:.2f}",
         f"{100 * frm_only.total_s / no_units.total_s:.1f}%"],
        ["w/ FRM, w/ BUM", f"{both.total_s:.2f}",
         f"{100 * both.total_s / no_units.total_s:.1f}%"],
    ]
    frm_reduction = 1.0 - frm_only.total_s / no_units.total_s
    total_reduction = 1.0 - both.total_s / no_units.total_s
    return rows, frm_reduction, total_reduction


def test_fig18_frm_bum_ablation(benchmark):
    rows, frm_reduction, total_reduction = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 18 — normalized runtime without the FRM / BUM units",
        ["Configuration", "Runtime (s)", "Normalized runtime"],
        rows,
    )
    print(f"FRM alone trims {100 * frm_reduction:.1f}% (paper: 31.1%); "
          f"FRM + BUM trim {100 * total_reduction:.1f}% (paper: 68.6%)")
    # Shape checks: both units contribute, and together they remove a large
    # fraction of the runtime.
    assert frm_reduction > 0.15
    assert total_reduction > frm_reduction
    assert total_reduction > 0.4
