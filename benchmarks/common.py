"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation and prints the same rows/series the paper reports.  To keep the
harness runnable on a laptop, the *learning* experiments (anything that needs
a PSNR) run the real training loop at reduced scale — fewer scenes, smaller
images, fewer iterations — while the *runtime* numbers come from the
device/accelerator models applied to the paper-scale workload counts (see
DESIGN.md §4).  Heavy artefacts (rendered datasets, memory traces) are cached
per pytest session in this module.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Tuple

from repro.accelerator import (
    AcceleratorConfig,
    Instant3DAccelerator,
    baseline_devices,
    extract_training_trace,
)
from repro.accelerator.trace import MemoryTrace
from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import nerf_synthetic_like, scannet_like, silvr_like
from repro.datasets.dataset import SceneDataset
from repro.grid.hash_encoding import HashGridConfig
from repro.training.profiler import IterationWorkload, WorkloadScale, build_iteration_workload
from repro.training.trainer import TrainingResult, train_scene
from repro.utils.tables import format_table

# ---------------------------------------------------------------------------
# Reduced-scale experiment settings (kept in one place so every benchmark is
# consistent and EXPERIMENTS.md can describe a single protocol).
# ---------------------------------------------------------------------------
BENCH_SCENES = ("lego", "ficus")          # subset of the 8 NeRF-Synthetic scenes
BENCH_IMAGE_SIZE = 32
BENCH_TRAIN_VIEWS = 8
BENCH_TEST_VIEWS = 2
BENCH_ITERATIONS = 120
PAPER_ITERATIONS = 1024                   # iterations assumed for paper-scale runtime

#: Reduced-scale grid used by benchmark training runs.
BENCH_GRID = HashGridConfig(
    n_levels=6,
    n_features_per_level=2,
    log2_hashmap_size=12,
    base_resolution=8,
    finest_resolution=96,
)


def bench_config(color_size_ratio: float = 1.0, color_update_freq: float = 1.0,
                 density_size_ratio: float = 1.0,
                 density_update_freq: float = 1.0) -> Instant3DConfig:
    """A reduced-scale training configuration with the requested ratios.

    ``density_size_ratio`` < 1 shrinks the density grid instead of the color
    grid (the paper's 0.25:1 rows in Tables 1 and 2); the color grid keeps
    its full size in that case.
    """
    if density_size_ratio == 1.0:
        grid = BENCH_GRID
    else:
        grid = BENCH_GRID.scaled(density_size_ratio)
        color_size_ratio = color_size_ratio / density_size_ratio
    return Instant3DConfig(
        grid=grid,
        color_size_ratio=color_size_ratio,
        density_update_freq=density_update_freq,
        color_update_freq=color_update_freq,
        mlp_hidden_width=32,
        mlp_hidden_layers=2,
        batch_pixels=192,
        n_samples_per_ray=24,
        learning_rate=1e-2,
    )


# ---------------------------------------------------------------------------
# Cached datasets, traces and workloads.
# ---------------------------------------------------------------------------
@lru_cache(maxsize=None)
def synthetic_datasets() -> Tuple[SceneDataset, ...]:
    """The reduced NeRF-Synthetic-like suite used by the learning benchmarks."""
    return tuple(nerf_synthetic_like(BENCH_SCENES, n_train_views=BENCH_TRAIN_VIEWS,
                                     n_test_views=BENCH_TEST_VIEWS,
                                     image_size=BENCH_IMAGE_SIZE))


@lru_cache(maxsize=None)
def suite_datasets() -> Dict[str, Tuple[SceneDataset, ...]]:
    """One representative scene per dataset suite (for Tab. 4 / Tab. 5)."""
    return {
        "NeRF-Synthetic": tuple(nerf_synthetic_like(["lego"], n_train_views=BENCH_TRAIN_VIEWS,
                                                    n_test_views=BENCH_TEST_VIEWS,
                                                    image_size=BENCH_IMAGE_SIZE)),
        "SILVR": tuple(silvr_like(["garden"], n_train_views=BENCH_TRAIN_VIEWS,
                                  n_test_views=BENCH_TEST_VIEWS,
                                  image_size=BENCH_IMAGE_SIZE)),
        "ScanNet": tuple(scannet_like(["scene0000_office"], n_train_views=BENCH_TRAIN_VIEWS,
                                      n_test_views=BENCH_TEST_VIEWS,
                                      image_size=BENCH_IMAGE_SIZE)),
    }


@lru_cache(maxsize=None)
def bench_trace() -> MemoryTrace:
    """A memory trace used by the accelerator benchmarks (built once)."""
    dataset = synthetic_datasets()[0]
    model = DecoupledRadianceField(bench_config(0.25, 0.5), seed=0)
    return extract_training_trace(model, dataset, batch_pixels=48, samples_per_ray=16)


@lru_cache(maxsize=None)
def paper_workloads() -> Dict[str, IterationWorkload]:
    """Paper-scale per-iteration workloads for the runtime/energy models."""
    scale = WorkloadScale.paper_scale(n_iterations=PAPER_ITERATIONS)
    gpu_baseline = Instant3DConfig.paper_scale_baseline()
    return {
        "instant_ngp_gpu": build_iteration_workload(gpu_baseline, scale),
        "instant3d_gpu": build_iteration_workload(
            gpu_baseline.with_ratios(color_size_ratio=0.25, color_update_freq=0.5), scale),
        "instant3d_size_only": build_iteration_workload(
            gpu_baseline.with_ratios(color_size_ratio=0.25), scale),
        "instant3d_freq_only": build_iteration_workload(
            gpu_baseline.with_ratios(color_update_freq=0.5), scale),
        "instant3d_accelerator": build_iteration_workload(
            Instant3DConfig.paper_scale_instant3d(), scale),
    }


@lru_cache(maxsize=None)
def device_estimates() -> Dict[str, Dict[str, object]]:
    """Instant-NGP baseline runtime estimates of the three Jetson devices."""
    workload = paper_workloads()["instant_ngp_gpu"]
    return {name: model.estimate_training(workload)
            for name, model in baseline_devices().items()}


@lru_cache(maxsize=None)
def accelerator_estimate(frm: bool = True, bum: bool = True, fusion: bool = True,
                         workload_key: str = "instant3d_accelerator"):
    """Accelerator runtime estimate with the requested feature set."""
    config = AcceleratorConfig(frm_enabled=frm, bum_enabled=bum, fusion_enabled=fusion)
    accelerator = Instant3DAccelerator(config)
    return accelerator.estimate_training(paper_workloads()[workload_key],
                                         trace=bench_trace())


# ---------------------------------------------------------------------------
# Training helpers and output formatting.
# ---------------------------------------------------------------------------
def train_on_suite(datasets, config: Instant3DConfig,
                   n_iterations: int = BENCH_ITERATIONS,
                   eval_every=None) -> List[TrainingResult]:
    """Train one model per dataset and return the per-scene results."""
    return [train_scene(dataset, config, n_iterations=n_iterations, seed=0,
                        eval_every=eval_every)
            for dataset in datasets]


def average_psnr(results: List[TrainingResult]) -> float:
    return sum(r.rgb_psnr for r in results) / len(results)


def print_report(title: str, headers, rows) -> None:
    """Print a benchmark's reproduced table/series."""
    print()
    print("=" * 72)
    print(format_table(headers, rows, title=title))
    print("=" * 72)
