"""Tab. 3 — specifications of the considered devices.

Reproduces the device-specification summary: the three Jetson-class baselines
(from their data sheets, as used by the paper) and the Instant-3D accelerator
design point from the accelerator configuration and area model.
"""

from benchmarks.common import print_report
from repro.accelerator import AcceleratorConfig, AreaModel, JETSON_NANO, JETSON_TX2, XAVIER_NX


def _run():
    config = AcceleratorConfig()
    area = AreaModel(config).breakdown()
    rows = []
    for spec in (JETSON_NANO, JETSON_TX2, XAVIER_NX):
        rows.append([
            spec.name,
            f"{spec.technology_nm} nm",
            f"{spec.sram_mb:.1f} MB",
            f"{spec.area_mm2:.0f} mm^2" if spec.area_mm2 else "N/A",
            f"{spec.frequency_ghz:.1f} GHz",
            spec.dram,
            f"{spec.dram_bandwidth_gbs:.1f} GB/s",
            f"{spec.typical_power_w:.1f} W",
        ])
    rows.append([
        config.name,
        f"{config.technology_nm} nm",
        f"{config.total_sram_bytes / 1e6:.1f} MB",
        f"{area.total_mm2:.1f} mm^2",
        f"{config.frequency_hz / 1e9:.1f} GHz",
        "LPDDR4-1866",
        f"{config.dram_bandwidth_bytes_per_s / 1e9:.1f} GB/s",
        f"{config.typical_power_w:.1f} W",
    ])
    return rows, config, area


def test_tab3_device_specs(benchmark):
    rows, config, area = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Tab. 3 — device specifications",
        ["Device", "Technology", "SRAM", "Area", "Frequency", "DRAM", "Bandwidth", "Power"],
        rows,
    )
    # Published accelerator design point: 28 nm, ~1.5 MB SRAM, ~6.8 mm^2,
    # 0.8 GHz, 1.9 W, LPDDR4-1866.
    assert config.technology_nm == 28
    assert 1.0e6 < config.total_sram_bytes < 2.0e6
    assert 6.0 < area.total_mm2 < 7.6
    assert config.typical_power_w == 1.9
