"""Fig. 5 — color features are learned at a faster pace than density features.

Paper result: during training, the PSNR of the reconstructed RGB images is
consistently higher than the PSNR of the depth images (the proxy for the
learned density), e.g. color reaches 24 dB after ~160 iterations while
density needs ~200.

This benchmark trains the baseline configuration on the reduced
NeRF-Synthetic-like suite, evaluating RGB and depth PSNR along the
trajectory, and prints the two series.
"""

import numpy as np

from benchmarks.common import bench_config, print_report, synthetic_datasets
from repro.analysis.sensitivity import learning_pace_study

_EVAL_EVERY = 30
_ITERATIONS = 120


def _run():
    results = [
        learning_pace_study(dataset, bench_config(), n_iterations=_ITERATIONS,
                            eval_every=_EVAL_EVERY, eval_samples=24)
        for dataset in synthetic_datasets()
    ]
    iterations = results[0].iterations
    rgb = np.mean([r.rgb_psnrs for r in results], axis=0)
    depth = np.mean([r.depth_psnrs for r in results], axis=0)
    return iterations, rgb, depth


def test_fig05_color_density_pace(benchmark):
    iterations, rgb, depth = benchmark.pedantic(_run, rounds=1, iterations=1)
    rows = [[it, f"{r:.2f}", f"{d:.2f}", f"{r - d:+.2f}"]
            for it, r, d in zip(iterations, rgb, depth)]
    print_report(
        "Fig. 5(b) — average RGB vs depth PSNR during training",
        ["Iteration", "RGB PSNR (color)", "Depth PSNR (density)", "Color lead"],
        rows,
    )
    # Shape check: both metrics improve over training and color reaches the
    # neighbourhood of its final quality no later than density does (the
    # paper's "color is learned at a faster pace" observation).
    assert rgb[-1] > rgb[0]
    assert depth[-1] > depth[0]

    def first_within(values, margin=1.0):
        final = values[-1]
        for idx, value in enumerate(values):
            if value >= final - margin:
                return idx
        return len(values) - 1

    # Color converges no later than density (within one evaluation interval
    # of slack at this reduced scale).
    assert first_within(rgb) <= first_within(depth) + 1
