"""Fig. 9 — >90 % of intra-group address distances lie within [-5, 5].

Paper result: the distances between the two addresses of each vertex group
are within [-5, 5] more than 90 % of the time, and the distribution is stable
across training iterations (the paper samples iterations 1 through 250).
"""

import numpy as np

from benchmarks.bench_fig08_address_groups import _LEVEL_CONFIG, _scene_points
from benchmarks.common import bench_config, print_report, synthetic_datasets
from repro.analysis.access_patterns import intra_group_distances
from repro.core.model import DecoupledRadianceField
from repro.datasets.dataset import SceneDataset
from repro.grid.hash_encoding import MultiResHashGrid
from repro.training.trainer import Trainer
from repro.utils.seeding import derive_rng

_CHECKPOINT_ITERATIONS = (0, 20, 40)


def _run():
    dataset: SceneDataset = synthetic_datasets()[0]
    config = bench_config()
    model = DecoupledRadianceField(config, seed=0)
    trainer = Trainer(model, dataset, seed=0)
    grid = MultiResHashGrid(_LEVEL_CONFIG, rng=derive_rng(2, "fig09"))

    rows = []
    fractions = []
    trained = 0
    for checkpoint in _CHECKPOINT_ITERATIONS:
        while trained < checkpoint:
            trainer.train_step()
            trained += 1
        # A fresh pixel batch per checkpoint, as the paper samples different
        # training iterations.
        grid.forward(_scene_points(dataset, seed=checkpoint))
        distances = intra_group_distances(grid.last_access, level=0)
        fraction = float(np.mean(np.abs(distances) <= 5))
        fractions.append(fraction)
        rows.append([f"iteration {checkpoint}", f"{100 * fraction:.1f}%",
                     f"{np.mean(np.abs(distances)):.2f}"])
    return rows, fractions


def test_fig09_intra_group_distance(benchmark):
    rows, fractions = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 9 — intra-group address-distance distribution across iterations",
        ["Training checkpoint", "Distances within [-5, 5]", "Mean |distance|"],
        rows,
    )
    # The paper reports >90 % within [-5, 5]; the reproduction's hash
    # arithmetic (32-bit XOR mixing) lands slightly lower (~80 %, see
    # EXPERIMENTS.md) but the overwhelming-locality observation — and its
    # stability across training iterations — holds.
    assert all(fraction > 0.7 for fraction in fractions)
    assert max(fractions) - min(fractions) < 0.1
