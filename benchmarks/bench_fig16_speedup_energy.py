"""Fig. 16 — speedup and energy efficiency of the Instant-3D accelerator.

Paper result (NeRF-Synthetic average): the accelerator achieves 224x / 132x /
45x speedup and 1198x / 1089x / 479x better energy efficiency than Jetson
Nano / Jetson TX2 / Xavier NX running Instant-NGP, reaching ~1.6 s per scene
at 1.9 W.

The reproduction preserves the *shape* of this result — the accelerator wins
by a large factor on every baseline and the Nano > TX2 > Xavier ordering and
inter-device ratios hold — while the absolute factors are smaller because the
accelerator model is conservative (see EXPERIMENTS.md).
"""

from benchmarks.common import accelerator_estimate, device_estimates, print_report


def _run():
    accelerator = accelerator_estimate()
    rows = []
    speedups = {}
    for name, estimate in device_estimates().items():
        speedup = accelerator.speedup_over(estimate.total_s)
        energy_gain = accelerator.energy_efficiency_over(estimate.energy_j)
        speedups[name] = (speedup, energy_gain)
        rows.append([
            name,
            f"{estimate.total_s:.1f}",
            f"{accelerator.total_s:.2f}",
            f"{speedup:.1f}x",
            f"{energy_gain:.0f}x",
        ])
    return rows, speedups, accelerator


def test_fig16_speedup_energy(benchmark):
    rows, speedups, accelerator = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 16 — accelerator speedup and energy efficiency vs edge GPUs",
        ["Baseline device", "Baseline runtime (s)", "Accelerator runtime (s)",
         "Speedup", "Energy efficiency"],
        rows,
    )
    nano_speedup, nano_energy = speedups["Jetson Nano"]
    tx2_speedup, tx2_energy = speedups["Jetson TX2"]
    xavier_speedup, xavier_energy = speedups["Xavier NX"]
    # Large wins everywhere, correct ordering, roughly the paper's inter-device ratios.
    assert xavier_speedup > 3.0 and xavier_energy > 20.0
    assert nano_speedup > tx2_speedup > xavier_speedup
    assert nano_energy > tx2_energy > xavier_energy
    assert 3.0 < nano_speedup / xavier_speedup < 7.0      # paper: 224/45 ~= 5.0
    assert 2.0 < tx2_speedup / xavier_speedup < 4.5       # paper: 132/45 ~= 2.9
