"""Tab. 4 — Instant-3D algorithm vs Instant-NGP on the three dataset suites.

Paper result (training on Xavier NX):

    suite            Instant-NGP        Instant-3D algorithm
    NeRF-Synthetic   72 s  / 26.0 dB    60 s  / 26.0 dB
    SILVR            135 s / 25.0 dB    111 s / 25.1 dB
    ScanNet          84 s  / 24.9 dB    72 s  / 25.1 dB

PSNR columns come from real reduced-scale training on one representative
scene per suite; the runtime columns come from the Xavier NX device model,
with the per-suite workload scaled by the paper's measured suite-to-suite
runtime ratio (SILVR scenes are larger, ScanNet scenes somewhat larger, than
NeRF-Synthetic objects).
"""

from benchmarks.common import (
    BENCH_ITERATIONS,
    bench_config,
    paper_workloads,
    print_report,
    suite_datasets,
    train_on_suite,
)
from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel

#: Relative per-scene workload of each suite (iterations-to-quality factor),
#: reflecting the larger scene extent of SILVR and ScanNet captures.
SUITE_WORKLOAD_FACTOR = {"NeRF-Synthetic": 1.0, "SILVR": 1.875, "ScanNet": 1.17}


def _run():
    xavier = EdgeGPUModel(XAVIER_NX)
    ngp_runtime = xavier.estimate_training(paper_workloads()["instant_ngp_gpu"]).total_s
    i3d_runtime = xavier.estimate_training(paper_workloads()["instant3d_gpu"]).total_s

    rows = []
    measured = {}
    for suite, datasets in suite_datasets().items():
        factor = SUITE_WORKLOAD_FACTOR[suite]
        ngp_results = train_on_suite(datasets, bench_config(), BENCH_ITERATIONS)
        i3d_results = train_on_suite(datasets, bench_config(0.25, 0.5), BENCH_ITERATIONS)
        ngp_psnr = sum(r.rgb_psnr for r in ngp_results) / len(ngp_results)
        i3d_psnr = sum(r.rgb_psnr for r in i3d_results) / len(i3d_results)
        measured[suite] = (ngp_psnr, i3d_psnr, ngp_runtime * factor, i3d_runtime * factor)
        rows.append([
            suite,
            f"{ngp_runtime * factor:.0f}",
            f"{i3d_runtime * factor:.0f}",
            f"{ngp_psnr:.2f}",
            f"{i3d_psnr:.2f}",
        ])
    return rows, measured


def test_tab4_algorithm_vs_ngp(benchmark):
    rows, measured = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Tab. 4 — Instant-3D algorithm vs Instant-NGP (runtime modelled on Xavier NX)",
        ["Suite", "Instant-NGP runtime (s)", "Instant-3D runtime (s)",
         "Instant-NGP PSNR", "Instant-3D PSNR"],
        rows,
    )
    for suite, (ngp_psnr, i3d_psnr, ngp_rt, i3d_rt) in measured.items():
        # Same quality class (within reduced-scale training noise), lower runtime.
        assert i3d_rt < ngp_rt
        assert i3d_psnr > ngp_psnr - 3.0
