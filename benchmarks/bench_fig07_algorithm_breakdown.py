"""Fig. 7 — runtime breakdown of the Instant-3D *algorithm* on Xavier NX.

Paper result: the proposed algorithm accelerates Instant-NGP by ~17 % on the
edge GPU, but Step ❸-① (embedding-grid interpolation) and its backward pass
still dominate (~80 %) — which is what motivates the dedicated accelerator.
"""

from benchmarks.common import paper_workloads, print_report
from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel
from repro.analysis.breakdown import (
    CATEGORY_GRID,
    CATEGORY_MLP,
    CATEGORY_OTHER,
    runtime_breakdown,
)


def _run():
    xavier = EdgeGPUModel(XAVIER_NX)
    baseline = xavier.estimate_training(paper_workloads()["instant_ngp_gpu"])
    instant3d = xavier.estimate_training(paper_workloads()["instant3d_gpu"])
    rows = []
    for label, estimate in (("Instant-NGP", baseline), ("Instant-3D algorithm", instant3d)):
        breakdown = runtime_breakdown(estimate)
        rows.append([
            label,
            f"{estimate.total_s:.1f}",
            f"{100 * breakdown.fraction(CATEGORY_GRID):.1f}%",
            f"{100 * breakdown.fraction(CATEGORY_MLP):.1f}%",
            f"{100 * breakdown.fraction(CATEGORY_OTHER):.1f}%",
        ])
    return rows, baseline, instant3d


def test_fig07_algorithm_breakdown(benchmark):
    rows, baseline, instant3d = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 7 — Instant-3D algorithm runtime breakdown on Xavier NX",
        ["Algorithm", "Total (s)", "Grid interp + backprop", "MLP + backprop", "Other"],
        rows,
    )
    speedup = baseline.total_s / instant3d.total_s
    print(f"Algorithm-only speedup over Instant-NGP on Xavier NX: {speedup:.2f}x "
          f"(paper: ~1.2x, i.e. 17% average reduction)")
    # Shape checks: a real but modest algorithm speedup, and the grid step
    # still dominating the remaining runtime.
    assert 1.05 < speedup < 1.6
    assert runtime_breakdown(instant3d).grid_fraction > 0.65
