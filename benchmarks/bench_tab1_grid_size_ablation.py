"""Tab. 1 — PSNR vs training runtime for different grid-size ratios S_D : S_C.

Paper result (Xavier NX, NeRF-Synthetic average):

    S_D : S_C   runtime   PSNR
    1 : 1        72 s     26.0     (Instant-NGP baseline)
    0.25 : 1     65 s     25.4     (shrinking the *density* grid hurts)
    1 : 0.25     63 s     26.0     (shrinking the *color* grid is free)

PSNR comes from real (reduced-scale) training; the runtime column comes from
the Xavier NX device model on the paper-scale workload with the matching
ratio, so the relative runtime ordering is reproduced at paper scale.
"""

from benchmarks.common import (
    average_psnr,
    bench_config,
    paper_workloads,
    print_report,
    synthetic_datasets,
    train_on_suite,
)
from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel
from repro.core.config import Instant3DConfig
from repro.training.profiler import WorkloadScale, build_iteration_workload


def _runtime_for(color_size_ratio: float, density_size_ratio: float) -> float:
    """Xavier NX runtime of the paper-scale workload with the given sizes."""
    base = Instant3DConfig.paper_scale_baseline()
    if density_size_ratio != 1.0:
        config = Instant3DConfig(
            grid=base.grid.scaled(density_size_ratio),
            color_size_ratio=1.0 / density_size_ratio,
            mlp_hidden_width=base.mlp_hidden_width,
            mlp_hidden_layers=base.mlp_hidden_layers,
            n_samples_per_ray=base.n_samples_per_ray,
            batch_pixels=base.batch_pixels,
        )
    else:
        config = base.with_ratios(color_size_ratio=color_size_ratio)
    workload = build_iteration_workload(config, WorkloadScale.paper_scale())
    return EdgeGPUModel(XAVIER_NX).estimate_training(workload).total_s


def _run():
    datasets = synthetic_datasets()
    settings = [
        ("1:1 (Instant-NGP)", bench_config(), _runtime_for(1.0, 1.0)),
        ("0.25:1", bench_config(density_size_ratio=0.25), _runtime_for(1.0, 0.25)),
        ("1:0.25", bench_config(color_size_ratio=0.25), _runtime_for(0.25, 1.0)),
    ]
    rows = []
    psnrs = {}
    for label, config, runtime in settings:
        results = train_on_suite(datasets, config)
        psnr = average_psnr(results)
        psnrs[label] = psnr
        rows.append([label, f"{runtime:.1f}", f"{psnr:.2f}"])
    return rows, psnrs


def test_tab1_grid_size_ablation(benchmark):
    rows, psnrs = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Tab. 1 — grid-size ratio S_D:S_C vs runtime and PSNR",
        ["S_D : S_C", "Modelled Xavier NX runtime (s)", "Avg. test PSNR (measured)"],
        rows,
    )
    # Shape checks from the paper: shrinking the color grid keeps quality in
    # the baseline's class.  (At the reduced benchmark scale the 0.25:1 vs
    # 1:0.25 ordering itself is within training noise — see EXPERIMENTS.md —
    # so it is reported but only loosely asserted.)
    assert psnrs["1:0.25"] >= psnrs["1:1 (Instant-NGP)"] - 1.5
    assert psnrs["1:0.25"] >= psnrs["0.25:1"] - 1.5
