"""Fig. 4 — Instant-NGP training-runtime breakdown on the three edge devices.

Paper result: on Jetson Nano, Jetson TX2 and Xavier NX alike, Step ❸-①
(interpolating embeddings from the embedding grid) plus its back-propagation
dominates the training runtime (~80 %), motivating the whole co-design.

This benchmark applies the calibrated device models to the paper-scale
Instant-NGP workload and prints the per-category share for each device.
"""

from benchmarks.common import device_estimates, print_report
from repro.analysis.breakdown import (
    CATEGORY_GRID,
    CATEGORY_MLP,
    CATEGORY_OTHER,
    runtime_breakdown,
)


def _run():
    rows = []
    breakdowns = {}
    for name, estimate in device_estimates().items():
        breakdown = runtime_breakdown(estimate)
        breakdowns[name] = breakdown
        rows.append([
            name,
            f"{estimate.total_s:.1f}",
            f"{100 * breakdown.fraction(CATEGORY_GRID):.1f}%",
            f"{100 * breakdown.fraction(CATEGORY_MLP):.1f}%",
            f"{100 * breakdown.fraction(CATEGORY_OTHER):.1f}%",
        ])
    return rows, breakdowns


def test_fig04_runtime_breakdown(benchmark):
    rows, breakdowns = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 4 — Instant-NGP training runtime breakdown (NeRF-Synthetic avg.)",
        ["Device", "Total (s)", "Grid interp + backprop", "MLP + backprop", "Other steps"],
        rows,
    )
    # The paper's observation: the grid step dominates on every device.
    for breakdown in breakdowns.values():
        assert breakdown.grid_fraction > 0.7
