"""Fig. 17 — decomposition of the speedup over Instant-NGP on Xavier NX.

Paper result: the overall 45x speedup over Instant-NGP on Xavier NX factors
into ~2.7x from the Instant-3D algorithm, ~3.1x from the FRM + BUM units and
~5.3x from the multi-core-fusion scheduling scheme.

The reproduction builds the same cumulative ladder: (1) the Instant-NGP-sized
grids on a stripped accelerator (no FRM, no BUM, no fusion), (2) + the
Instant-3D algorithm, (3) + FRM and BUM, (4) + the fusion scheme, each
normalised to the Xavier NX Instant-NGP runtime.
"""

from benchmarks.common import accelerator_estimate, device_estimates, print_report


def _run():
    xavier_runtime = device_estimates()["Xavier NX"].total_s
    ladder = [
        ("Instant-NGP grids, no FRM/BUM/fusion",
         accelerator_estimate(frm=False, bum=False, fusion=False,
                              workload_key="instant_ngp_gpu")),
        ("+ Instant-3D algorithm",
         accelerator_estimate(frm=False, bum=False, fusion=False)),
        ("+ FRM and BUM units",
         accelerator_estimate(frm=True, bum=True, fusion=False)),
        ("+ multi-core fusion scheduling",
         accelerator_estimate(frm=True, bum=True, fusion=True)),
    ]
    rows = []
    cumulative = []
    previous_runtime = None
    for label, estimate in ladder:
        speedup_vs_xavier = xavier_runtime / estimate.total_s
        step_factor = (previous_runtime / estimate.total_s
                       if previous_runtime is not None else None)
        cumulative.append(speedup_vs_xavier)
        rows.append([
            label,
            f"{estimate.total_s:.2f}",
            f"{speedup_vs_xavier:.2f}x",
            f"{step_factor:.2f}x" if step_factor is not None else "-",
        ])
        previous_runtime = estimate.total_s
    return rows, cumulative


def test_fig17_speedup_decomposition(benchmark):
    rows, cumulative = benchmark.pedantic(_run, rounds=1, iterations=1)
    print_report(
        "Fig. 17 — cumulative speedup over Instant-NGP on Xavier NX",
        ["Configuration", "Runtime (s)", "Speedup vs Xavier NX", "Step factor"],
        rows,
    )
    # Shape checks: every added technique contributes a real factor, and the
    # cumulative speedup is strictly increasing along the ladder.
    assert cumulative[1] > cumulative[0] * 1.3      # algorithm (paper: 2.7x)
    assert cumulative[2] > cumulative[1] * 1.3      # FRM + BUM (paper: 3.1x)
    assert cumulative[3] > cumulative[2] * 1.5      # fusion scheduling (paper: 5.3x)
    assert cumulative[3] > 3.0
