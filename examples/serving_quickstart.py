"""Serve many scenes from one engine with the multi-tenant SceneService.

Demonstrates the serving layer end to end:

1. build a few procedural scenes and stand up a
   :class:`repro.serving.SceneService` with a one-trainer residency cap,
   so idle scenes are LRU-evicted to checkpoint files and restored
   bit-identically on their next request;
2. submit a mixed workload of fine-tune (:class:`~repro.serving.TrainJob`)
   and render (:class:`~repro.serving.RenderJob`) requests with priorities
   and deadlines, waiting on the returned :class:`~repro.serving.JobHandle`
   futures;
3. burst several concurrent clients at one scene and compare cross-request
   ray batching (``coalesce=True``, pending same-scene renders merged into
   one engine stream) against strict per-request dispatch.

Run with:  PYTHONPATH=src python examples/serving_quickstart.py
"""

from __future__ import annotations

import tempfile
import threading
import time
from pathlib import Path

from repro import Instant3DConfig
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig
from repro.serving import SceneService

SCENES = ["lego", "chair", "drums"]
IMAGE_SIZE = 12
TRAIN_STEPS = 30


def small_config() -> Instant3DConfig:
    return Instant3DConfig.instant_3d(
        grid=HashGridConfig(n_levels=4, n_features_per_level=2,
                            log2_hashmap_size=12, base_resolution=4,
                            finest_resolution=48),
        batch_pixels=96, n_samples_per_ray=24,
        mlp_hidden_width=24, mlp_hidden_layers=1,
        culling_enabled=True,
    )


def demo_mixed_workload(service: SceneService) -> None:
    print(f"Fine-tuning {len(SCENES)} scenes x {TRAIN_STEPS} steps through "
          f"the job queue (residency cap 1 — idle scenes evict to disk)...")
    handles = [service.train(name, n_steps=TRAIN_STEPS) for name in SCENES]
    for name, handle in zip(SCENES, handles):
        result = handle.result(timeout=600)
        print(f"  {name:6s} loss {result.losses[0]:.4f} -> "
              f"{result.losses[-1]:.4f} over {len(result.losses)} steps "
              f"(queued {result.queued_ms:.0f} ms, "
              f"service {result.service_ms:.0f} ms)")

    # A high-priority render (lower value = more urgent) with a deadline;
    # deadlines are accounting, not preemption.
    frame = service.render(SCENES[0], priority=-1, deadline_s=30.0)
    result = frame.result(timeout=600)
    print(f"Priority render of {SCENES[0]}: {result.n_rays} rays, "
          f"{result.n_queried} samples queried after culling, "
          f"missed deadline: {result.deadline_missed}")

    stats = service.stats()
    print(f"Residency: peak {stats['peak_resident_scenes']:.0f} resident, "
          f"{stats['evictions']:.0f} evictions, "
          f"{stats['checkpoint_loads']:.0f} restores "
          f"(save {stats['checkpoint_save_ms']:.1f} ms / "
          f"load {stats['checkpoint_load_ms']:.1f} ms total)")


def burst_clients(service: SceneService, scene: str, n_clients: int,
                  requests_each: int) -> float:
    """Open-loop burst: every client enqueues its demand, then collects."""
    barrier = threading.Barrier(n_clients + 1)

    def client() -> None:
        barrier.wait()
        handles = [service.render(scene) for _ in range(requests_each)]
        for handle in handles:
            handle.result(timeout=600)

    threads = [threading.Thread(target=client) for _ in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    return n_clients * requests_each / (time.perf_counter() - start)


def demo_batching(datasets, config) -> None:
    n_clients, requests_each = 4, 6
    print(f"\nBurst load: {n_clients} clients x {requests_each} renders of "
          f"one scene, one worker...")
    rates = {}
    for label, coalesce in (("batched", True), ("per-request", False)):
        with SceneService(datasets, config, seed=0, n_workers=1,
                          coalesce=coalesce) as service:
            service.render(datasets[0].name).result(timeout=600)  # warm up
            rates[label] = burst_clients(service, datasets[0].name,
                                         n_clients, requests_each)
            stats = service.stats()
            print(f"  {label:11s} {rates[label]:6.1f} renders/s "
                  f"(mean batch {stats['mean_batch_size']:.1f}, "
                  f"max {stats['max_batch_size']:.0f})")
    print(f"  coalescing speedup: {rates['batched'] / rates['per-request']:.2f}x")


def main() -> None:
    datasets = nerf_synthetic_like(SCENES, n_train_views=3, n_test_views=1,
                                   image_size=IMAGE_SIZE)
    config = small_config()
    with tempfile.TemporaryDirectory() as tmp:
        with SceneService(datasets, config, seed=0, n_workers=1,
                          checkpoint_dir=Path(tmp) / "ckpts",
                          max_resident_scenes=1) as service:
            demo_mixed_workload(service)
    demo_batching(datasets, config)


if __name__ == "__main__":
    main()
