"""Train a fleet of scenes with the multi-scene orchestrator.

Demonstrates the engine, pipeline and io layers:

1. build several procedural scene datasets;
2. train them all under one shared Instant-3D configuration with
   :class:`repro.training.SceneFleet` — round-robin in-process scheduling,
   or a ``multiprocessing`` pool with ``--workers N``;
3. train the same fleet again through the occupancy-culled
   :class:`~repro.nerf.pipeline.RenderPipeline` (``culling_enabled=True``)
   and compare scenes/hour, per-scene occupancy fraction and PSNR parity;
4. simulate a preempted worker: train half the iterations with per-scene
   checkpointing and a one-trainer residency cap (idle scenes evicted to
   disk), then ``resume()`` a brand-new fleet from the checkpoint files and
   verify the finished run is bit-identical to the uninterrupted one.

Run with:  PYTHONPATH=src python examples/fleet_training.py [--workers N]
"""

from __future__ import annotations

import argparse
import dataclasses
import tempfile
from pathlib import Path

from repro import Instant3DConfig, SceneFleet
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig


def run_fleet(datasets, config, label: str, n_iterations: int, n_workers: int):
    fleet = SceneFleet(datasets, config, seed=0, n_workers=n_workers)
    print(f"Training {len(datasets)} scenes x {n_iterations} iterations "
          f"[{label}] ({'process pool' if n_workers > 1 else 'round-robin'})...")
    result = fleet.train(n_iterations, eval_views=1)
    print(f"  schedule: {result.schedule}   wall-clock: {result.wall_clock_s:.1f}s   "
          f"throughput: {result.scenes_per_hour:.1f} scenes/hour")
    for name, scene_result in zip(result.scene_names, result.results):
        occupancy = scene_result.final_occupancy_fraction
        kept = scene_result.queries_kept / max(scene_result.queries_total, 1)
        print(f"    {name:8s} RGB PSNR {scene_result.rgb_psnr:6.2f} dB | "
              f"depth PSNR {scene_result.depth_psnr:6.2f} dB | "
              f"occupancy {occupancy:5.1%} | samples queried {kept:5.1%} | "
              f"{scene_result.density_updates} density / "
              f"{scene_result.color_updates} color updates")
    return result


def demo_preemption(datasets, config, baseline, n_iterations: int) -> None:
    """Interrupt a checkpointed fleet halfway, resume it, compare to solo."""
    interrupt_at = max(1, n_iterations // 2)
    with tempfile.TemporaryDirectory() as tmp:
        ckpt_dir = Path(tmp) / "fleet-ckpts"
        print(f"\nPreemptible run: interrupt at {interrupt_at}/{n_iterations} "
              f"iterations, max_resident_scenes=1 (others evicted to disk)...")
        worker_a = SceneFleet(datasets, config, seed=0,
                              checkpoint_every=interrupt_at,
                              checkpoint_dir=ckpt_dir, max_resident_scenes=1)
        worker_a.train(interrupt_at, eval_views=1)
        files = sorted(p.name for p in ckpt_dir.glob("*.ckpt.npz"))
        total_kb = sum(p.stat().st_size for p in ckpt_dir.glob("*.ckpt.npz")) / 1024
        print(f"  'worker restart': {len(files)} checkpoint files "
              f"({total_kb:.0f} KB total), {worker_a.evictions} evictions")
        # A brand-new fleet (fresh process in real deployments) picks up the
        # files and finishes the run.
        worker_b = SceneFleet(datasets, config, seed=0,
                              checkpoint_dir=ckpt_dir, max_resident_scenes=1)
        resumed = worker_b.resume(n_iterations, eval_views=1)
        identical = all(
            res.history.losses == ref.history.losses
            and res.rgb_psnr == ref.rgb_psnr
            for ref, res in zip(baseline.results, resumed.results)
        )
        print(f"  resumed mean RGB PSNR: {resumed.mean_rgb_psnr:.2f} dB   "
              f"bit-identical to uninterrupted run: {identical}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = in-process round-robin)")
    parser.add_argument("--iterations", type=int, default=120)
    parser.add_argument("--dense-only", action="store_true",
                        help="skip the occupancy-culled comparison run")
    parser.add_argument("--skip-preemption", action="store_true",
                        help="skip the checkpoint/resume demonstration")
    args = parser.parse_args()

    scene_names = ["lego", "ficus", "chair"]
    print(f"Building {len(scene_names)} NeRF-Synthetic-like datasets...")
    datasets = nerf_synthetic_like(scene_names, n_train_views=8, n_test_views=2,
                                   image_size=28)

    grid = HashGridConfig(n_levels=6, n_features_per_level=2,
                          log2_hashmap_size=12, base_resolution=8,
                          finest_resolution=96)
    dense_config = Instant3DConfig.instant_3d(
        grid=grid, batch_pixels=192, n_samples_per_ray=24,
        mlp_hidden_width=32, mlp_hidden_layers=2,
        max_chunk_points=16384,        # bounded-memory fused grid queries
    )

    dense = run_fleet(datasets, dense_config, "dense", args.iterations, args.workers)
    print(f"  fleet mean RGB PSNR: {dense.mean_rgb_psnr:.2f} dB")
    if not args.skip_preemption:
        demo_preemption(datasets, dense_config, dense, args.iterations)
    if args.dense_only:
        return

    culled_config = dataclasses.replace(
        dense_config,
        culling_enabled=True,          # occupancy-culled sample compaction
        early_termination_tau=1e-3,    # early ray termination in eval renders
    )
    culled = run_fleet(datasets, culled_config, "culled", args.iterations,
                       args.workers)
    print(f"  fleet mean RGB PSNR: {culled.mean_rgb_psnr:.2f} dB")

    speedup = culled.scenes_per_hour / max(dense.scenes_per_hour, 1e-9)
    print(f"\nculling: {speedup:.2f}x scenes/hour "
          f"({dense.scenes_per_hour:.1f} -> {culled.scenes_per_hour:.1f}), "
          f"samples queried {culled.mean_keep_fraction:.1%} of dense, "
          f"mean occupancy {culled.mean_occupancy_fraction:.1%}, "
          f"PSNR gap {culled.mean_rgb_psnr - dense.mean_rgb_psnr:+.2f} dB")


if __name__ == "__main__":
    main()
