"""Train a fleet of scenes with the multi-scene orchestrator.

Demonstrates the engine-layer API introduced with the fused grid refactor:

1. build several procedural scene datasets;
2. train them all under one shared Instant-3D configuration with
   :class:`repro.training.SceneFleet` — round-robin in-process scheduling,
   or a ``multiprocessing`` pool with ``--workers N``;
3. report per-scene PSNR and fleet throughput (scenes/hour).

Run with:  PYTHONPATH=src python examples/fleet_training.py [--workers N]
"""

from __future__ import annotations

import argparse

from repro import Instant3DConfig, SceneFleet
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=0,
                        help="process-pool size (0 = in-process round-robin)")
    parser.add_argument("--iterations", type=int, default=120)
    args = parser.parse_args()

    scene_names = ["lego", "ficus", "chair"]
    print(f"Building {len(scene_names)} NeRF-Synthetic-like datasets...")
    datasets = nerf_synthetic_like(scene_names, n_train_views=8, n_test_views=2,
                                   image_size=28)

    grid = HashGridConfig(n_levels=6, n_features_per_level=2,
                          log2_hashmap_size=12, base_resolution=8,
                          finest_resolution=96)
    config = Instant3DConfig.instant_3d(
        grid=grid, batch_pixels=192, n_samples_per_ray=24,
        mlp_hidden_width=32, mlp_hidden_layers=2,
        max_chunk_points=16384,        # bounded-memory fused grid queries
    )

    fleet = SceneFleet(datasets, config, seed=0, n_workers=args.workers)
    print(f"Training {len(datasets)} scenes x {args.iterations} iterations "
          f"({'process pool' if args.workers > 1 else 'round-robin'})...")
    result = fleet.train(args.iterations, eval_views=1)

    print(f"\nschedule: {result.schedule}   wall-clock: {result.wall_clock_s:.1f}s   "
          f"throughput: {result.scenes_per_hour:.1f} scenes/hour")
    for name, scene_result in zip(result.scene_names, result.results):
        print(f"  {name:8s} RGB PSNR {scene_result.rgb_psnr:6.2f} dB | "
              f"depth PSNR {scene_result.depth_psnr:6.2f} dB | "
              f"{scene_result.density_updates} density / "
              f"{scene_result.color_updates} color updates")
    print(f"\nfleet mean RGB PSNR: {result.mean_rgb_psnr:.2f} dB")


if __name__ == "__main__":
    main()
