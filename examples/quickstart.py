"""Quickstart: train an Instant-3D radiance field on a procedural scene.

This example walks through the full public API in the smallest useful
configuration:

1. build a NeRF-Synthetic-like scene dataset (posed RGB views rendered from
   an analytic density/albedo field);
2. configure the Instant-3D algorithm (decoupled color/density hash grids
   with the published S_D:S_C = 1:0.25 and F_D:F_C = 1:0.5 ratios);
3. train for a few hundred iterations and report test-view PSNR;
4. compare against the Instant-NGP baseline configuration (1:1 / 1:1).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import Instant3DConfig, train_scene
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig


def main() -> None:
    print("Building the 'lego' NeRF-Synthetic-like dataset...")
    dataset = nerf_synthetic_like(
        ["lego"], n_train_views=10, n_test_views=2, image_size=36
    )[0]
    print(f"  {dataset.n_train_views} training views, "
          f"{dataset.n_test_views} test views, "
          f"{dataset.train_views[0].rgb.shape[0]}px images")

    grid = HashGridConfig(n_levels=6, n_features_per_level=2, log2_hashmap_size=12,
                          base_resolution=8, finest_resolution=96)
    common = dict(grid=grid, batch_pixels=256, n_samples_per_ray=24,
                  mlp_hidden_width=32, mlp_hidden_layers=2)

    configs = {
        "Instant-NGP baseline (1:1, 1:1)": Instant3DConfig.instant_ngp_baseline(**common),
        "Instant-3D (1:0.25, 1:0.5)": Instant3DConfig.instant_3d(**common),
    }

    for name, config in configs.items():
        print(f"\nTraining {name} ...")
        start = time.time()
        result = train_scene(dataset, config, n_iterations=150, seed=0)
        elapsed = time.time() - start
        print(f"  wall-clock {elapsed:.1f}s | "
              f"test RGB PSNR {result.rgb_psnr:.2f} dB | "
              f"depth PSNR {result.depth_psnr:.2f} dB | "
              f"density updates {result.density_updates}, "
              f"color updates {result.color_updates}")

    print("\nThe Instant-3D configuration reaches comparable quality while "
          "updating the color grid half as often and storing it at a quarter "
          "of the size — the redundancy the accelerator then exploits.")


if __name__ == "__main__":
    main()
