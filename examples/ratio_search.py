"""Reproduce the decomposition-ratio grid search of Sec. 5.1.

The paper selects S_D:S_C = 1:0.25 and F_D:F_C = 1:0.5 by grid-searching the
candidate ratios and keeping the most compressive configuration that still
matches the Instant-NGP baseline's PSNR.  This example runs that search at
reduced scale: PSNR is measured by actually training each candidate on a
small scene, runtime is estimated with the Xavier NX device model on the
paper-scale workload.

Run with:  python examples/ratio_search.py
"""

from __future__ import annotations

from repro.accelerator.devices import XAVIER_NX, EdgeGPUModel
from repro.core.config import Instant3DConfig
from repro.core.search import grid_ratio_search
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig
from repro.training.profiler import WorkloadScale, build_iteration_workload
from repro.training.trainer import train_scene
from repro.utils.tables import format_table


def main() -> None:
    print("Building the search dataset (mic scene)...")
    dataset = nerf_synthetic_like(["mic"], n_train_views=8, n_test_views=2,
                                  image_size=28)[0]
    grid = HashGridConfig(n_levels=6, n_features_per_level=2, log2_hashmap_size=12,
                          base_resolution=8, finest_resolution=96)
    base = Instant3DConfig.instant_ngp_baseline(grid=grid, batch_pixels=192,
                                                n_samples_per_ray=20,
                                                mlp_hidden_width=32, mlp_hidden_layers=2)
    xavier = EdgeGPUModel(XAVIER_NX)

    def evaluate_psnr(config: Instant3DConfig) -> float:
        result = train_scene(dataset, config, n_iterations=100, seed=0)
        return result.rgb_psnr

    def evaluate_runtime(config: Instant3DConfig) -> float:
        paper_config = Instant3DConfig.paper_scale_baseline().with_ratios(
            color_size_ratio=config.color_size_ratio,
            color_update_freq=config.color_update_freq,
            density_update_freq=config.density_update_freq,
        )
        workload = build_iteration_workload(paper_config, WorkloadScale.paper_scale())
        return xavier.estimate_training(workload).total_s

    print("Running the grid search over S_C/S_D x F_C/F_D "
          "(this trains one small model per candidate)...")
    result = grid_ratio_search(
        base, evaluate_psnr, evaluate_runtime,
        size_ratios=(0.25, 0.5, 1.0), update_ratios=(0.5, 1.0),
        psnr_tolerance=0.5,
    )

    rows = [
        [config.size_ratio_label, config.freq_ratio_label,
         f"{psnr:.2f}", f"{runtime:.1f}",
         "<-- selected" if config is result.selected else ""]
        for config, psnr, runtime in result.candidates
    ]
    print()
    print(format_table(
        ["S_D:S_C", "F_D:F_C", "Measured PSNR (dB)", "Modelled Xavier runtime (s)", ""],
        rows,
        title="Decomposition-ratio grid search (Sec. 5.1)",
    ))
    print(f"\nBaseline PSNR {result.baseline_psnr:.2f} dB; selected configuration "
          f"S_D:S_C = {result.selected.size_ratio_label}, "
          f"F_D:F_C = {result.selected.freq_ratio_label} "
          f"at {result.selected_runtime:.1f}s modelled runtime.")


if __name__ == "__main__":
    main()
