"""AR/VR room capture: reconstruct an indoor scan and size the on-device budget.

This example mirrors the paper's motivating use case — on-device 3D
reconstruction of the user's surroundings for virtual telepresence:

1. build a ScanNet-like indoor room dataset captured from *inside* the room;
2. train the Instant-3D algorithm on it and report reconstruction quality;
3. estimate, with the device and accelerator models, how long the same
   (paper-scale) capture would take to reconstruct on a Jetson-class headset
   SoC versus on the Instant-3D accelerator, and whether it meets the < 5 s
   "instant" target and the ~2 W AR/VR power budget.

Run with:  python examples/arvr_room_capture.py
"""

from __future__ import annotations

import time

from repro import Instant3DConfig, train_scene
from repro.accelerator import (
    AcceleratorConfig,
    Instant3DAccelerator,
    baseline_devices,
    extract_training_trace,
)
from repro.core.model import DecoupledRadianceField
from repro.datasets import scannet_like
from repro.grid.hash_encoding import HashGridConfig
from repro.training.profiler import WorkloadScale, build_iteration_workload

INSTANT_TARGET_S = 5.0          # the paper's definition of "instant"
ARVR_POWER_BUDGET_W = 2.0       # headset thermal budget


def main() -> None:
    print("Rendering a ScanNet-like office capture...")
    dataset = scannet_like(["scene0000_office"], n_train_views=10, n_test_views=2,
                           image_size=32)[0]

    grid = HashGridConfig(n_levels=6, n_features_per_level=2, log2_hashmap_size=12,
                          base_resolution=8, finest_resolution=96)
    config = Instant3DConfig.instant_3d(grid=grid, batch_pixels=256,
                                        n_samples_per_ray=24,
                                        mlp_hidden_width=32, mlp_hidden_layers=2)

    print("Training the Instant-3D algorithm on the capture...")
    start = time.time()
    result = train_scene(dataset, config, n_iterations=150, seed=0)
    print(f"  reconstruction PSNR {result.rgb_psnr:.2f} dB "
          f"(depth {result.depth_psnr:.2f} dB) in {time.time() - start:.1f}s wall clock")

    print("\nEstimating on-device reconstruction time for the paper-scale capture...")
    gpu_workload = build_iteration_workload(Instant3DConfig.paper_scale_baseline(),
                                            WorkloadScale.paper_scale())
    accel_workload = build_iteration_workload(Instant3DConfig.paper_scale_instant3d(),
                                              WorkloadScale.paper_scale())
    model = DecoupledRadianceField(config, seed=0)
    trace = extract_training_trace(model, dataset, batch_pixels=48, samples_per_ray=16)
    accelerator = Instant3DAccelerator(AcceleratorConfig())
    accel_estimate = accelerator.estimate_training(accel_workload, trace=trace)

    print(f"{'Platform':34s} {'runtime':>10s} {'power':>8s} {'instant?':>9s}")
    for name, device in baseline_devices().items():
        estimate = device.estimate_training(gpu_workload)
        instant = "yes" if estimate.total_s < INSTANT_TARGET_S else "no"
        print(f"{name + ' (Instant-NGP)':34s} {estimate.total_s:9.1f}s "
              f"{device.spec.typical_power_w:7.1f}W {instant:>9s}")
    instant = "yes" if accel_estimate.total_s < INSTANT_TARGET_S else "no"
    within_budget = "yes" if accel_estimate.average_power_w < ARVR_POWER_BUDGET_W else "no"
    print(f"{'Instant-3D accelerator':34s} {accel_estimate.total_s:9.2f}s "
          f"{accel_estimate.average_power_w:7.2f}W {instant:>9s}")
    print(f"\nWithin the {ARVR_POWER_BUDGET_W:.1f} W AR/VR power budget: {within_budget}")
    print("Only the co-designed accelerator approaches the instant (<5 s) target "
          "at headset-compatible power, which is the paper's headline claim.")


if __name__ == "__main__":
    main()
