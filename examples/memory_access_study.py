"""Memory-access-pattern study: regenerate the observations behind FRM and BUM.

The Instant-3D accelerator exists because embedding-grid interpolation has a
very particular memory-access structure (Sec. 4.2 of the paper).  This
example measures that structure on real hash-grid queries:

* the four address groups of the eight neighbour vertices and their
  intra/inter-group distances (Figs. 8 and 9);
* the number of unique addresses inside a sliding window, feed-forward vs
  back-propagation (Fig. 10);
* what those patterns buy the hardware: the FRM's read-packing factor and the
  BUM's write-reduction factor measured on the same trace.

Run with:  python examples/memory_access_study.py
"""

from __future__ import annotations

import numpy as np

from repro.accelerator import (
    AcceleratorConfig,
    BackPropUpdateMerger,
    FeedForwardReadMapper,
    SRAMBankArray,
    extract_training_trace,
)
from repro.analysis.access_patterns import (
    address_group_stats,
    forward_backward_window_comparison,
)
from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig, MultiResHashGrid
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.utils.seeding import derive_rng
from repro.utils.tables import format_table


def address_grouping_section(dataset) -> None:
    print("\n--- Figs. 8 & 9: address grouping of the eight neighbour vertices ---")
    level_config = HashGridConfig(n_levels=1, n_features_per_level=2,
                                  log2_hashmap_size=16, base_resolution=128,
                                  finest_resolution=128)
    grid = MultiResHashGrid(level_config, rng=derive_rng(0, "study"))
    rng = derive_rng(0, "study:points")
    bundle, _ = sample_pixel_batch(dataset.train_cameras, dataset.train_images, 128, rng)
    t_vals, _ = stratified_samples(bundle, 16, rng=rng)
    points, _ = ray_points(bundle, t_vals)
    grid.forward(normalize_points_to_unit_cube(points, dataset.scene_bound))
    stats = address_group_stats(grid.last_access, level=0)
    print(f"mean |intra-group| address distance : {stats.mean_intra_group_distance:8.2f}")
    print(f"mean inter-group address distance   : {stats.mean_inter_group_distance:8,.0f}")
    print(f"intra-group distances within [-5,5] : {100 * stats.fraction_intra_within_threshold:.1f}%")


def sliding_window_section(trace) -> None:
    print("\n--- Fig. 10: unique addresses per 1000-access sliding window ---")
    rows = []
    for name, branch in trace.branches.items():
        window = min(1000, branch.read_addresses.size)
        comparison = forward_backward_window_comparison(
            branch.read_addresses, branch.write_addresses, window=window)
        rows.append([f"{name} grid", window,
                     f"{comparison['feed_forward'].mean_unique:.0f}",
                     f"{comparison['back_propagation'].mean_unique:.0f}"])
    print(format_table(["Branch", "Window", "Unique (fwd)", "Unique (bwd)"], rows))


def hardware_payoff_section(trace) -> None:
    print("\n--- What the patterns buy the hardware ---")
    config = AcceleratorConfig()
    rows = []
    for name, branch in trace.branches.items():
        sram = SRAMBankArray(n_banks=config.n_grid_cores * config.grid_core.n_banks,
                             table_entries=branch.table_entries)
        frm = FeedForwardReadMapper(sram, window=64)
        frm_result = frm.schedule(branch.read_addresses)
        bum = BackPropUpdateMerger(n_entries=config.grid_core.bum_entries,
                                   timeout_cycles=config.grid_core.bum_timeout_cycles)
        bum_result = bum.process(branch.write_addresses)
        rows.append([
            f"{name} grid",
            f"{frm_result.speedup:.2f}x",
            f"{100 * frm_result.mapped_utilization:.0f}%",
            f"{100 * bum_result.write_reduction:.0f}%",
        ])
    print(format_table(
        ["Branch", "FRM read-packing speedup", "FRM bank utilization", "BUM write reduction"],
        rows))


def main() -> None:
    print("Building dataset and extracting a training memory trace...")
    dataset = nerf_synthetic_like(["drums"], n_train_views=6, n_test_views=1,
                                  image_size=28)[0]
    grid = HashGridConfig(n_levels=6, n_features_per_level=2, log2_hashmap_size=12,
                          base_resolution=8, finest_resolution=96)
    model = DecoupledRadianceField(Instant3DConfig.instant_3d(grid=grid), seed=0)
    trace = extract_training_trace(model, dataset, batch_pixels=64, samples_per_ray=16)

    address_grouping_section(dataset)
    sliding_window_section(trace)
    hardware_payoff_section(trace)
    print("\nThese are the three observations (x-axis locality, group remoteness, "
          "back-propagation address sharing) that motivate the FRM and BUM units.")


if __name__ == "__main__":
    main()
