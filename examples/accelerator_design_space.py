"""Accelerator design-space exploration with the Instant-3D simulator.

The cycle-level simulator makes it cheap to ask architectural what-if
questions that the paper's ablations only touch on.  This example sweeps:

* the number of SRAM banks per grid core (bank-level parallelism),
* the FRM reordering window depth,
* the BUM buffer capacity,
* and the three feature toggles (FRM / BUM / fusion),

and prints the estimated per-scene training runtime and average power for
each point, using a real memory trace extracted from a training batch.

Run with:  python examples/accelerator_design_space.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.accelerator import (
    AcceleratorConfig,
    GridCoreConfig,
    Instant3DAccelerator,
    extract_training_trace,
)
from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig
from repro.training.profiler import WorkloadScale, build_iteration_workload
from repro.utils.tables import format_table


def main() -> None:
    print("Preparing workload and memory trace...")
    dataset = nerf_synthetic_like(["ficus"], n_train_views=6, n_test_views=1,
                                  image_size=28)[0]
    grid = HashGridConfig(n_levels=6, n_features_per_level=2, log2_hashmap_size=12,
                          base_resolution=8, finest_resolution=96)
    model_config = Instant3DConfig.instant_3d(grid=grid, batch_pixels=192,
                                              n_samples_per_ray=16)
    model = DecoupledRadianceField(model_config, seed=0)
    trace = extract_training_trace(model, dataset, batch_pixels=48, samples_per_ray=16)
    workload = build_iteration_workload(Instant3DConfig.paper_scale_instant3d(),
                                        WorkloadScale.paper_scale())

    def estimate(config: AcceleratorConfig):
        return Instant3DAccelerator(config).estimate_training(workload, trace=trace)

    baseline = AcceleratorConfig()
    rows = []

    def add_row(label: str, config: AcceleratorConfig) -> None:
        est = estimate(config)
        rows.append([label, f"{est.total_s:.2f}", f"{est.per_iteration_s * 1e3:.2f}",
                     f"{est.average_power_w:.2f}"])

    add_row("published design (4 cores x 8 banks, FRM16, BUM16)", baseline)
    for n_banks in (4, 16):
        config = replace(baseline, grid_core=replace(baseline.grid_core, n_banks=n_banks))
        add_row(f"{n_banks} SRAM banks per grid core", config)
    for window in (4, 64):
        config = replace(baseline, grid_core=replace(baseline.grid_core, frm_window=window))
        add_row(f"FRM reordering window {window}", config)
    for entries in (4, 64):
        config = replace(baseline, grid_core=replace(baseline.grid_core, bum_entries=entries))
        add_row(f"BUM buffer with {entries} entries", config)
    add_row("without FRM", baseline.without(frm=True))
    add_row("without BUM", baseline.without(bum=True))
    add_row("without multi-core fusion", baseline.without(fusion=True))

    print()
    print(format_table(
        ["Design point", "Per-scene runtime (s)", "Per-iteration (ms)", "Avg. power (W)"],
        rows,
        title="Instant-3D accelerator design-space sweep (paper-scale workload)",
    ))
    print("\nLarger bank counts and deeper FRM windows buy diminishing returns, "
          "while removing any of the three proposed techniques costs a "
          "multiplicative factor — the co-design conclusion of the paper.")


if __name__ == "__main__":
    main()
