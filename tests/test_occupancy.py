"""Tests for the occupancy-grid sample-pruning substrate."""

import numpy as np
import pytest

from repro.nerf import OccupancyGrid
from repro.utils.seeding import new_rng


def _ball_density(points_unit: np.ndarray) -> np.ndarray:
    """A synthetic density field: occupied inside a ball around the cube centre."""
    distance = np.linalg.norm(points_unit - 0.5, axis=1)
    return np.where(distance < 0.25, 10.0, 0.0)


class TestOccupancyGridBasics:
    def test_initial_state_keeps_everything(self):
        grid = OccupancyGrid(resolution=16)
        points = new_rng(0).uniform(size=(50, 3))
        assert np.all(grid.filter_samples(points))
        assert grid.occupancy_fraction == 0.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            OccupancyGrid(resolution=1)
        with pytest.raises(ValueError):
            OccupancyGrid(decay=1.5)
        with pytest.raises(ValueError):
            OccupancyGrid(occupancy_threshold=-1.0)

    def test_cell_indices_in_range(self):
        grid = OccupancyGrid(resolution=8)
        points = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0], [0.5, 0.2, 0.9]])
        ix, iy, iz = grid.cell_indices(points)
        for idx in (ix, iy, iz):
            assert np.all((idx >= 0) & (idx < 8))


class TestOccupancyGridUpdates:
    def test_update_marks_occupied_region(self):
        grid = OccupancyGrid(resolution=16, occupancy_threshold=0.5)
        grid.update(_ball_density, n_samples=8192, rng=new_rng(1))
        inside = np.full((20, 3), 0.5)
        outside = np.full((20, 3), 0.05)
        assert np.all(grid.is_occupied(inside))
        assert not np.any(grid.is_occupied(outside))
        assert 0.0 < grid.occupancy_fraction < 0.5

    def test_filter_samples_prunes_empty_space(self):
        grid = OccupancyGrid(resolution=16, occupancy_threshold=0.5)
        grid.update(_ball_density, n_samples=8192, rng=new_rng(2))
        rng = new_rng(3)
        points = rng.uniform(size=(2000, 3))
        keep = grid.filter_samples(points)
        # Much of the cube is empty, so a large fraction is pruned, and the
        # kept samples all lie near the occupied ball.
        assert keep.mean() < 0.5
        assert np.all(np.linalg.norm(points[keep] - 0.5, axis=1) < 0.45)

    def test_decay_clears_stale_occupancy(self):
        grid = OccupancyGrid(resolution=8, decay=0.5, occupancy_threshold=0.5)
        grid.update(_ball_density, n_samples=4096, rng=new_rng(4))
        assert grid.occupancy_fraction > 0.0
        for step in range(8):
            grid.update(lambda p: np.zeros(p.shape[0]), n_samples=1024,
                        rng=new_rng(10 + step))
        assert grid.occupancy_fraction == 0.0

    def test_mark_occupied(self):
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5)
        grid.mark_occupied(np.array([[0.9, 0.9, 0.9]]), density=2.0)
        assert grid.is_occupied(np.array([[0.9, 0.9, 0.9]]))[0]

    def test_mark_occupied_alone_enables_culling(self):
        """Regression: a grid seeded *only* via mark_occupied must cull.

        Previously only ``update()`` bumped the grid's data counter, so
        ``filter_samples`` treated a marked-but-never-updated grid as empty
        and kept everything — the forced occupancy silently never culled.
        """
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5)
        assert not grid.has_data
        grid.mark_occupied(np.array([[0.9, 0.9, 0.9]]), density=2.0)
        assert grid.has_data and grid.n_marks == 1 and grid.n_updates == 0
        points = np.array([[0.9, 0.9, 0.9], [0.1, 0.1, 0.1], [0.5, 0.5, 0.5]])
        keep = grid.filter_samples(points)
        np.testing.assert_array_equal(keep, [True, False, False])
        pruned = grid.expected_queries_per_iteration(n_rays=100, n_samples=10)
        assert pruned < 100 * 10

    def test_occupancy_view_is_cached_and_invalidated(self):
        """Perf fix: the binary view is computed once per density change."""
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5)
        first = grid.occupancy
        assert grid.occupancy is first                 # cached between reads
        grid.mark_occupied(np.array([[0.9, 0.9, 0.9]]), density=2.0)
        marked = grid.occupancy
        assert marked is not first                     # invalidated by mark
        assert marked.sum() == 1
        grid.update(lambda p: np.zeros(p.shape[0]), n_samples=64,
                    rng=new_rng(0))
        assert grid.occupancy is not marked            # invalidated by update

    def test_update_shape_mismatch_raises(self):
        grid = OccupancyGrid(resolution=8)
        with pytest.raises(ValueError):
            grid.update(lambda p: np.zeros(3), n_samples=16)

    def test_expected_queries_shrink_after_update(self):
        grid = OccupancyGrid(resolution=16, occupancy_threshold=0.5)
        dense = grid.expected_queries_per_iteration(n_rays=4096, n_samples=48)
        assert dense == 4096 * 48
        grid.update(_ball_density, n_samples=8192, rng=new_rng(5))
        pruned = grid.expected_queries_per_iteration(n_rays=4096, n_samples=48)
        assert pruned < dense


class TestOccupancyWithModel:
    def test_model_driven_update(self, tiny_model):
        """The grid can be refreshed directly from a radiance field's density branch."""
        grid = OccupancyGrid(resolution=8, occupancy_threshold=1e-3)

        def query_fn(points_unit):
            dirs = np.tile(np.array([0.0, 0.0, 1.0]), (points_unit.shape[0], 1))
            sigma, _rgb = tiny_model.query(points_unit, dirs)
            return sigma

        grid.update(query_fn, n_samples=512, rng=new_rng(6))
        points = new_rng(7).uniform(size=(64, 3))
        keep = grid.filter_samples(points)
        assert keep.dtype == bool and keep.shape == (64,)
