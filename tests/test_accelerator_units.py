"""Unit tests for the accelerator building blocks: SRAM, FRM, BUM, MLP units, fusion."""

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AdderTreeUnit,
    BackPropUpdateMerger,
    FeedForwardReadMapper,
    FusionMode,
    GridCoreConfig,
    MLPEngine,
    MLPUnitConfig,
    SRAMBankArray,
    SystolicArrayUnit,
    replay_trace,
    select_fusion_mode,
)
from repro.accelerator.fusion import plan_fusion
from repro.accelerator.mlp_unit import MLPLayerShape


class TestSRAMBankArray:
    def test_bank_mapping_range(self):
        sram = SRAMBankArray(n_banks=8, table_entries=1000)
        banks = sram.bank_of(np.arange(1000))
        assert banks.min() == 0 and banks.max() == 7

    def test_conflict_free_batch_takes_one_cycle(self):
        sram = SRAMBankArray(n_banks=8, table_entries=64)
        addresses = np.arange(8)          # one address per bank
        assert sram.cycles_for_batch(addresses) == 1

    def test_full_conflict_batch_serialises(self):
        sram = SRAMBankArray(n_banks=8, table_entries=64)
        addresses = np.full(5, 16)        # same bank five times
        assert sram.cycles_for_batch(addresses) == 5

    def test_service_accumulates_stats(self):
        sram = SRAMBankArray(n_banks=4, table_entries=64)
        stats = sram.service([np.arange(4), np.zeros(4, dtype=int)])
        assert stats.n_accesses == 8
        assert stats.n_cycles == 1 + 4
        assert stats.n_conflict_cycles == 3
        assert 0.0 < stats.bank_utilization <= 1.0

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            SRAMBankArray(n_banks=0, table_entries=16)
        with pytest.raises(ValueError):
            SRAMBankArray(n_banks=4, table_entries=16).bank_of(np.array([-1]))


class TestFeedForwardReadMapper:
    def test_mapping_never_slower_than_unmapped(self):
        sram = SRAMBankArray(n_banks=8, table_entries=4096)
        frm = FeedForwardReadMapper(sram, window=16)
        rng = np.random.default_rng(0)
        addresses = rng.integers(0, 4096, size=512)
        result = frm.schedule(addresses)
        assert result.mapped_cycles <= result.unmapped_cycles
        assert result.speedup >= 1.0

    def test_disabled_mapper_equals_unmapped(self):
        sram = SRAMBankArray(n_banks=8, table_entries=4096)
        frm = FeedForwardReadMapper(sram, window=16)
        addresses = np.random.default_rng(1).integers(0, 4096, size=256)
        result = frm.schedule(addresses, enabled=False)
        assert result.mapped_cycles == result.unmapped_cycles

    def test_grouped_requests_benefit_from_mapping(self):
        """Eight requests spread over few banks per point leave banks idle;
        the FRM packs requests from several points into one cycle."""
        sram = SRAMBankArray(n_banks=8, table_entries=8000)
        frm = FeedForwardReadMapper(sram, window=32, requests_per_group=8)
        # Construct point groups that each touch only two banks (four requests
        # per bank), so an unmapped group needs four cycles on its own while
        # consecutive groups hit different bank pairs and can be interleaved.
        groups = []
        for point in range(64):
            base = (2 * point) % 8
            groups.append([base] * 4 + [base + 1] * 4)
        addresses = np.concatenate(groups)
        result = frm.schedule(addresses)
        assert result.speedup > 1.5
        assert result.mapped_utilization > result.unmapped_utilization

    def test_all_requests_serviced_exactly_once(self):
        sram = SRAMBankArray(n_banks=4, table_entries=64)
        frm = FeedForwardReadMapper(sram, window=8)
        addresses = np.random.default_rng(3).integers(0, 64, size=100)
        result = frm.schedule(addresses)
        # Total accesses serviced cannot exceed cycle capacity.
        assert result.n_requests == 100
        assert result.mapped_cycles * sram.n_banks >= 100

    def test_empty_trace(self):
        sram = SRAMBankArray(n_banks=4, table_entries=64)
        frm = FeedForwardReadMapper(sram, window=8)
        result = frm.schedule(np.array([], dtype=np.int64))
        assert result.mapped_cycles == 0 and result.unmapped_cycles == 0

    def test_invalid_window(self):
        sram = SRAMBankArray(n_banks=4, table_entries=64)
        with pytest.raises(ValueError):
            FeedForwardReadMapper(sram, window=0)


class TestBackPropUpdateMerger:
    def test_repeated_address_is_merged(self):
        bum = BackPropUpdateMerger(n_entries=16, timeout_cycles=16)
        addresses = np.array([5, 5, 5, 5, 5, 5])
        result = bum.process(addresses)
        assert result.n_sram_writes == 1
        assert result.n_merged == 5
        assert result.write_reduction > 0.8

    def test_unique_addresses_are_not_merged(self):
        bum = BackPropUpdateMerger(n_entries=16, timeout_cycles=16)
        addresses = np.arange(64)
        result = bum.process(addresses)
        assert result.n_merged == 0
        assert result.n_sram_writes == 64

    def test_disabled_bum_writes_everything(self):
        bum = BackPropUpdateMerger()
        addresses = np.array([1, 1, 2, 2])
        result = bum.process(addresses, enabled=False)
        assert result.n_sram_writes == 4
        assert result.write_reduction == 0.0

    def test_timeout_forces_writeback(self):
        bum = BackPropUpdateMerger(n_entries=16, timeout_cycles=2)
        # Address 7 recurs but only after the timeout has expired.
        addresses = np.array([7, 100, 101, 102, 103, 7])
        result = bum.process(addresses)
        assert result.n_merged == 0

    def test_capacity_eviction(self):
        bum = BackPropUpdateMerger(n_entries=2, timeout_cycles=100)
        addresses = np.array([1, 2, 3, 1])   # 1 evicted before it recurs
        result = bum.process(addresses)
        assert result.n_sram_writes >= 3

    def test_write_count_never_exceeds_updates(self):
        bum = BackPropUpdateMerger(n_entries=8, timeout_cycles=4)
        addresses = np.random.default_rng(0).integers(0, 32, size=500)
        result = bum.process(addresses)
        assert result.n_sram_writes <= result.n_updates
        assert result.n_sram_writes >= len(np.unique(addresses)) - 1

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BackPropUpdateMerger(n_entries=0)

    def test_empty_stream(self):
        result = BackPropUpdateMerger().process(np.array([], dtype=np.int64))
        assert result.n_updates == 0
        assert result.n_sram_writes == 0
        assert result.n_merged == 0
        assert result.merge_rate == 0.0
        assert result.write_reduction == 0.0

    def test_single_entry_buffer_merges_only_immediate_repeats(self):
        bum = BackPropUpdateMerger(n_entries=1, timeout_cycles=100)
        # The lone entry is displaced by every address change, so only
        # back-to-back repeats merge: 5,5 and 6,6,6 -> 3 merges, 3 writes.
        result = bum.process(np.array([5, 5, 7, 6, 6, 6]))
        assert result.n_merged == 3
        assert result.n_sram_writes == 3

    def test_timeout_eviction_order_is_least_recently_merged(self):
        # Entries 1 and 2 are inserted, then 1 is refreshed.  After the
        # timeout window passes, 2 (stale) is written back while 1 (fresh)
        # is still mergeable.
        bum = BackPropUpdateMerger(n_entries=16, timeout_cycles=3)
        result = bum.process(np.array([1, 2, 1, 1, 2]))
        # merges: 1@2, 1@3; 2 expires at cycle 4 (last merged cycle 1),
        # so the final 2 re-inserts instead of merging.
        assert result.n_merged == 2
        assert result.n_sram_writes == 3

    def test_replay_trace_summarises_capped_stream(self):
        trace = np.array([3, 3, 3, 9, 9, 42, 42, 42, 42, 7])
        summary = replay_trace(trace, cap=9)   # drops the trailing 7
        assert summary["n_updates"] == 9
        assert summary["unique_addresses"] == 3
        assert summary["n_merged"] == 6
        assert summary["merge_rate"] == pytest.approx(6 / 9)
        # A perfect merger would coalesce every repeat.
        assert summary["perfect_merge_rate"] == pytest.approx(1 - 3 / 9)
        assert summary["merge_rate"] <= summary["perfect_merge_rate"]


class TestMLPUnits:
    def test_systolic_cycles_scale_with_batch(self):
        unit = SystolicArrayUnit(rows=16, cols=16)
        layer = MLPLayerShape(in_features=16, out_features=16)
        assert unit.cycles_for_layer(layer, 2000) > unit.cycles_for_layer(layer, 100)

    def test_systolic_tiling(self):
        unit = SystolicArrayUnit(rows=16, cols=16, utilization=1.0)
        small = MLPLayerShape(in_features=16, out_features=16)
        large = MLPLayerShape(in_features=32, out_features=32)
        assert unit.cycles_for_layer(large, 100) >= 4 * unit.cycles_for_layer(small, 100) - 200

    def test_adder_tree_cheaper_for_small_outputs(self):
        config = MLPUnitConfig()
        engine = MLPEngine(config)
        rgb_layer = MLPLayerShape(in_features=64, out_features=3)
        assert engine.route(rgb_layer) == "adder_tree"
        hidden_layer = MLPLayerShape(in_features=64, out_features=64)
        assert engine.route(hidden_layer) == "systolic"

    def test_engine_total_cycles(self):
        engine = MLPEngine(MLPUnitConfig())
        layers = MLPEngine.head_layers(16, 64, 2, 3)
        total, routing = engine.cycles_for_layers(layers, 1024)
        assert total == sum(cycles for _unit, cycles in routing)
        assert routing[-1][0] == "adder_tree"

    def test_head_layers_shapes(self):
        layers = MLPEngine.head_layers(in_features=10, hidden_width=32,
                                       hidden_layers=2, out_features=3)
        assert [(l.in_features, l.out_features) for l in layers] == [
            (10, 32), (32, 32), (32, 3)]

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            SystolicArrayUnit(rows=0, cols=4)
        with pytest.raises(ValueError):
            AdderTreeUnit(n_macs=0)


class TestFusion:
    def test_mode_selection_by_table_size(self):
        config = AcceleratorConfig()
        assert select_fusion_mode(200 * 1024, config) is FusionMode.LEVEL0_STANDALONE
        assert select_fusion_mode(400 * 1024, config) is FusionMode.LEVEL1_FUSION
        assert select_fusion_mode(900 * 1024, config) is FusionMode.LEVEL2_FUSION

    def test_mode_properties(self):
        assert FusionMode.LEVEL0_STANDALONE.n_banks == 8
        assert FusionMode.LEVEL1_FUSION.n_banks == 16
        assert FusionMode.LEVEL2_FUSION.n_banks == 32
        assert FusionMode.LEVEL2_FUSION.max_table_bytes == 1024 * 1024

    def test_plan_without_fusion_segments_large_tables(self):
        config = AcceleratorConfig(fusion_enabled=False)
        plan = plan_fusion(1024 * 1024, config)
        assert plan.mode is FusionMode.LEVEL0_STANDALONE
        assert plan.n_segments == 4
        assert plan.dram_swap_bytes > 0

    def test_plan_with_fusion_fits_published_tables(self):
        config = AcceleratorConfig()
        density_plan = plan_fusion(1024 * 1024, config)
        color_plan = plan_fusion(256 * 1024, config)
        assert density_plan.n_segments == 1
        assert color_plan.n_segments == 1
        assert density_plan.mode is FusionMode.LEVEL2_FUSION
        assert color_plan.mode is FusionMode.LEVEL0_STANDALONE

    def test_invalid_table_size(self):
        with pytest.raises(ValueError):
            select_fusion_mode(0, AcceleratorConfig())


class TestAcceleratorConfig:
    def test_published_design_point(self):
        config = AcceleratorConfig()
        assert config.n_grid_cores == 4
        assert config.total_grid_sram_bytes == 4 * 8 * 32 * 1024     # 1 MB
        assert 1.0e6 < config.total_sram_bytes < 2.0e6               # ~1.5 MB total
        assert config.frequency_hz == pytest.approx(800e6)

    def test_without_helper(self):
        config = AcceleratorConfig().without(frm=True, bum=True)
        assert not config.frm_enabled and not config.bum_enabled
        assert config.fusion_enabled

    def test_grid_core_config_validation(self):
        with pytest.raises(ValueError):
            GridCoreConfig(n_banks=0)
        with pytest.raises(ValueError):
            MLPUnitConfig(utilization=0.0)
