"""Differential tests for the occupancy-culled render pipeline.

Three contracts anchor the refactor:

(a) ``culling_enabled=False`` (the default) is *bit-identical* to the
    pre-pipeline trainer — same losses, same parameters — so every existing
    experiment is unaffected;
(b) with culling on but a fully-occupied grid, compaction is a no-op:
    losses and gradients reproduce the dense run exactly;
(c) early ray termination changes evaluation renders by at most the
    transmittance floor.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.core.model import DecoupledRadianceField
from repro.core.schedule import BranchSchedules
from repro.nerf.cameras import sample_pixel_batch
from repro.nerf.losses import mse_loss
from repro.nerf.occupancy import OccupancyGrid
from repro.nerf.pipeline import RenderPipeline
from repro.nerf.sampling import normalize_points_to_unit_cube, ray_points, stratified_samples
from repro.nerf.volume_rendering import VolumeRenderer
from repro.nn.optim import Adam
from repro.training.metrics import render_view
from repro.training.profiler import build_iteration_workload, profile_iteration
from repro.training.trainer import Trainer, TrainingHistory
from repro.utils.seeding import derive_rng, new_rng


def _reference_dense_run(dataset, config, seed, n_steps):
    """The pre-pipeline six-step training loop, kept verbatim as the oracle.

    A frozen twin lives in ``benchmarks/bench_throughput.py``
    (``_reference_dense_losses``); neither copy should ever change.
    """
    model = DecoupledRadianceField(config, seed=seed)
    schedules = BranchSchedules.from_frequencies(
        config.density_update_freq, config.color_update_freq)
    renderer = VolumeRenderer(white_background=config.white_background)
    density_opt = Adam(model.density_parameters(), lr=config.learning_rate)
    color_opt = Adam(model.color_parameters(), lr=config.learning_rate)
    pixel_rng = derive_rng(seed, f"{dataset.name}:pixels")
    sample_rng = derive_rng(seed, f"{dataset.name}:samples")
    losses = []
    for iteration in range(n_steps):
        update_density, update_color = schedules.updates_at(iteration)
        bundle, targets = sample_pixel_batch(
            dataset.train_cameras, dataset.train_images,
            config.batch_pixels, pixel_rng)
        t_vals, deltas = stratified_samples(bundle, config.n_samples_per_ray,
                                            rng=sample_rng)
        points, dirs = ray_points(bundle, t_vals)
        points_unit = normalize_points_to_unit_cube(points, dataset.scene_bound)
        sigma, rgb = model.query(points_unit, dirs)
        n_rays, n_samples = bundle.n_rays, config.n_samples_per_ray
        render = renderer.forward(sigma.reshape(n_rays, n_samples),
                                  rgb.reshape(n_rays, n_samples, 3),
                                  deltas, t_vals)
        loss, grad_colors = mse_loss(render.colors, targets)
        grad_sigmas, grad_rgbs = renderer.backward(grad_colors)
        model.zero_grad()
        model.backward(grad_sigmas.reshape(-1), grad_rgbs.reshape(-1, 3),
                       update_density=update_density, update_color=update_color)
        if update_density:
            density_opt.step()
        if update_color:
            color_opt.step()
        losses.append(loss)
    return model, losses


def _params_equal(model_a, model_b) -> bool:
    return all(np.array_equal(a.data, b.data)
               for a, b in zip(model_a.parameters(), model_b.parameters()))


def _force_fully_occupied(grid: OccupancyGrid) -> None:
    """Make every cell occupied and the mask path active (updates > 0)."""
    grid.density.fill(1.0)
    grid._updates = 1


class TestDensePathBitIdentity:
    def test_trainer_matches_reference_over_20_steps(self, tiny_config, tiny_dataset):
        """(a) The dense pipeline path is bit-identical to the old trainer."""
        ref_model, ref_losses = _reference_dense_run(tiny_dataset, tiny_config,
                                                     seed=0, n_steps=20)
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        losses = [trainer.train_step()["loss"] for _ in range(20)]
        assert losses == ref_losses
        assert _params_equal(model, ref_model)

    def test_dense_render_view_unchanged(self, tiny_model, tiny_dataset):
        """render_view without occupancy/termination equals the manual render."""
        camera = tiny_dataset.test_views[0].camera
        n_samples = 8
        rgb, depth = render_view(tiny_model, camera, tiny_dataset.scene_bound,
                                 n_samples=n_samples)
        bundle = camera.all_rays()
        renderer = VolumeRenderer(white_background=True)
        t_vals, deltas = stratified_samples(bundle, n_samples, rng=None)
        points, dirs = ray_points(bundle, t_vals)
        points_unit = normalize_points_to_unit_cube(points, tiny_dataset.scene_bound)
        sigma, rgb_pts = tiny_model.query(points_unit, dirs)
        out = renderer.forward(sigma.reshape(bundle.n_rays, n_samples),
                               rgb_pts.reshape(bundle.n_rays, n_samples, 3),
                               deltas, t_vals)
        expected = np.clip(out.colors, 0.0, 1.0).reshape(rgb.shape)
        assert np.array_equal(rgb, expected)
        assert np.array_equal(depth, out.depth.reshape(depth.shape))


class TestFullyOccupiedCulling:
    def test_fully_occupied_grid_reproduces_dense_run(self, tiny_config, tiny_dataset):
        """(b) Compaction through an all-occupied grid is an exact no-op."""
        dense_model = DecoupledRadianceField(tiny_config, seed=0)
        dense_trainer = Trainer(dense_model, tiny_dataset, seed=0)
        dense_losses = [dense_trainer.train_step()["loss"] for _ in range(10)]

        culled_config = dataclasses.replace(
            tiny_config, culling_enabled=True,
            occupancy_warmup_iterations=10**6)   # no refresh during the test
        culled_model = DecoupledRadianceField(culled_config, seed=0)
        culled_trainer = Trainer(culled_model, tiny_dataset,
                                 config=culled_config, seed=0)
        _force_fully_occupied(culled_trainer.occupancy)
        culled_losses = [culled_trainer.train_step()["loss"] for _ in range(10)]

        assert culled_losses == dense_losses
        assert _params_equal(culled_model, dense_model)

    def test_partial_mask_matches_zeroed_dense_forward(self, tiny_model, tiny_dataset):
        """Compacting K samples equals querying densely and zeroing the rest."""
        camera = tiny_dataset.test_views[0].camera
        bundle = camera.all_rays()
        n_samples = 8
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5, seed=3)
        # A half-occupied grid: occupy a slab of cells.
        grid.density[:4].fill(1.0)
        grid._updates = 1

        pipeline = RenderPipeline(tiny_model, tiny_dataset.scene_bound,
                                  n_samples=n_samples, occupancy=grid)
        out = pipeline.render_rays(bundle, rng=None)
        assert 0 < out.n_queried < out.n_total

        t_vals, deltas = stratified_samples(bundle, n_samples, rng=None)
        points, dirs = ray_points(bundle, t_vals)
        points_unit = normalize_points_to_unit_cube(points, tiny_dataset.scene_bound)
        keep = grid.filter_samples(points_unit)
        sigma, rgb = tiny_model.query(points_unit, dirs)
        sigma = np.where(keep, sigma, 0.0)
        rgb = np.where(keep[:, None], rgb, 0.0)
        renderer = VolumeRenderer(white_background=True)
        expected = renderer.forward(sigma.reshape(bundle.n_rays, n_samples),
                                    rgb.reshape(bundle.n_rays, n_samples, 3),
                                    deltas, t_vals)
        np.testing.assert_allclose(out.render.colors, expected.colors, atol=1e-12)

    def test_backward_only_touches_kept_samples(self, tiny_config, tiny_dataset):
        """Gradient gather returns exactly one row per queried sample."""
        model = DecoupledRadianceField(tiny_config, seed=0)
        camera = tiny_dataset.test_views[0].camera
        bundle = camera.all_rays()
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5, seed=3)
        grid.density[4:].fill(1.0)
        grid._updates = 1
        pipeline = RenderPipeline(model, tiny_dataset.scene_bound,
                                  n_samples=8, occupancy=grid)
        out = pipeline.render_rays(bundle, rng=None)
        grad_colors = np.ones((bundle.n_rays, 3))
        grad_sigma, grad_rgb = pipeline.backward_to_points(grad_colors)
        assert grad_sigma.shape == (out.n_queried,)
        assert grad_rgb.shape == (out.n_queried, 3)
        model.backward(grad_sigma, grad_rgb)      # shapes accepted by the field


class TestEarlyTermination:
    @pytest.fixture(scope="class")
    def trained(self, tiny_config, tiny_dataset):
        model = DecoupledRadianceField(tiny_config, seed=0)
        trainer = Trainer(model, tiny_dataset, seed=0)
        for _ in range(60):
            trainer.train_step()
        return model

    def test_terminated_render_matches_full_within_tau(self, trained, tiny_dataset):
        """(c) Early termination changes the render by at most ~tau."""
        camera = tiny_dataset.test_views[0].camera
        tau = 1e-3
        full_rgb, full_depth = render_view(trained, camera,
                                           tiny_dataset.scene_bound, n_samples=16)
        term_rgb, term_depth = render_view(trained, camera,
                                           tiny_dataset.scene_bound, n_samples=16,
                                           early_termination_tau=tau)
        assert np.max(np.abs(term_rgb - full_rgb)) < 5e-3
        assert np.max(np.abs(term_depth - full_depth)) < 5e-2

    def test_termination_saves_queries_on_opaque_scene(self, trained, tiny_dataset):
        camera = tiny_dataset.test_views[0].camera
        bundle = camera.all_rays()
        pipeline = RenderPipeline(trained, tiny_dataset.scene_bound, n_samples=16,
                                  early_termination_tau=1e-2,
                                  termination_segment=4)
        out = pipeline.render_rays(bundle, rng=None, allow_termination=True)
        assert out.n_queried < out.n_total

    def test_backward_after_termination_raises(self, trained, tiny_dataset):
        camera = tiny_dataset.test_views[0].camera
        bundle = camera.all_rays()
        pipeline = RenderPipeline(trained, tiny_dataset.scene_bound, n_samples=8,
                                  early_termination_tau=1e-2)
        pipeline.render_rays(bundle, rng=None, allow_termination=True)
        with pytest.raises(RuntimeError):
            pipeline.backward_to_points(np.ones((bundle.n_rays, 3)))


class TestCulledTrainingRun:
    def test_culling_reduces_queries_and_records_history(self, tiny_config, tiny_dataset):
        config = dataclasses.replace(
            tiny_config, culling_enabled=True,
            occupancy_warmup_iterations=8, occupancy_update_every=4)
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        history = TrainingHistory()
        trainer.run_steps(80, history)
        assert len(history.queries_total) == 80
        assert len(history.queries_kept) == 80
        assert len(history.occupancy_fractions) == 80
        # Before the first refresh everything is kept (and the accounting
        # says so — no bogus "0% occupied" during warm-up)...
        assert history.queries_kept[0] == history.queries_total[0]
        assert history.occupancy_fractions[0] == 1.0
        # ...and after warm-up the occupancy grid prunes a real share.
        assert history.queries_kept[-1] < history.queries_total[-1]
        assert history.mean_keep_fraction(10) < 1.0
        assert 0.0 < trainer.occupancy.occupancy_fraction < 1.0

        result = trainer.finalize(history)
        assert result.final_occupancy_fraction == trainer.occupancy.occupancy_fraction
        assert result.queries_kept < result.queries_total
        # The culling ledger also charges the refreshes' density probes.
        assert result.occupancy_refresh_points == (
            config.occupancy_refresh_samples * trainer.occupancy.n_updates)
        assert np.isfinite(result.rgb_psnr)

    def test_all_empty_grid_never_freezes_training(self, tiny_dataset):
        """An all-empty grid keeps every sample instead of deadlocking."""
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5, seed=0)
        grid.update(lambda p: np.zeros(p.shape[0]))     # refresh finds nothing
        assert grid.occupancy_fraction == 0.0
        points = new_rng(0).uniform(size=(50, 3))
        assert np.all(grid.filter_samples(points))
        assert grid.expected_queries_per_iteration(10, 5) == 50

    def test_pipeline_validation(self, tiny_model):
        with pytest.raises(ValueError):
            RenderPipeline(tiny_model, 1.0, n_samples=0)
        with pytest.raises(ValueError):
            RenderPipeline(tiny_model, 1.0, n_samples=8, early_termination_tau=2.0)
        with pytest.raises(ValueError):
            RenderPipeline(tiny_model, 1.0, n_samples=8, termination_segment=0)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            Instant3DConfig(occupancy_resolution=1)
        with pytest.raises(ValueError):
            Instant3DConfig(occupancy_update_every=0)
        with pytest.raises(ValueError):
            Instant3DConfig(occupancy_warmup_iterations=-1)
        with pytest.raises(ValueError):
            Instant3DConfig(occupancy_decay=1.0)
        with pytest.raises(ValueError):
            Instant3DConfig(occupancy_threshold=-0.1)
        with pytest.raises(ValueError):
            Instant3DConfig(occupancy_refresh_samples=0)
        with pytest.raises(ValueError):
            Instant3DConfig(early_termination_tau=0.0)


class TestOccupancySeeding:
    @staticmethod
    def _recorded_updates(seed: int, n_updates: int):
        """Run updates with the grid's own generator, recording probe points."""
        grid = OccupancyGrid(resolution=8, seed=seed)
        probes = []

        def query_fn(points):
            probes.append(np.array(points))
            return np.zeros(points.shape[0])

        for _ in range(n_updates):
            grid.update(query_fn, n_samples=64)
        return probes

    def test_successive_updates_probe_fresh_points(self):
        first, second = self._recorded_updates(seed=0, n_updates=2)
        assert not np.array_equal(first, second)

    def test_same_seed_reproduces_probe_sequence(self):
        a = self._recorded_updates(seed=7, n_updates=3)
        b = self._recorded_updates(seed=7, n_updates=3)
        for pa, pb in zip(a, b):
            assert np.array_equal(pa, pb)

    def test_different_seeds_decorrelate(self):
        a = self._recorded_updates(seed=0, n_updates=1)
        b = self._recorded_updates(seed=1, n_updates=1)
        assert not np.array_equal(a[0], b[0])

    def test_explicit_rng_still_wins(self):
        grid = OccupancyGrid(resolution=8, seed=0)
        probes = []

        def query_fn(points):
            probes.append(np.array(points))
            return np.zeros(points.shape[0])

        grid.update(query_fn, n_samples=32, rng=new_rng(5))
        expected = new_rng(5).uniform(0.0, 1.0, size=(32, 3))
        assert np.array_equal(probes[0], expected)


class TestProfilerCulling:
    def test_keep_fraction_scales_point_steps(self):
        config = Instant3DConfig.paper_scale_baseline()
        dense = build_iteration_workload(config)
        culled = build_iteration_workload(config, keep_fraction=0.25)
        for step_name in ("grid_forward", "grid_backward", "mlp_forward",
                          "mlp_backward"):
            dense_total = dense.total("flops", [step_name])
            culled_total = culled.total("flops", [step_name])
            assert culled_total == pytest.approx(0.25 * dense_total)
        # Host-side steps are unaffected (dense compositing planes).
        assert (culled.total("flops", ["volume_render"])
                == dense.total("flops", ["volume_render"]))
        assert culled.keep_fraction == 0.25
        assert culled.culled_points_per_iteration == dense.points_per_iteration // 4
        assert (culled.queries_saved_per_iteration
                == dense.points_per_iteration - culled.culled_points_per_iteration)

    def test_occupancy_grid_supplies_keep_fraction(self):
        grid = OccupancyGrid(resolution=8, occupancy_threshold=0.5, seed=0)
        grid.density[:2].fill(1.0)            # 1/4 of the cells occupied
        grid._updates = 1
        config = Instant3DConfig.paper_scale_baseline()
        workload = build_iteration_workload(config, occupancy=grid)
        assert workload.keep_fraction == pytest.approx(grid.occupancy_fraction)
        assert workload.culled_points_per_iteration < workload.points_per_iteration

    def test_occupancy_and_keep_fraction_are_exclusive(self):
        grid = OccupancyGrid(resolution=8, seed=0)
        with pytest.raises(ValueError):
            build_iteration_workload(Instant3DConfig.paper_scale_baseline(),
                                     occupancy=grid, keep_fraction=0.5)
        with pytest.raises(ValueError):
            build_iteration_workload(Instant3DConfig.paper_scale_baseline(),
                                     keep_fraction=1.5)

    def test_profile_iteration_alias(self):
        assert profile_iteration is build_iteration_workload

    def test_devices_price_culled_workload_cheaper(self):
        from repro.accelerator.devices import baseline_devices

        config = Instant3DConfig.paper_scale_baseline()
        dense = build_iteration_workload(config)
        culled = build_iteration_workload(config, keep_fraction=0.3)
        device = next(iter(baseline_devices().values()))
        assert (device.estimate_training(culled).per_iteration_s
                < device.estimate_training(dense).per_iteration_s)

    def test_breakdown_surfaces_culled_counts(self):
        from repro.accelerator.devices import baseline_devices
        from repro.analysis.breakdown import runtime_breakdown

        config = Instant3DConfig.paper_scale_baseline()
        workload = build_iteration_workload(config, keep_fraction=0.5)
        device = next(iter(baseline_devices().values()))
        estimate = device.estimate_training(workload)
        breakdown = runtime_breakdown(estimate, workload=workload)
        assert breakdown.keep_fraction == 0.5
        assert breakdown.points_per_iteration == workload.points_per_iteration
        assert (breakdown.culled_points_per_iteration
                == workload.culled_points_per_iteration)
        assert (breakdown.queries_saved_per_iteration
                == workload.queries_saved_per_iteration)
        # Default call keeps the dense accounting.
        assert runtime_breakdown(estimate).keep_fraction == 1.0
