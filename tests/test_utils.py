"""Tests for repro.utils: 3-D math, RNG derivation and table formatting."""

import numpy as np
import pytest

from repro.utils import (
    derive_rng,
    format_table,
    look_at_pose,
    new_rng,
    normalize,
    rotation_x,
    rotation_y,
    rotation_z,
    spherical_pose,
    transform_directions,
    transform_points,
)


class TestNormalize:
    def test_unit_length(self):
        v = np.array([[3.0, 4.0, 0.0], [0.0, 0.0, 2.0]])
        out = normalize(v)
        np.testing.assert_allclose(np.linalg.norm(out, axis=-1), 1.0)

    def test_zero_vector_does_not_nan(self):
        out = normalize(np.zeros(3))
        assert not np.any(np.isnan(out))

    def test_direction_preserved(self):
        v = np.array([2.0, 0.0, 0.0])
        np.testing.assert_allclose(normalize(v), [1.0, 0.0, 0.0])


class TestRotations:
    @pytest.mark.parametrize("rot", [rotation_x, rotation_y, rotation_z])
    def test_rotation_is_orthonormal(self, rot):
        m = rot(0.7)[:3, :3]
        np.testing.assert_allclose(m @ m.T, np.eye(3), atol=1e-12)
        assert np.isclose(np.linalg.det(m), 1.0)

    def test_rotation_z_quarter_turn(self):
        m = rotation_z(np.pi / 2)
        np.testing.assert_allclose(m[:3, :3] @ np.array([1.0, 0.0, 0.0]),
                                   [0.0, 1.0, 0.0], atol=1e-12)


class TestLookAtPose:
    def test_camera_position(self):
        pose = look_at_pose(eye=[0.0, -3.0, 1.0], target=[0.0, 0.0, 0.0])
        np.testing.assert_allclose(pose[:3, 3], [0.0, -3.0, 1.0])

    def test_camera_looks_at_target(self):
        eye = np.array([2.0, -3.0, 1.5])
        pose = look_at_pose(eye=eye, target=[0.0, 0.0, 0.0])
        # Camera -z axis (third column negated) should point from eye to target.
        forward_world = -pose[:3, 2]
        expected = -eye / np.linalg.norm(eye)
        np.testing.assert_allclose(forward_world, expected, atol=1e-12)

    def test_rotation_block_is_orthonormal(self):
        pose = look_at_pose(eye=[1.0, 2.0, 3.0], target=[0.0, 0.5, 0.0])
        r = pose[:3, :3]
        np.testing.assert_allclose(r @ r.T, np.eye(3), atol=1e-12)


class TestSphericalPose:
    def test_radius_respected(self):
        pose = spherical_pose(radius=2.5, theta=0.3, phi=0.4)
        assert np.isclose(np.linalg.norm(pose[:3, 3]), 2.5)

    def test_elevation_sets_z(self):
        pose = spherical_pose(radius=1.0, theta=0.0, phi=np.pi / 2)
        np.testing.assert_allclose(pose[:3, 3], [0.0, 0.0, 1.0], atol=1e-12)


class TestTransforms:
    def test_transform_points_translation(self):
        pose = np.eye(4)
        pose[:3, 3] = [1.0, 2.0, 3.0]
        out = transform_points(pose, np.zeros((2, 3)))
        np.testing.assert_allclose(out, [[1.0, 2.0, 3.0]] * 2)

    def test_transform_directions_ignores_translation(self):
        pose = np.eye(4)
        pose[:3, 3] = [5.0, 5.0, 5.0]
        out = transform_directions(pose, np.array([[0.0, 0.0, 1.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 1.0]])


class TestSeeding:
    def test_new_rng_deterministic(self):
        assert new_rng(7).integers(0, 1000) == new_rng(7).integers(0, 1000)

    def test_derive_rng_differs_by_key(self):
        a = derive_rng(0, "pixels").integers(0, 10**9)
        b = derive_rng(0, "weights").integers(0, 10**9)
        assert a != b

    def test_derive_rng_reproducible(self):
        assert (derive_rng(3, "x").integers(0, 10**9)
                == derive_rng(3, "x").integers(0, 10**9))


class TestFormatTable:
    def test_contains_headers_and_rows(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 3]], title="T")
        assert "T" in out and "a" in out and "bb" in out and "2.500" in out

    def test_row_alignment(self):
        out = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = out.splitlines()
        assert len(set(len(line) for line in lines[2:])) == 1
