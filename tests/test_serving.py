"""Serving-layer tests: staged pipeline differentials, residency, service.

The load-bearing guarantees:

* the stage-split :class:`~repro.nerf.pipeline.RenderPipeline` is
  **bit-identical** to the PR 7 monolithic forward/backward (dense and
  culled, float64 and float32) — enforced against a frozen in-test copy of
  the monolith;
* cross-request coalescing computes the same renders as per-request
  dispatch (to BLAS-reduction tolerance);
* the :class:`~repro.serving.residency.ResidencyManager` evicts in LRU
  order, respects pins, and a scene evicted mid-training resumes
  bit-identically;
* the :class:`~repro.serving.service.SceneService` preserves solo training
  trajectories under interleaved render+train jobs across more scenes than
  the residency cap, coalesces same-scene renders, honours priorities and
  propagates worker errors;
* :class:`~repro.training.profiler.PhaseTimer` merges concurrent
  per-thread sections without losing counts.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import numpy as np
import pytest

from repro.core.model import DecoupledRadianceField
from repro.datasets import make_synthetic_scene
from repro.datasets.dataset import build_dataset
from repro.nerf.cameras import RayBundle
from repro.nerf.pipeline import RenderPipeline
from repro.nerf.sampling import (
    normalize_points_to_unit_cube,
    ray_points,
    stratified_samples,
)
from repro.nerf.volume_rendering import VolumeRenderer
from repro.serving import (
    JobCancelled,
    RenderJob,
    ResidencyManager,
    SceneService,
    render_coalesced,
)
from repro.training.fleet import SceneFleet
from repro.training.profiler import PhaseTimer
from repro.training.trainer import Trainer, TrainingHistory, train_scene


# ---------------------------------------------------------------------------
# Frozen PR 7 oracle: the monolithic render_rays forward and backward gather
# exactly as they were before the stage split.  Deliberately arena-free (the
# arena only changes where buffers live, not their values).
# ---------------------------------------------------------------------------

def _monolithic_forward(pipeline, bundle, rng=None):
    """The pre-stage-split forward; returns (render, n_queried, keep_idx,
    renderer) so the matching backward can be replayed."""
    backend = pipeline.backend
    dtype = pipeline.policy.dtype
    n_rays, n_samples = bundle.n_rays, pipeline.n_samples
    t_vals, deltas = stratified_samples(bundle, n_samples, rng=rng,
                                        dtype=dtype, backend=backend)
    points, dirs = ray_points(bundle, t_vals, dtype=dtype, backend=backend)
    points_unit = normalize_points_to_unit_cube(points, pipeline.scene_bound,
                                                dtype=dtype, backend=backend)
    renderer = VolumeRenderer(
        white_background=pipeline.renderer.white_background,
        policy=pipeline.policy, backend=backend)
    keep_idx = None
    if pipeline.culling_active:
        keep = pipeline.occupancy.filter_samples(points_unit)
        if keep.all():
            sigma, rgb = pipeline.model.query(points_unit, dirs)
            render = renderer.forward(sigma.reshape(n_rays, n_samples),
                                      rgb.reshape(n_rays, n_samples, 3),
                                      deltas, t_vals)
            return render, int(keep.size), None, renderer
        sigma_plane = backend.zeros(n_rays * n_samples, dtype)
        rgb_plane = backend.zeros((n_rays * n_samples, 3), dtype)
        idx = backend.flatnonzero(keep)
        n_queried = int(idx.size)
        if pipeline.address_sort and n_queried:
            idx = np.array(
                pipeline._address_sorted(points_unit, idx, n_queried),
                copy=True)
        keep_idx = idx
        if n_queried:
            kept_points = backend.empty((n_queried, 3), points_unit.dtype)
            backend.gather(points_unit, idx, out=kept_points)
            kept_dirs = backend.empty((n_queried, 3), dirs.dtype)
            backend.gather(dirs, idx, out=kept_dirs)
            sigma, rgb = pipeline.model.query(kept_points, kept_dirs)
            backend.scatter_rows(sigma_plane, idx, sigma)
            backend.scatter_rows(rgb_plane, idx, rgb)
        render = renderer.forward(sigma_plane.reshape(n_rays, n_samples),
                                  rgb_plane.reshape(n_rays, n_samples, 3),
                                  deltas, t_vals)
        return render, n_queried, keep_idx, renderer
    sigma, rgb = pipeline.model.query(points_unit, dirs)
    render = renderer.forward(sigma.reshape(n_rays, n_samples),
                              rgb.reshape(n_rays, n_samples, 3),
                              deltas, t_vals)
    return render, n_rays * n_samples, None, renderer


def _monolithic_backward(renderer, grad_colors, keep_idx, backend):
    grad_sigmas, grad_rgbs = renderer.backward(grad_colors)
    if keep_idx is None:
        return grad_sigmas.reshape(-1), grad_rgbs.reshape(-1, 3)
    kept_sigmas = backend.empty(keep_idx.size, grad_sigmas.dtype)
    backend.take_out(grad_sigmas.reshape(-1), keep_idx, kept_sigmas)
    kept_rgbs = backend.empty((keep_idx.size, 3), grad_rgbs.dtype)
    backend.gather(grad_rgbs.reshape(-1, 3), keep_idx, out=kept_rgbs)
    return kept_sigmas, kept_rgbs


def _make_dataset(name, image_size=10, n_train=3, n_test=1, seed=0):
    return build_dataset(make_synthetic_scene(name), n_train_views=n_train,
                         n_test_views=n_test, image_size=image_size,
                         seed=seed, suite="nerf_synthetic", gt_samples=16)


@pytest.fixture(scope="module")
def serving_datasets():
    return [_make_dataset(name) for name in ("lego", "chair", "drums")]


@pytest.fixture(scope="module")
def serving_config(request):
    config = request.getfixturevalue("tiny_config")
    return dataclasses.replace(config, culling_enabled=True,
                               occupancy_warmup_iterations=4,
                               occupancy_update_every=2)


class TestStagedPipelineDifferential:
    """The recomposed stages are the PR 7 monolith, bit for bit."""

    @pytest.fixture(scope="class", params=["float64", "float32"])
    def trained(self, request, tiny_config, tiny_dataset):
        config = dataclasses.replace(
            tiny_config, culling_enabled=True, compute_dtype=request.param,
            occupancy_warmup_iterations=8, occupancy_update_every=4)
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        for _ in range(60):
            trainer.train_step()
        # The grid must genuinely cull for the compacted path to be exercised.
        assert 0.0 < trainer.occupancy.occupancy_fraction < 1.0
        return trainer

    @pytest.mark.parametrize("culled,address_sort",
                             [(False, False), (True, False), (True, True)],
                             ids=["dense", "culled", "culled-sorted"])
    def test_forward_and_backward_match_monolith(self, trained, tiny_dataset,
                                                 culled, address_sort):
        trainer = trained
        pipeline = RenderPipeline(
            trainer.model, tiny_dataset.scene_bound,
            n_samples=trainer.config.n_samples_per_ray,
            occupancy=trainer.occupancy if culled else None,
            culling_enabled=culled, policy=trainer.policy,
            arena=trainer.arena, backend=trainer.backend,
            address_sort=address_sort)
        bundle = tiny_dataset.test_views[0].camera.all_rays()
        grad_colors = np.random.default_rng(7).standard_normal(
            (bundle.n_rays, 3))

        # Staged path first; copy everything out of the arena buffers.
        out = pipeline.render_rays(bundle, rng=np.random.default_rng(5))
        staged_colors = np.array(out.render.colors, copy=True)
        staged_depth = np.array(out.render.depth, copy=True)
        gs, gr = pipeline.backward_to_points(grad_colors)
        staged_gs, staged_gr = np.array(gs, copy=True), np.array(gr, copy=True)

        render, n_queried, keep_idx, renderer = _monolithic_forward(
            pipeline, bundle, rng=np.random.default_rng(5))
        mono_gs, mono_gr = _monolithic_backward(renderer, grad_colors,
                                                keep_idx, pipeline.backend)

        assert out.n_queried == n_queried
        if culled:
            assert n_queried < out.n_total       # compaction actually ran
        np.testing.assert_array_equal(staged_colors, render.colors)
        np.testing.assert_array_equal(staged_depth, render.depth)
        np.testing.assert_array_equal(staged_gs, mono_gs)
        np.testing.assert_array_equal(staged_gr, mono_gr)


class TestCoalescedRendering:
    @pytest.fixture(scope="class")
    def trained(self, tiny_config, tiny_dataset):
        config = dataclasses.replace(
            tiny_config, culling_enabled=True,
            occupancy_warmup_iterations=8, occupancy_update_every=4)
        model = DecoupledRadianceField(config, seed=0)
        trainer = Trainer(model, tiny_dataset, config=config, seed=0)
        for _ in range(60):
            trainer.train_step()
        return trainer

    def _pipeline(self, trainer, dataset):
        return RenderPipeline(
            trainer.model, dataset.scene_bound,
            n_samples=trainer.config.n_samples_per_ray,
            occupancy=trainer.occupancy, culling_enabled=True,
            policy=trainer.policy, arena=trainer.arena,
            backend=trainer.backend)

    def test_matches_per_request(self, trained, tiny_dataset):
        pipeline = self._pipeline(trained, tiny_dataset)
        bundles = [view.camera.all_rays() for view in tiny_dataset.test_views]
        bundles = bundles * 2                       # repeated requests too
        views = render_coalesced(pipeline, bundles, arena=trained.arena)
        assert len(views) == len(bundles)
        for bundle, view in zip(bundles, views):
            solo = pipeline.render_rays(bundle, rng=None)
            assert view.n_queried == solo.n_queried
            assert view.n_total == solo.n_total
            np.testing.assert_allclose(view.colors, solo.render.colors,
                                       rtol=0, atol=1e-8)
            np.testing.assert_allclose(view.depth, solo.render.depth,
                                       rtol=0, atol=1e-8)

    def test_empty_and_single(self, trained, tiny_dataset):
        pipeline = self._pipeline(trained, tiny_dataset)
        assert render_coalesced(pipeline, [], arena=trained.arena) == []
        bundle = tiny_dataset.test_views[0].camera.all_rays()
        [view] = render_coalesced(pipeline, [bundle], arena=trained.arena)
        solo = pipeline.render_rays(bundle, rng=None)
        np.testing.assert_allclose(view.colors, solo.render.colors,
                                   rtol=0, atol=1e-8)

    def test_all_culled_requests_render_background(self, trained, tiny_dataset):
        """A bundle whose samples are all in empty cells still composites."""
        pipeline = self._pipeline(trained, tiny_dataset)
        camera = tiny_dataset.test_views[0].camera
        bundle = camera.all_rays()
        # Aim every ray at a far corner of empty space.
        corner = RayBundle(
            origins=np.full_like(bundle.origins, -40.0),
            directions=bundle.directions,
            near=bundle.near, far=bundle.far)
        sample = pipeline.stage_samples(corner, rng=None)
        if pipeline.stage_cull(sample).n_queried:
            pytest.skip("trained grid keeps boundary cells; no empty bundle")
        views = render_coalesced(pipeline, [corner, bundle],
                                 arena=trained.arena)
        assert views[0].n_queried == 0
        np.testing.assert_array_equal(views[0].colors,
                                      np.ones_like(views[0].colors))
        solo = pipeline.render_rays(bundle, rng=None)
        np.testing.assert_allclose(views[1].colors, solo.render.colors,
                                   rtol=0, atol=1e-8)


class TestResidencyManager:
    def test_lru_eviction_order(self, serving_datasets, serving_config,
                                tmp_path):
        manager = ResidencyManager(serving_config, seed=0,
                                   checkpoint_dir=tmp_path,
                                   max_resident_scenes=2)
        for dataset in serving_datasets:
            manager.add_scene(dataset)
        lego, chair, drums = [d.name for d in serving_datasets]
        manager.checkout(lego)
        manager.checkout(chair)
        manager.checkout(lego)            # touch: chair is now the LRU scene
        manager.checkout(drums)           # over cap -> evict chair, not lego
        assert sorted(manager.resident_names) == sorted([lego, drums])
        assert manager.slot(chair).on_disk
        assert manager.evictions == 1
        manager.checkout(chair)           # LRU is now lego
        assert sorted(manager.resident_names) == sorted([chair, drums])
        assert manager.evictions == 2
        assert manager.peak_resident == 2

    def test_make_room_respects_pins(self, serving_datasets, serving_config,
                                     tmp_path):
        manager = ResidencyManager(serving_config, seed=0,
                                   checkpoint_dir=tmp_path,
                                   max_resident_scenes=1)
        for dataset in serving_datasets[:2]:
            manager.add_scene(dataset)
        lego, chair = [d.name for d in serving_datasets[:2]]
        manager.checkout(lego)
        # A pinned scene is never evicted even over cap: the bound stretches.
        manager.checkout(chair, pinned={lego})
        assert sorted(manager.resident_names) == sorted([lego, chair])
        assert manager.evictions == 0
        assert manager.peak_resident == 2

    def test_registry_validation(self, serving_datasets, serving_config):
        manager = ResidencyManager(serving_config, seed=0)
        manager.add_scene(serving_datasets[0])
        with pytest.raises(ValueError, match="duplicate scene name"):
            manager.add_scene(serving_datasets[0])
        with pytest.raises(ValueError, match="unknown scene"):
            manager.slot("no-such-scene")
        with pytest.raises(ValueError, match="requires a checkpoint_dir"):
            ResidencyManager(serving_config, max_resident_scenes=1)

    def test_resume_after_evict_bit_identity(self, serving_datasets,
                                             serving_config, tmp_path):
        """Evict mid-training, continue elsewhere, come back: the trajectory
        is the uninterrupted one, bit for bit."""
        lego, chair = serving_datasets[0], serving_datasets[1]
        manager = ResidencyManager(serving_config, seed=0,
                                   checkpoint_dir=tmp_path,
                                   max_resident_scenes=1)
        slot_a = manager.add_scene(lego)
        slot_b = manager.add_scene(chair)
        manager.checkout(lego.name)
        slot_a.trainer.run_steps(5, slot_a.history)
        manager.checkout(chair.name)               # evicts lego mid-run
        assert not slot_a.resident and slot_a.on_disk
        slot_b.trainer.run_steps(5, slot_b.history)
        manager.checkout(lego.name)                # evicts chair, restores lego
        slot_a.trainer.run_steps(5, slot_a.history)
        assert manager.evictions == 2

        reference = train_scene(lego, serving_config, 10, seed=0,
                                eval_views=1, eval_samples=8)
        assert slot_a.history.losses == reference.history.losses
        assert slot_a.trainer.iteration == 10


class TestSceneService:
    def test_interleaved_jobs_keep_solo_trajectories_across_cap(
            self, serving_datasets, serving_config, tmp_path):
        """> cap scenes, render+train interleaved: every scene's losses match
        solo training exactly (evict/restore cycles included)."""
        with SceneService(serving_datasets, serving_config, seed=0,
                          n_workers=1, checkpoint_dir=tmp_path,
                          max_resident_scenes=1) as service:
            handles = {d.name: [] for d in serving_datasets}
            for dataset in serving_datasets:
                handles[dataset.name].append(
                    service.train(dataset.name, n_steps=4))
            renders = [service.render(d.name) for d in serving_datasets]
            for dataset in serving_datasets:
                handles[dataset.name].append(
                    service.train(dataset.name, n_steps=4))
            losses = {name: [loss for handle in hs
                             for loss in handle.result(60).losses]
                      for name, hs in handles.items()}
            for handle in renders:
                result = handle.result(60)
                assert result.colors.shape == (10, 10, 3)
                assert np.all(result.colors >= 0) and np.all(result.colors <= 1)
            stats = service.stats()
        assert stats["evictions"] > 0
        assert stats["peak_resident_scenes"] <= 1
        for dataset in serving_datasets:
            reference = train_scene(dataset, serving_config, 8, seed=0,
                                    eval_views=1, eval_samples=8)
            assert losses[dataset.name] == reference.history.losses

    def test_coalesces_same_scene_renders(self, serving_datasets,
                                          serving_config):
        lego, chair = serving_datasets[0], serving_datasets[1]
        with SceneService([lego, chair], serving_config, seed=0,
                          n_workers=1, coalesce=True) as service:
            # Occupy the single worker so the renders queue up behind it.
            blocker = service.train(chair.name, n_steps=30)
            same = [service.render(lego.name, n_samples=8) for _ in range(3)]
            other = service.render(lego.name, n_samples=4)
            blocker.result(60)
            batch_sizes = sorted(h.result(60).batch_size for h in same)
            assert batch_sizes == [3, 3, 3]
            assert other.result(60).batch_size == 1
            stats = service.stats()
        assert stats["max_batch_size"] == 3
        assert stats["batches"] == 2

    def test_per_request_mode_never_batches(self, serving_datasets,
                                            serving_config):
        lego, chair = serving_datasets[0], serving_datasets[1]
        with SceneService([lego, chair], serving_config, seed=0,
                          n_workers=1, coalesce=False) as service:
            blocker = service.train(chair.name, n_steps=30)
            handles = [service.render(lego.name) for _ in range(3)]
            assert all(h.result(60).batch_size == 1 for h in handles)
            blocker.result(60)

    def test_priority_orders_queued_jobs(self, serving_datasets,
                                         serving_config):
        with SceneService(serving_datasets, serving_config, seed=0,
                          n_workers=1) as service:
            blocker = service.train(serving_datasets[0].name, n_steps=30)
            low = service.render(serving_datasets[1].name, priority=5)
            high = service.render(serving_datasets[2].name, priority=0)
            blocker.result(60)
            # The single worker must run the priority-0 job first even though
            # it was submitted later; the later-run job's latency includes
            # the earlier one's execution.
            assert high.result(60).service_ms < low.result(60).service_ms

    def test_expired_deadline_is_shed_by_default(self, serving_datasets,
                                                 serving_config):
        from repro.serving import DeadlineExceeded

        with SceneService(serving_datasets[:1], serving_config, seed=0,
                          n_workers=1) as service:
            blocker = service.train(serving_datasets[0].name, n_steps=30)
            late = service.render(serving_datasets[0].name, deadline_s=1e-9)
            blocker.result(60)
            with pytest.raises(DeadlineExceeded):
                late.result(60)
            assert service.stats()["shed"] >= 1

    def test_deadline_miss_is_counted_when_shedding_disabled(
            self, serving_datasets, serving_config):
        with SceneService(serving_datasets[:1], serving_config, seed=0,
                          n_workers=1, shed_expired=False) as service:
            blocker = service.train(serving_datasets[0].name, n_steps=30)
            late = service.render(serving_datasets[0].name, deadline_s=1e-9)
            blocker.result(60)
            assert late.result(60).deadline_missed
            assert service.stats()["deadline_misses"] >= 1

    def test_submit_validation_and_close(self, serving_datasets,
                                         serving_config):
        service = SceneService(serving_datasets[:1], serving_config, seed=0,
                               n_workers=1)
        with pytest.raises(ValueError, match="unknown scene"):
            service.render("no-such-scene")
        with pytest.raises(ValueError, match="n_steps"):
            service.train(serving_datasets[0].name, n_steps=0)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.render(serving_datasets[0].name)
        service.close()                       # idempotent

    def test_worker_error_propagates_to_client(self, serving_datasets,
                                               serving_config):
        with SceneService(serving_datasets[:1], serving_config, seed=0,
                          n_workers=1) as service:
            handle = service.submit(RenderJob(scene=serving_datasets[0].name,
                                              n_samples=0))
            with pytest.raises(ValueError, match="n_samples"):
                handle.result(60)
            # The service survives the failed job.
            ok = service.render(serving_datasets[0].name)
            assert ok.result(60).n_rays == 100


class TestThreadSafePhaseTimer:
    def test_concurrent_sections_merge(self):
        timer = PhaseTimer()
        barrier = threading.Barrier(2)

        def record(name, calls):
            barrier.wait()
            for _ in range(calls):
                with timer.phase(name):
                    time.sleep(0.002)

        workers = [threading.Thread(target=record, args=("forward", 3)),
                   threading.Thread(target=record, args=("forward", 4))]
        for worker in workers:
            worker.start()
        with timer.phase("loss"):
            time.sleep(0.002)
        for worker in workers:
            worker.join()

        summary = timer.summary()
        assert summary["forward"]["calls"] == 7
        assert summary["loss"]["calls"] == 1
        assert summary["forward"]["seconds"] >= 7 * 0.002
        assert timer.total_seconds() == pytest.approx(
            sum(entry["seconds"] for entry in summary.values()))
        assert timer.mean_ms("forward") == pytest.approx(
            1e3 * summary["forward"]["seconds"] / 7)

    def test_reset_clears_every_thread(self):
        timer = PhaseTimer()

        def record():
            with timer.phase("forward"):
                pass

        worker = threading.Thread(target=record)
        worker.start()
        worker.join()
        with timer.phase("loss"):
            pass
        assert timer.summary()
        timer.reset()
        assert timer.summary() == {}
        assert timer.mean_ms("forward") == 0.0
        assert timer.total_seconds() == 0.0


class TestFleetResidencyStats:
    def test_summary_reports_residency(self, serving_datasets, serving_config,
                                       tmp_path):
        fleet = SceneFleet(serving_datasets, serving_config, seed=0,
                           slice_iterations=2, checkpoint_dir=tmp_path,
                           max_resident_scenes=1)
        result = fleet.train(4, eval_views=1, eval_samples=8)
        assert result.evictions > 0
        assert result.peak_resident_scenes == 1
        assert result.checkpoint_save_ms > 0
        assert result.checkpoint_load_ms > 0
        summary = result.summary()
        for key in ("evictions", "peak_resident_scenes",
                    "checkpoint_save_ms", "checkpoint_load_ms"):
            assert summary[key] == pytest.approx(getattr(result, key))
