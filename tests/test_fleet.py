"""Tests for the multi-scene training orchestrator."""

import numpy as np
import pytest

from repro.core.config import Instant3DConfig
from repro.datasets import nerf_synthetic_like
from repro.grid.hash_encoding import HashGridConfig
from repro.training import SceneFleet, train_fleet, train_scene


@pytest.fixture(scope="module")
def fleet_config():
    grid = HashGridConfig(n_levels=3, n_features_per_level=2,
                          log2_hashmap_size=9, base_resolution=4,
                          finest_resolution=16)
    return Instant3DConfig.instant_3d(
        grid=grid, batch_pixels=24, n_samples_per_ray=8,
        mlp_hidden_width=8, mlp_hidden_layers=1,
    )


@pytest.fixture(scope="module")
def fleet_datasets():
    return nerf_synthetic_like(["lego", "ficus"], n_train_views=3,
                               n_test_views=1, image_size=14)


class TestSceneFleet:
    def test_round_robin_matches_per_scene_training(self, fleet_datasets,
                                                    fleet_config):
        """Interleaved scheduling must not change any scene's trajectory:
        every trainer owns independent models and RNG streams."""
        fleet = SceneFleet(fleet_datasets, fleet_config, seed=0,
                           slice_iterations=3)
        result = fleet.train(8, eval_views=1, eval_samples=48)
        for dataset, fleet_scene in zip(fleet_datasets, result.results):
            solo = train_scene(dataset, fleet_config, n_iterations=8, seed=0,
                               eval_views=1)
            np.testing.assert_array_equal(fleet_scene.history.losses,
                                          solo.history.losses)
            assert fleet_scene.rgb_psnr == solo.rgb_psnr
            assert fleet_scene.density_updates == solo.density_updates
            assert fleet_scene.color_updates == solo.color_updates

    def test_result_aggregation(self, fleet_datasets, fleet_config):
        result = train_fleet(fleet_datasets, fleet_config, n_iterations=4, seed=0)
        assert result.n_scenes == len(fleet_datasets)
        assert result.scene_names == [d.name for d in fleet_datasets]
        assert result.mean_rgb_psnr == pytest.approx(
            np.mean([r.rgb_psnr for r in result.results]))
        assert result.wall_clock_s > 0
        assert result.scenes_per_hour > 0
        assert result.result_for("lego") is result.results[0]
        summary = result.summary()
        for key in ("n_scenes", "mean_rgb_psnr", "scenes_per_hour",
                    "wall_clock_s"):
            assert key in summary

    def test_eval_every_records_intermediate_evals(self, fleet_datasets,
                                                   fleet_config):
        fleet = SceneFleet(fleet_datasets[:1], fleet_config, seed=0)
        result = fleet.train(4, eval_every=2, eval_views=1, eval_samples=16)
        history = result.results[0].history
        assert history.eval_iterations == [2, 4]
        assert len(history.eval_rgb_psnrs) == 2

    def test_process_pool_matches_round_robin(self, fleet_datasets, fleet_config):
        """The worker path must be a pure scheduling change (or fall back)."""
        serial = SceneFleet(fleet_datasets, fleet_config, seed=0).train(
            4, eval_views=1, eval_samples=16)
        pooled = SceneFleet(fleet_datasets, fleet_config, seed=0,
                            n_workers=2).train(4, eval_views=1, eval_samples=16)
        assert pooled.schedule in ("process_pool", "round_robin")
        for a, b in zip(serial.results, pooled.results):
            np.testing.assert_array_equal(a.history.losses, b.history.losses)
            assert a.rgb_psnr == b.rgb_psnr

    def test_duplicate_scene_names_rejected(self, fleet_datasets, fleet_config):
        """Regression: per-scene RNG streams derive from the scene *name*,
        so duplicate names would silently train on identical pixel/sample
        streams (and ``result_for`` could only ever find the first)."""
        with pytest.raises(ValueError, match="duplicate scene names"):
            SceneFleet([fleet_datasets[0], fleet_datasets[0]], fleet_config)

    def test_path_hostile_scene_names_rejected(self, fleet_datasets,
                                               fleet_config):
        """Scene names become checkpoint file names — separators must not
        let a checkpoint escape (or collide outside) checkpoint_dir."""
        import dataclasses as _dc
        hostile = _dc.replace(fleet_datasets[0], name="../escape")
        with pytest.raises(ValueError, match="checkpoint file name"):
            SceneFleet([hostile], fleet_config)

    def test_invalid_arguments(self, fleet_datasets, fleet_config):
        with pytest.raises(ValueError):
            SceneFleet([], fleet_config)
        with pytest.raises(ValueError):
            SceneFleet(fleet_datasets, fleet_config, slice_iterations=0)
        with pytest.raises(ValueError):
            SceneFleet(fleet_datasets, fleet_config, n_workers=-1)
        with pytest.raises(ValueError):
            SceneFleet(fleet_datasets, fleet_config).train(0)
